"""Registry file discovery and parsing.

A registry root is a directory with one subdirectory per document kind
(``machines/``, ``kernels/``, ``compilers/``, ``faults/``,
``placements/``), each holding ``*.json`` and/or ``*.toml`` documents.
JSON is the primary format (it is what :mod:`repro.machine.serialize`
round-trips byte-identically); TOML is accepted for hand-written
documents where Python ships :mod:`tomllib` (3.11+) — the dependency is
gated, never installed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.registry.schema import KINDS, RegistryDoc, parse_document
from repro.util.errors import ConfigError

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - 3.10 fallback
    tomllib = None  # type: ignore[assignment]

SUFFIXES = (".json", ".toml")


def iter_kind_paths(
    roots: Sequence[Path], kind: str
) -> list[tuple[Path, Path]]:
    """All ``(root, document path)`` pairs for ``kind``, in root order
    then name order — later roots override earlier ones by name."""
    if kind not in KINDS:
        raise ConfigError(
            f"unknown registry kind {kind!r}; known: {list(KINDS)}"
        )
    pairs: list[tuple[Path, Path]] = []
    for root in roots:
        folder = Path(root) / kind
        if not folder.is_dir():
            continue
        for path in sorted(folder.iterdir()):
            if path.suffix in SUFFIXES and path.is_file():
                pairs.append((Path(root), path))
    return pairs


def read_document_data(path: Path) -> object:
    """Parse one document file into plain Python data."""
    if path.suffix == ".toml":
        if tomllib is None:
            raise ConfigError(
                f"cannot read {path}: TOML documents need Python 3.11+ "
                "(tomllib); rewrite the document as JSON"
            )
        try:
            return tomllib.loads(path.read_text(encoding="utf-8"))
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"registry document {path}: {exc}") from exc
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(
            f"registry document {path} is not valid JSON: {exc}"
        ) from exc


def load_file(path: Path, kind: str | None = None) -> RegistryDoc:
    """Read + envelope-check one document file."""
    target = Path(path)
    if not target.exists():
        raise ConfigError(f"registry document {target} does not exist")
    return parse_document(
        read_document_data(target), source=str(target), kind=kind
    )


def load_documents(
    roots: Iterable[Path], kind: str
) -> dict[str, RegistryDoc]:
    """All documents of ``kind`` across ``roots``, keyed by name.

    A name that appears in several roots resolves to the *last* root's
    document (user ``--registry-path`` directories layer over the
    shipped data). Within one root, duplicate names are an error.
    """
    docs: dict[str, RegistryDoc] = {}
    seen_in_root: dict[Path, set[str]] = {}
    for root, path in iter_kind_paths(list(roots), kind):
        rdoc = load_file(path, kind=kind)
        seen = seen_in_root.setdefault(root, set())
        if rdoc.name in seen:
            raise ConfigError(
                f"registry root {root}: duplicate {kind} document "
                f"name {rdoc.name!r} (second copy at {path})"
            )
        seen.add(rdoc.name)
        docs[rdoc.name] = rdoc
    return docs
