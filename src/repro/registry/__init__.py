"""Schema-validated, versioned scenario registry.

Machines, kernel characterizations, compiler decision tables, fault
plans and placement policies live here as JSON/TOML *documents* rather
than Python objects — the shipped seed data under ``data/`` re-exports
the paper's catalog, and user directories layer on top via
``--registry-path``. See ``docs/REGISTRY.md``.
"""

from repro.registry.core import (
    DATA_ROOT,
    Registry,
    default_registry,
    registry_with_paths,
)
from repro.registry.loader import load_documents, load_file
from repro.registry.schema import (
    KIND_SCHEMAS,
    KINDS,
    RegistryDoc,
    decide_compiler,
    parse_document,
    validate_document,
)

__all__ = [
    "DATA_ROOT",
    "Registry",
    "default_registry",
    "registry_with_paths",
    "load_documents",
    "load_file",
    "KINDS",
    "KIND_SCHEMAS",
    "RegistryDoc",
    "parse_document",
    "validate_document",
    "decide_compiler",
]
