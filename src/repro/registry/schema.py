"""Registry document envelope and per-kind semantic validation.

Every registry document is a JSON (or TOML) file with the same
three-field envelope::

    {"schema": "repro.machine/v1", "name": "sg2042", "doc": {...}}

``schema`` pins the document kind *and* its format version — a future
``repro.machine/v2`` can change the payload shape without breaking v1
readers. ``name`` is the registry key; ``doc`` is the kind-specific
payload. :func:`parse_document` checks the envelope strictly;
:func:`validate_document` then cross-checks the payload against the
code that consumes it (machine constructors, the kernel catalog, the
compiler table, placement policies, fault plans) so a document cannot
drift silently from the model it describes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Mapping

from repro.util.errors import ConfigError

#: Document kinds, in the order they appear under ``data/``.
KINDS = ("machines", "kernels", "compilers", "faults", "placements")

#: Kind -> the schema tag its documents must carry.
KIND_SCHEMAS = {
    "machines": "repro.machine/v1",
    "kernels": "repro.kernel/v1",
    "compilers": "repro.compiler/v1",
    "faults": "repro.faultplan/v1",
    "placements": "repro.placement/v1",
}

#: Schema tag -> kind (reverse of :data:`KIND_SCHEMAS`).
SCHEMA_KINDS = {schema: kind for kind, schema in KIND_SCHEMAS.items()}

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_.-]*$")


@dataclass(frozen=True)
class RegistryDoc:
    """One parsed (but not necessarily semantically valid) document."""

    kind: str
    name: str
    schema: str
    doc: Mapping[str, Any]
    source: str


def parse_document(
    data: Any, source: str, kind: str | None = None
) -> RegistryDoc:
    """Check the envelope of one document; raise :class:`ConfigError`.

    ``kind`` restricts which schema is acceptable (used when the file's
    directory already implies the kind); ``None`` accepts any known
    schema (used for ``repro registry add`` and POST /machines).
    """
    label = f"registry document {source}"
    if not isinstance(data, Mapping):
        raise ConfigError(
            f"malformed {label}: document must be a JSON object, "
            f"got {type(data).__name__}"
        )
    for field in ("schema", "name", "doc"):
        if field not in data:
            raise ConfigError(f"{label}: missing field {field}")
    unknown = sorted(set(data) - {"schema", "name", "doc"})
    if unknown:
        raise ConfigError(
            f"malformed {label}: unknown field {', '.join(unknown)}"
        )
    schema = data["schema"]
    if schema not in SCHEMA_KINDS:
        raise ConfigError(
            f"{label}: unknown schema {schema!r}; "
            f"known: {sorted(SCHEMA_KINDS)}"
        )
    doc_kind = SCHEMA_KINDS[schema]
    if kind is not None and doc_kind != kind:
        raise ConfigError(
            f"{label}: schema {schema!r} does not belong under "
            f"{kind}/ (expected {KIND_SCHEMAS[kind]!r})"
        )
    name = data["name"]
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ConfigError(
            f"{label}: name must be a lowercase identifier "
            f"([a-z0-9_.-]), got {name!r}"
        )
    doc = data["doc"]
    if not isinstance(doc, Mapping):
        raise ConfigError(f"malformed {label}: doc must be a JSON object")
    return RegistryDoc(
        kind=doc_kind, name=name, schema=schema, doc=doc, source=source
    )


# -- per-kind semantic validation -----------------------------------------
#
# Consumers are imported lazily inside each validator: the machine
# validator sits below repro.machine.catalog in the import graph, and the
# kernel/compiler validators would otherwise pull the whole kernel
# catalog into every `import repro.machine`.


def _validate_machine(rdoc: RegistryDoc) -> Any:
    from repro.machine.serialize import cpu_from_dict

    return cpu_from_dict(
        dict(rdoc.doc), source=f"machine document {rdoc.source}"
    )


def _validate_kernel(rdoc: RegistryDoc) -> Any:
    """Cross-check a kernel characterization against the kernel catalog.

    The document restates traits the Python kernel already declares;
    validation fails on any divergence, so the shipped characterizations
    cannot rot as the catalog evolves.
    """
    from repro.kernels.registry import get_kernel

    label = f"kernel document {rdoc.source}"
    kernel = get_kernel(rdoc.name)
    traits = kernel.traits
    doc = rdoc.doc
    unknown = sorted(set(doc) - {"class", "traits"})
    if unknown:
        raise ConfigError(
            f"malformed {label}: unknown field {', '.join(unknown)}"
        )
    klass = doc.get("class")
    if klass is not None and klass != kernel.klass.value:
        raise ConfigError(
            f"{label}: class {klass!r} disagrees with the catalog's "
            f"{kernel.klass.value!r}"
        )
    declared = doc.get("traits", {})
    if not isinstance(declared, Mapping):
        raise ConfigError(f"malformed {label}: traits must be an object")
    for key, value in declared.items():
        if not hasattr(traits, key):
            raise ConfigError(
                f"malformed {label}: unknown field traits.{key}"
            )
        actual = getattr(traits, key)
        if key == "features":
            actual = sorted(f.value for f in actual)
            value = sorted(value)
        if value != actual:
            raise ConfigError(
                f"{label}: traits.{key} = {value!r} disagrees with "
                f"the catalog's {actual!r}"
            )
    return kernel


def _validate_compiler(rdoc: RegistryDoc) -> Any:
    """Check a compiler decision table: every referenced compiler must
    exist and every rule may match only on the supported keys."""
    from repro.compiler.model import compiler_by_name

    label = f"compiler document {rdoc.source}"
    doc = rdoc.doc
    unknown = sorted(set(doc) - {"default", "rules"})
    if unknown:
        raise ConfigError(
            f"malformed {label}: unknown field {', '.join(unknown)}"
        )
    if "default" not in doc:
        raise ConfigError(f"{label}: missing field default")
    compiler_by_name(doc["default"])
    rules = doc.get("rules", ())
    if not isinstance(rules, (list, tuple)):
        raise ConfigError(f"malformed {label}: rules must be an array")
    for i, rule in enumerate(rules):
        if not isinstance(rule, Mapping) or set(rule) != {"when", "use"}:
            raise ConfigError(
                f"malformed {label}: rules[{i}] must have exactly "
                "the fields 'when' and 'use'"
            )
        when = rule["when"]
        if not isinstance(when, Mapping) or not when:
            raise ConfigError(
                f"malformed {label}: rules[{i}].when must be a "
                "non-empty object"
            )
        bad = sorted(set(when) - {"isa_version", "part"})
        if bad:
            raise ConfigError(
                f"malformed {label}: rules[{i}].when matches on "
                f"unsupported key {', '.join(bad)}"
            )
        compiler_by_name(rule["use"])
    return doc


def decide_compiler(table: Mapping[str, Any], cpu: Any) -> str:
    """Apply a (validated) compiler decision table to ``cpu``.

    First matching rule wins; used by ``repro lint --registry`` to
    cross-check the shipped table against
    :meth:`repro.suite.config.RunConfig.resolve_compiler`.
    """
    for rule in table.get("rules", ()):
        when = rule["when"]
        if "isa_version" in when and cpu.core.isa.version != when["isa_version"]:
            continue
        if "part" in when and cpu.part != when["part"]:
            continue
        return rule["use"]
    return table["default"]


def _validate_fault(rdoc: RegistryDoc) -> Any:
    from repro.resilience.faults import FaultPlan

    try:
        return FaultPlan.from_dict(dict(rdoc.doc))
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(
            f"malformed fault document {rdoc.source}: {exc}"
        ) from exc


def _validate_placement(rdoc: RegistryDoc) -> Any:
    from repro.openmp.affinity import PlacementPolicy

    label = f"placement document {rdoc.source}"
    doc = rdoc.doc
    unknown = sorted(set(doc) - {"policy", "description"})
    if unknown:
        raise ConfigError(
            f"malformed {label}: unknown field {', '.join(unknown)}"
        )
    if "policy" not in doc:
        raise ConfigError(f"{label}: missing field policy")
    policy = PlacementPolicy.from_label(doc["policy"])
    if rdoc.name != doc["policy"]:
        raise ConfigError(
            f"{label}: name {rdoc.name!r} must equal the policy label "
            f"{doc['policy']!r}"
        )
    return policy


_VALIDATORS = {
    "machines": _validate_machine,
    "kernels": _validate_kernel,
    "compilers": _validate_compiler,
    "faults": _validate_fault,
    "placements": _validate_placement,
}


def validate_document(rdoc: RegistryDoc) -> Any:
    """Semantically validate one parsed document.

    Returns the materialized object (a :class:`CPUModel` for machines, a
    kernel, a fault plan, ...) so callers that validate-then-use pay for
    construction once. Raises :class:`ConfigError` on any inconsistency.
    """
    return _VALIDATORS[rdoc.kind](rdoc)
