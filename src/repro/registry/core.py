"""The registry object: versioned documents resolved into model objects.

A :class:`Registry` layers one or more roots — the shipped
``repro/registry/data/`` plus any user ``--registry-path`` directories —
and serves validated documents and constructed machines out of them.
Loading is lazy per kind and cached per instance;
:func:`registry_with_paths` additionally caches Registry instances per
path tuple, so the catalog's thin lookups and repeated CLI calls share
one parse.

Registries are read-only: runtime machine registration (``repro.serve``
POST /machines) lives in the server's own machine map, keeping the
process-wide singleton deterministic.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.registry import loader
from repro.registry.schema import KINDS, RegistryDoc, validate_document
from repro.util.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.cpu import CPUModel

#: The shipped seed documents.
DATA_ROOT = Path(__file__).resolve().parent / "data"


class Registry:
    """Documents from one ordered list of registry roots."""

    def __init__(self, extra_paths: Iterable[str | Path] = ()) -> None:
        self._roots: tuple[Path, ...] = (
            DATA_ROOT,
            *(Path(p) for p in extra_paths),
        )
        for root in self._roots[1:]:
            if not root.is_dir():
                raise ConfigError(
                    f"registry path {root} is not a directory"
                )
        self._docs: dict[str, dict[str, RegistryDoc]] = {}

    @property
    def roots(self) -> tuple[Path, ...]:
        return self._roots

    # -- documents --------------------------------------------------------

    def documents(self, kind: str) -> dict[str, RegistryDoc]:
        """All documents of ``kind``, keyed by name (envelope-checked,
        not yet semantically validated)."""
        if kind not in self._docs:
            self._docs[kind] = loader.load_documents(self._roots, kind)
        return dict(self._docs[kind])

    def document(self, kind: str, name: str) -> RegistryDoc:
        docs = self.documents(kind)
        if name not in docs:
            raise ConfigError(
                f"no {kind} document named {name!r}; "
                f"known: {sorted(docs)}"
            )
        return docs[name]

    def names(self, kind: str) -> list[str]:
        return sorted(self.documents(kind))

    # -- machines ---------------------------------------------------------

    def machine(self, name: str) -> "CPUModel":
        """The named machine, constructed strictly from its document.

        Construction is per-call (the catalog contract is fresh equal
        instances); only the parsed documents are cached. Equal
        instances hash equal, so every derived cache — machine digest,
        batch prelude, store keys — still coalesces them.
        """
        return validate_document(self.document("machines", name))

    def machines(self) -> dict[str, "CPUModel"]:
        """Every registered machine, keyed by registry name."""
        return {
            name: self.machine(name)
            for name in self.documents("machines")
        }

    def machine_names(self) -> list[str]:
        return self.names("machines")

    # -- validation -------------------------------------------------------

    def validate_all(self) -> int:
        """Semantically validate every document of every kind.

        Raises on the first inconsistency; returns the number of
        documents checked. (``repro lint --registry`` collects *all*
        findings instead — see :func:`repro.analyze.driver.lint_registry`.)
        """
        checked = 0
        for kind in KINDS:
            for rdoc in self.documents(kind).values():
                validate_document(rdoc)
                checked += 1
        return checked


@lru_cache(maxsize=16)
def _cached_registry(paths: tuple[str, ...]) -> Registry:
    return Registry(paths)


def registry_with_paths(paths: Iterable[str | Path]) -> Registry:
    """A (cached) registry layering ``paths`` over the shipped data."""
    return _cached_registry(tuple(str(p) for p in paths))


def default_registry() -> Registry:
    """The process-wide registry over the shipped data only."""
    return registry_with_paths(())
