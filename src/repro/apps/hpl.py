"""High-Performance Linpack: blocked LU factorization + solve.

The executable face is a real right-looking blocked LU with partial
pivoting (the algorithm HPL itself uses), written in NumPy per the
hpc-parallel guide idioms: the update is one `GEMM` per panel, views not
copies, in-place trailing-matrix updates. It is validated against SciPy
in the tests.

The model face predicts Rmax for the modelled machines: HPL is
compute-bound dense linear algebra, so ``Rmax ≈ threads x per-core
vector FP64 rate x dgemm efficiency`` — which is why the C920's missing
FP64 vectors hurt it so badly on this metric.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.machine.cpu import CPUModel
from repro.machine.vector import DType
from repro.util.errors import ConfigError

#: Fraction of peak a well-tuned HPL sustains on top of the modelled
#: vector rate (panel factorization and swaps are not GEMM).
HPL_DGEMM_EFFICIENCY = 0.85

#: Block size for the executable factorization.
DEFAULT_BLOCK = 64


def lu_factor(
    a: np.ndarray, block: int = DEFAULT_BLOCK
) -> tuple[np.ndarray, np.ndarray]:
    """Blocked LU with partial pivoting, in place.

    Returns ``(lu, piv)`` in the LAPACK ``getrf`` convention: ``lu``
    packs unit-lower L below the diagonal and U on/above it; ``piv[k]``
    is the row swapped with row ``k`` at step ``k``.
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ConfigError("LU requires a square matrix")
    if block < 1:
        raise ConfigError("block must be >= 1")
    n = a.shape[0]
    lu = np.array(a, dtype=np.float64, copy=True)
    piv = np.zeros(n, dtype=np.int64)

    for k0 in range(0, n, block):
        k1 = min(k0 + block, n)
        # Panel factorization with partial pivoting (unblocked).
        for k in range(k0, k1):
            p = k + int(np.argmax(np.abs(lu[k:, k])))
            piv[k] = p
            if p != k:
                lu[[k, p], :] = lu[[p, k], :]
            pivot = lu[k, k]
            if pivot == 0.0:
                raise ConfigError(f"singular matrix at column {k}")
            if k + 1 < n:
                lu[k + 1 :, k] /= pivot
                if k + 1 < k1:
                    # Rank-1 update inside the panel only.
                    lu[k + 1 :, k + 1 : k1] -= np.outer(
                        lu[k + 1 :, k], lu[k, k + 1 : k1]
                    )
        if k1 < n:
            # Triangular solve for the row block: U12 = L11^-1 A12.
            panel = lu[k0:k1, k0:k1]
            rhs = lu[k0:k1, k1:]
            for i in range(k1 - k0):
                rhs[i] -= panel[i, :i] @ rhs[:i]
            # Trailing matrix GEMM update: A22 -= L21 U12.
            lu[k1:, k1:] -= lu[k1:, k0:k1] @ lu[k0:k1, k1:]
    return lu, piv


def lu_solve(
    lu: np.ndarray, piv: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Solve ``A x = b`` from a factorization of :func:`lu_factor`."""
    n = lu.shape[0]
    if b.shape[0] != n:
        raise ConfigError("rhs length mismatch")
    x = np.array(b, dtype=np.float64, copy=True)
    # Apply the row swaps in factorization order.
    for k in range(n):
        p = int(piv[k])
        if p != k:
            x[[k, p]] = x[[p, k]]
    # Forward substitution (unit lower).
    for k in range(n):
        x[k] -= lu[k, :k] @ x[:k]
    # Back substitution.
    for k in range(n - 1, -1, -1):
        x[k] = (x[k] - lu[k, k + 1 :] @ x[k + 1 :]) / lu[k, k]
    return x


def hpl_residual(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """The HPL acceptance residual:
    ``||Ax-b||_inf / (eps * ||A||_inf * ||x||_inf * n)``; a run passes
    below ~16."""
    n = a.shape[0]
    eps = np.finfo(np.float64).eps
    num = float(np.max(np.abs(a @ x - b)))
    den = (
        eps
        * float(np.max(np.sum(np.abs(a), axis=1)))
        * float(np.max(np.abs(x)))
        * n
    )
    if den == 0:
        raise ConfigError("degenerate residual denominator")
    return num / den


def hpl_flops(n: int) -> float:
    """The official HPL flop count: 2/3 n^3 + 2 n^2."""
    return (2.0 / 3.0) * n**3 + 2.0 * n**2


def hpl_measure(n: int, block: int = DEFAULT_BLOCK,
                seed: int = 0) -> tuple[float, float]:
    """Run HPL at size ``n`` on the host.

    Returns ``(gflops, residual)``; raises if the residual fails the
    HPL acceptance threshold.
    """
    if n < 2:
        raise ConfigError("n must be >= 2")
    rng = np.random.default_rng(seed)
    a = rng.random((n, n)) - 0.5
    b = rng.random(n) - 0.5
    start = time.perf_counter()
    lu, piv = lu_factor(a, block)
    x = lu_solve(lu, piv, b)
    elapsed = time.perf_counter() - start
    residual = hpl_residual(a, x, b)
    if residual > 16.0:
        raise ConfigError(f"HPL residual check failed: {residual}")
    return hpl_flops(n) / elapsed / 1e9, residual


@dataclass(frozen=True)
class HplPrediction:
    """Model-side Rmax prediction for one machine."""

    machine: str
    threads: int
    rpeak_gflops: float
    rmax_gflops: float

    @property
    def efficiency(self) -> float:
        return self.rmax_gflops / self.rpeak_gflops


def predict_hpl(cpu: CPUModel, threads: int | None = None) -> HplPrediction:
    """Predict HPL Rmax/Rpeak for a modelled machine.

    Rpeak uses the nominal vector FMA rate (the marketing number);
    Rmax applies the sustained efficiencies plus the HPL dgemm factor.
    The C920's FP64-scalar fallback makes its Rmax a small fraction of
    a "128-bit RVV" paper Rpeak — the HPL face of the paper's Figure 2
    finding.
    """
    nthreads = threads or cpu.num_cores
    if not 1 <= nthreads <= cpu.num_cores:
        raise ConfigError(f"threads must be in 1..{cpu.num_cores}")
    core = cpu.core
    lanes = max(1, core.isa.width_bits // DType.FP64.bits) \
        if core.isa.width_bits else 1
    ops = 2.0 if core.fma else 1.0
    pipes = max(1, core.vector_pipes)
    rpeak = core.clock_hz * pipes * lanes * ops * nthreads
    rmax = (
        core.vector_flops_per_second(DType.FP64)
        * nthreads
        * HPL_DGEMM_EFFICIENCY
    )
    return HplPrediction(
        machine=cpu.name,
        threads=nthreads,
        rpeak_gflops=rpeak / 1e9,
        rmax_gflops=rmax / 1e9,
    )


@dataclass(frozen=True)
class HplLibraryImpact:
    """Whole-application impact of the BLAS library's rollback verdicts.

    HPL spends essentially all its flops in DGEMM, so one miscompiled
    library kernel decides the application's fate: a BLAS whose rollback
    fails translation validation must ship the scalar fallback kernels
    (what OpenBLAS's generic C path does), and Rmax collapses to the
    scalar FP64 rate.
    """

    machine: str
    threads: int
    #: Rmax with every library kernel's rollback proven equivalent.
    vector_rmax_gflops: float
    #: Rmax with the DGEMM rollback refuted -> scalar fallback kernels.
    fallback_rmax_gflops: float
    #: BLAS kernel names whose rollback failed validation.
    miscompiled: tuple[str, ...]

    @property
    def rmax_gflops(self) -> float:
        """The Rmax this library actually achieves."""
        if "DGEMM" in self.miscompiled:
            return self.fallback_rmax_gflops
        return self.vector_rmax_gflops

    @property
    def slowdown(self) -> float:
        """Vector-over-achieved ratio (1.0 when the library is clean)."""
        return self.vector_rmax_gflops / self.rmax_gflops


def predict_hpl_library_impact(
    cpu: CPUModel,
    miscompiled: tuple[str, ...] | list[str] = (),
    threads: int | None = None,
) -> HplLibraryImpact:
    """Predict HPL Rmax given translation-validation verdicts for the
    BLAS family (:mod:`repro.kernels.blas`).

    ``miscompiled`` names the kernels whose v0.7.1 rollback failed
    validation (e.g. from ``repro lint --transval`` findings).  Only
    DGEMM gates Rmax — HPL's flops are GEMM flops — but all names are
    carried so callers can report the full library verdict.
    """
    base = predict_hpl(cpu, threads)
    nthreads = base.threads
    scalar_rmax = (
        cpu.core.scalar_flops_per_second(DType.FP64)
        * nthreads
        * HPL_DGEMM_EFFICIENCY
    )
    return HplLibraryImpact(
        machine=cpu.name,
        threads=nthreads,
        vector_rmax_gflops=base.rmax_gflops,
        fallback_rmax_gflops=scalar_rmax / 1e9,
        miscompiled=tuple(sorted(str(n).upper() for n in miscompiled)),
    )


def miscompiled_blas_kernels(findings) -> tuple[str, ...]:
    """Extract the BLAS kernels with ERROR transval findings from a
    lint report's findings (sites look like ``blas/DGEMM/dot/vls:...``)."""
    names = set()
    for finding in findings:
        if finding.analyzer != "transval":
            continue
        if finding.severity.value != "error":
            continue
        site = finding.site
        if site.startswith("blas/"):
            names.add(site.split("/")[1].upper())
    return tuple(sorted(names))
