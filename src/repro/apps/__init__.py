"""Classic whole-machine HPC benchmarks built on the reproduction.

The paper situates the SG2042 against the standard HPC yardsticks; this
subpackage implements the two canonical ones with the same two-faced
approach as the suite:

* :mod:`repro.apps.hpl` — High-Performance Linpack: a real blocked LU
  factorization with partial pivoting (executable, tested against
  SciPy) plus a model-side Rmax prediction per machine;
* :mod:`repro.apps.stream` — McCalpin STREAM: measured host bandwidth
  and model-side sustained-bandwidth predictions per machine and thread
  placement.
"""

from repro.apps.hpl import (
    HplPrediction,
    hpl_measure,
    lu_factor,
    lu_solve,
    predict_hpl,
)
from repro.apps.stream import StreamPrediction, predict_stream

__all__ = [
    "lu_factor",
    "lu_solve",
    "hpl_measure",
    "predict_hpl",
    "HplPrediction",
    "predict_stream",
    "StreamPrediction",
]
