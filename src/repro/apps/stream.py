"""McCalpin STREAM: modelled sustained bandwidth per machine.

The measured face reuses :mod:`repro.suite.measured` over the suite's
stream kernels; this module adds the model face — predicted sustained
GB/s for each of the four STREAM operations at any thread placement,
derived from the same memory model that drives the tables/figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.vectorizer import analyze
from repro.kernels.registry import get_kernel
from repro.machine.cpu import CPUModel
from repro.machine.vector import DType
from repro.openmp.affinity import PlacementPolicy, assign_cores
from repro.perfmodel.execution import simulate_kernel
from repro.suite.config import RunConfig
from repro.util.errors import ConfigError

#: STREAM operation -> suite kernel.
STREAM_OPS = {
    "copy": "COPY",
    "scale": "MUL",
    "add": "ADD",
    "triad": "TRIAD",
}


@dataclass(frozen=True)
class StreamPrediction:
    """Predicted STREAM numbers for one machine configuration."""

    machine: str
    threads: int
    placement: PlacementPolicy
    bandwidth_gb: dict  # op -> sustained GB/s

    def best(self) -> float:
        return max(self.bandwidth_gb.values())


def predict_stream(
    cpu: CPUModel,
    threads: int = 1,
    placement: PlacementPolicy = PlacementPolicy.CLUSTER,
    precision: DType = DType.FP64,
    n: int | None = None,
) -> StreamPrediction:
    """Predict sustained STREAM bandwidth on a modelled machine.

    ``n`` defaults to a footprint ~4x the machine's total last-level
    cache, matching STREAM's own sizing rule (defeat the caches) —
    unlike the RAJAPerf default sizes, which deliberately fit the
    SG2042's system cache.
    """
    if not 1 <= threads <= cpu.num_cores:
        raise ConfigError(f"threads must be in 1..{cpu.num_cores}")
    if n is None:
        llc = cpu.caches.levels[-1]
        instances = {
            "core": cpu.num_cores,
            "cluster": cpu.topology.num_clusters,
            "numa": cpu.topology.num_numa_nodes,
            "package": 1,
        }[llc.sharing.value]
        total_llc = llc.capacity_bytes * instances
        n = int(4 * total_llc / precision.bytes / 3)  # 3 arrays
    cores = assign_cores(cpu.topology, threads, placement)
    config = RunConfig(threads=threads, precision=precision,
                       placement=placement)
    compiler = config.resolve_compiler(cpu)

    bandwidth = {}
    for op, kernel_name in STREAM_OPS.items():
        kernel = get_kernel(kernel_name)
        report = analyze(compiler, kernel, cpu.core.isa)
        result = simulate_kernel(
            kernel, cpu, cores, precision, report, n=n, reps=1
        )
        nbytes = kernel.traits.bytes_per_iter(precision) * n
        bandwidth[op] = nbytes / result.seconds / 1e9
    return StreamPrediction(
        machine=cpu.name,
        threads=threads,
        placement=placement,
        bandwidth_gb=bandwidth,
    )


def render_stream_table(predictions: list[StreamPrediction]) -> str:
    """Render a STREAM comparison table."""
    from repro.util.tables import render_table

    if not predictions:
        raise ConfigError("no predictions to render")
    rows = [
        (
            p.machine,
            p.threads,
            f"{p.bandwidth_gb['copy']:.1f}",
            f"{p.bandwidth_gb['scale']:.1f}",
            f"{p.bandwidth_gb['add']:.1f}",
            f"{p.bandwidth_gb['triad']:.1f}",
        )
        for p in predictions
    ]
    return render_table(
        ("machine", "threads", "copy GB/s", "scale GB/s", "add GB/s",
         "triad GB/s"),
        rows,
        title="Predicted STREAM bandwidth (cache-defeating sizes)",
    )
