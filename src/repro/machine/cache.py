"""Cache hierarchy descriptions.

The SG2042's distinguishing cache feature is the 1MiB L2 shared between
each cluster of four C920 cores — the paper's cluster-aware placement
policy (Table 3) exists precisely to spread threads across those L2s. We
model each level with a capacity, a *sharing domain* (core / cluster /
NUMA region / package) and bandwidth/latency parameters that feed the
analytic model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.errors import ConfigError
from repro.util.units import format_bytes


class Sharing(enum.Enum):
    """Which set of cores shares one instance of a cache level."""

    CORE = "core"
    CLUSTER = "cluster"
    NUMA = "numa"
    PACKAGE = "package"


@dataclass(frozen=True)
class CacheLevel:
    """One level of the data-cache hierarchy.

    Attributes:
        name: ``"L1D"``, ``"L2"``, ``"L3"``.
        capacity_bytes: Capacity of **one instance** of this level.
        sharing: The domain that shares one instance.
        line_bytes: Cache line size (64 on every CPU in the paper).
        associativity: Set associativity, used by the set-associative
            simulator in :mod:`repro.perfmodel.cachesim`.
        latency_cycles: Load-to-use latency, used by the pipeline model.
        bandwidth_bytes_per_cycle: Sustained bandwidth one *core* can draw
            from this level (its port bandwidth).
        aggregate_bandwidth_bytes_per_cycle: Total bandwidth one instance
            of this level can deliver to all its sharers; ``None`` means
            it scales with the sharers (fully banked).
        contention_threshold: Number of sharers beyond which the
            instance's aggregate bandwidth degrades (crossbar/bank
            conflicts). ``None`` disables the effect. This models the
            SG2042's 64-thread collapse on cache-resident stream kernels
            (Tables 1-3).
        contention_exponent: Degradation exponent: aggregate bandwidth is
            multiplied by ``(threshold / sharers) ** exponent`` when
            sharers exceed the threshold.
    """

    name: str
    capacity_bytes: int
    sharing: Sharing
    line_bytes: int = 64
    associativity: int = 8
    latency_cycles: int = 4
    bandwidth_bytes_per_cycle: float = 32.0
    aggregate_bandwidth_bytes_per_cycle: float | None = None
    contention_threshold: int | None = None
    contention_exponent: float = 2.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError(f"{self.name}: capacity must be positive")
        if self.line_bytes <= 0 or (self.line_bytes & (self.line_bytes - 1)):
            raise ConfigError(
                f"{self.name}: line size must be a positive power of two"
            )
        if self.capacity_bytes % self.line_bytes:
            raise ConfigError(
                f"{self.name}: capacity not a whole number of lines"
            )
        if self.associativity < 1:
            raise ConfigError(f"{self.name}: associativity must be >= 1")
        n_lines = self.capacity_bytes // self.line_bytes
        if n_lines % self.associativity:
            raise ConfigError(
                f"{self.name}: line count {n_lines} not divisible by "
                f"associativity {self.associativity}"
            )
        if self.latency_cycles < 1:
            raise ConfigError(f"{self.name}: latency must be >= 1 cycle")
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ConfigError(f"{self.name}: bandwidth must be positive")
        if (self.aggregate_bandwidth_bytes_per_cycle is not None
                and self.aggregate_bandwidth_bytes_per_cycle <= 0):
            raise ConfigError(
                f"{self.name}: aggregate bandwidth must be positive"
            )
        if self.contention_threshold is not None:
            if self.contention_threshold < 1:
                raise ConfigError(
                    f"{self.name}: contention threshold must be >= 1"
                )
        if self.contention_exponent < 0:
            raise ConfigError(
                f"{self.name}: contention exponent must be >= 0"
            )

    def effective_aggregate_bandwidth(self, sharers: int) -> float | None:
        """Aggregate bytes/cycle one instance delivers with ``sharers``
        active cores, after the contention penalty. ``None`` = unbounded
        (scales with sharers)."""
        if sharers < 1:
            raise ConfigError("sharers must be >= 1")
        agg = self.aggregate_bandwidth_bytes_per_cycle
        if agg is None:
            return None
        if (self.contention_threshold is not None
                and sharers > self.contention_threshold):
            agg *= (self.contention_threshold / sharers) ** (
                self.contention_exponent
            )
        return agg

    @property
    def num_sets(self) -> int:
        return self.capacity_bytes // self.line_bytes // self.associativity

    def describe(self) -> str:
        return (
            f"{self.name}: {format_bytes(self.capacity_bytes)} per "
            f"{self.sharing.value}, {self.associativity}-way, "
            f"{self.line_bytes}B lines, {self.latency_cycles} cy"
        )


@dataclass(frozen=True)
class CacheHierarchy:
    """An ordered tuple of cache levels, innermost first.

    Validates monotonicity constraints that every real hierarchy obeys and
    that the analytic cache model depends on: capacities grow outward (per
    sharing instance this can be checked only loosely, so we check
    latencies strictly and require distinct level names).
    """

    levels: tuple[CacheLevel, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigError("cache hierarchy needs at least one level")
        names = [lvl.name for lvl in self.levels]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate cache level names: {names}")
        for inner, outer in zip(self.levels, self.levels[1:]):
            if outer.latency_cycles <= inner.latency_cycles:
                raise ConfigError(
                    f"{outer.name} latency must exceed {inner.name} latency"
                )
            if outer.line_bytes != inner.line_bytes:
                raise ConfigError(
                    "mixed cache line sizes are not supported"
                )

    def __iter__(self):
        return iter(self.levels)

    def __len__(self) -> int:
        return len(self.levels)

    @property
    def line_bytes(self) -> int:
        return self.levels[0].line_bytes

    def level(self, name: str) -> CacheLevel:
        for lvl in self.levels:
            if lvl.name == name:
                return lvl
        raise ConfigError(f"no cache level named {name!r}")

    def capacity_available(
        self,
        level: CacheLevel,
        active_in_domain: int,
    ) -> float:
        """Effective capacity one thread sees in ``level`` when
        ``active_in_domain`` threads share the same instance.

        This is the mechanism behind the paper's cluster-placement result:
        with four active cores per cluster each thread sees only a quarter
        of the 1MiB L2.
        """
        if active_in_domain < 1:
            raise ConfigError("active_in_domain must be >= 1")
        return level.capacity_bytes / active_in_domain

    def describe(self) -> str:
        return "\n".join(lvl.describe() for lvl in self.levels)
