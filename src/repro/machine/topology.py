"""NUMA and cluster topology.

Section 3.2 of the paper discovers (via ``lscpu``) that the SG2042's core
ids are *not* contiguous within a NUMA region: node 0 holds cores 0-7 and
16-23, node 1 holds 8-15 and 24-31, node 2 holds 32-39 and 48-55, node 3
holds 40-47 and 56-63. Clusters of four consecutive core ids share an L2.
The placement policies in :mod:`repro.openmp.affinity` are defined against
this map, so we encode it exactly and validate its invariants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class NumaTopology:
    """Mapping from core ids to NUMA regions and L2 clusters.

    Attributes:
        numa_nodes: One tuple of core ids per NUMA region.
        clusters: One tuple of core ids per L2-sharing cluster. For CPUs
            with a private (or fully package-shared) L2 each core is its
            own cluster.
        sockets: One tuple of core ids per physical socket, or ``None``
            for the common single-socket machine. The multi-socket
            SG2042 boards (arxiv 2502.10320) motivate modelling sockets
            as a tier *above* NUMA: every NUMA region must nest inside
            one socket, and placements spanning sockets pay the
            interconnect term in :mod:`repro.perfmodel.memory`.
    """

    numa_nodes: tuple[tuple[int, ...], ...]
    clusters: tuple[tuple[int, ...], ...]
    sockets: tuple[tuple[int, ...], ...] | None = None

    def __hash__(self) -> int:
        # Topologies key the placement-profile and core-assignment
        # caches, which a sweep consults per grid point; the generated
        # hash re-walks both nested core-id tuples every lookup.
        # Compute once per (frozen) instance.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.numa_nodes, self.clusters, self.sockets))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __post_init__(self) -> None:
        all_numa = [c for node in self.numa_nodes for c in node]
        all_clus = [c for cl in self.clusters for c in cl]
        if not all_numa:
            raise ConfigError("topology must contain at least one core")
        if sorted(all_numa) != list(range(len(all_numa))):
            raise ConfigError(
                "NUMA nodes must partition core ids 0..n-1 exactly once"
            )
        if sorted(all_clus) != sorted(all_numa):
            raise ConfigError("clusters must partition the same core ids")
        # A cluster must not straddle NUMA regions: real hardware keeps L2
        # domains inside a node, and the placement policies assume it.
        node_of = {c: i for i, node in enumerate(self.numa_nodes) for c in node}
        for cluster in self.clusters:
            nodes = {node_of[c] for c in cluster}
            if len(nodes) != 1:
                raise ConfigError(
                    f"cluster {cluster} straddles NUMA regions {nodes}"
                )
        # Reverse maps make numa_of/cluster_of O(1). They are derived
        # from the (validated) declared fields, so they never enter
        # equality or hashing of the frozen dataclass.
        cluster_of = {
            c: i for i, cl in enumerate(self.clusters) for c in cl
        }
        socket_of: dict[int, int] = {}
        if self.sockets is not None:
            all_sock = [c for sock in self.sockets for c in sock]
            if sorted(all_sock) != sorted(all_numa):
                raise ConfigError(
                    "sockets must partition the same core ids as NUMA nodes"
                )
            socket_of = {
                c: i for i, sock in enumerate(self.sockets) for c in sock
            }
            # A NUMA region lives in exactly one socket: memory
            # controllers are physically attached to a package, so the
            # regional-bandwidth model (and first-touch placement)
            # assumes the nesting.
            for node in self.numa_nodes:
                socks = {socket_of[c] for c in node}
                if len(socks) != 1:
                    raise ConfigError(
                        f"NUMA node {node} straddles sockets {socks}"
                    )
        object.__setattr__(self, "_node_of_core", node_of)
        object.__setattr__(self, "_cluster_of_core", cluster_of)
        object.__setattr__(self, "_socket_of_core", socket_of)

    # -- basic queries ----------------------------------------------------

    @property
    def num_cores(self) -> int:
        return sum(len(node) for node in self.numa_nodes)

    @property
    def num_numa_nodes(self) -> int:
        return len(self.numa_nodes)

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    def numa_of(self, core: int) -> int:
        """NUMA region id containing ``core``."""
        node = self._node_of_core.get(core)
        if node is None:
            raise ConfigError(f"core {core} not in topology")
        return node

    def cluster_of(self, core: int) -> int:
        """Cluster id containing ``core``."""
        cluster = self._cluster_of_core.get(core)
        if cluster is None:
            raise ConfigError(f"core {core} not in topology")
        return cluster

    def clusters_in_numa(self, numa: int) -> tuple[int, ...]:
        """Cluster ids whose cores live in NUMA region ``numa``."""
        if not 0 <= numa < self.num_numa_nodes:
            raise ConfigError(f"no NUMA region {numa}")
        node = set(self.numa_nodes[numa])
        return tuple(
            i for i, cl in enumerate(self.clusters) if set(cl) <= node
        )

    def cores_per_numa(self) -> tuple[int, ...]:
        return tuple(len(node) for node in self.numa_nodes)

    @property
    def num_sockets(self) -> int:
        """Socket count; single-socket unless ``sockets`` is declared."""
        return 1 if self.sockets is None else len(self.sockets)

    def socket_of(self, core: int) -> int:
        """Socket id containing ``core`` (always 0 when single-socket)."""
        if self.sockets is None:
            if core not in self._node_of_core:
                raise ConfigError(f"core {core} not in topology")
            return 0
        socket = self._socket_of_core.get(core)
        if socket is None:
            raise ConfigError(f"core {core} not in topology")
        return socket

    def sockets_spanned(self, cores: tuple[int, ...]) -> int:
        """How many distinct sockets a placement touches."""
        if self.sockets is None:
            return 1
        return len({self._socket_of_core[c] for c in cores})

    # -- derived views ----------------------------------------------------

    def active_per_numa(self, cores: tuple[int, ...]) -> dict[int, int]:
        """Count active cores per NUMA region for a placement."""
        counts: dict[int, int] = {}
        for core in cores:
            node = self.numa_of(core)
            counts[node] = counts.get(node, 0) + 1
        return counts

    def active_per_cluster(self, cores: tuple[int, ...]) -> dict[int, int]:
        """Count active cores per L2 cluster for a placement."""
        counts: dict[int, int] = {}
        for core in cores:
            cl = self.cluster_of(core)
            counts[cl] = counts.get(cl, 0) + 1
        return counts

    def lscpu(self) -> str:
        """Render the topology in the style of ``lscpu`` output, matching
        how the paper's authors discovered the SG2042 map."""
        lines = [
            f"CPU(s):              {self.num_cores}",
            f"Socket(s):           {self.num_sockets}",
            f"NUMA node(s):        {self.num_numa_nodes}",
        ]
        for i, node in enumerate(self.numa_nodes):
            lines.append(
                f"NUMA node{i} CPU(s):   {_format_ranges(node)}"
            )
        return "\n".join(lines)


def _format_ranges(cores: tuple[int, ...]) -> str:
    """Collapse a sorted id tuple into lscpu-style ranges: 0-7,16-23."""
    ids = sorted(cores)
    parts: list[str] = []
    start = prev = ids[0]
    for core in ids[1:]:
        if core == prev + 1:
            prev = core
            continue
        parts.append(f"{start}-{prev}" if start != prev else f"{start}")
        start = prev = core
    parts.append(f"{start}-{prev}" if start != prev else f"{start}")
    return ",".join(parts)


def contiguous_topology(
    num_cores: int, num_numa: int = 1, cluster_size: int = 1
) -> NumaTopology:
    """Build the ordinary topology where core ids are contiguous within a
    NUMA region — every CPU in the paper except the SG2042."""
    if num_cores < 1 or num_numa < 1 or cluster_size < 1:
        raise ConfigError("num_cores, num_numa, cluster_size must be >= 1")
    if num_cores % num_numa:
        raise ConfigError(
            f"{num_cores} cores not divisible into {num_numa} NUMA regions"
        )
    per_node = num_cores // num_numa
    if per_node % cluster_size:
        raise ConfigError(
            f"{per_node} cores per node not divisible into clusters of "
            f"{cluster_size}"
        )
    nodes = tuple(
        tuple(range(i * per_node, (i + 1) * per_node)) for i in range(num_numa)
    )
    clusters = tuple(
        tuple(range(i * cluster_size, (i + 1) * cluster_size))
        for i in range(num_cores // cluster_size)
    )
    return NumaTopology(numa_nodes=nodes, clusters=clusters)


def sg2042_topology() -> NumaTopology:
    """The SG2042's interleaved NUMA map as reported in Section 3.2.

    Cores 0-7 and 16-23 are in NUMA region 0, 8-15 and 24-31 in region 1,
    32-39 and 48-55 in region 2, and 40-47 and 56-63 in region 3. Clusters
    of four consecutive ids share an L2.
    """
    nodes = (
        tuple(range(0, 8)) + tuple(range(16, 24)),
        tuple(range(8, 16)) + tuple(range(24, 32)),
        tuple(range(32, 40)) + tuple(range(48, 56)),
        tuple(range(40, 48)) + tuple(range(56, 64)),
    )
    clusters = tuple(tuple(range(i, i + 4)) for i in range(0, 64, 4))
    return NumaTopology(numa_nodes=nodes, clusters=clusters)
