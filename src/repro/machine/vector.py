"""Vector ISA descriptions.

The paper's central microarchitectural finding is that the XuanTie C920's
RVV v0.7.1 implementation does **not** vectorize FP64 (Section 3.2,
Figure 2), while the x86 CPUs vectorize both precisions. We encode a
vector ISA as a register width plus the set of element types it can
vectorize, so lane counts fall out as ``width_bits // dtype_bits`` and the
FP64 asymmetry is data, not a special case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.errors import ConfigError


class DType(enum.Enum):
    """Element data types that appear in the RAJAPerf kernels."""

    FP16 = ("fp16", 16, True)
    FP32 = ("fp32", 32, True)
    FP64 = ("fp64", 64, True)
    INT8 = ("int8", 8, False)
    INT16 = ("int16", 16, False)
    INT32 = ("int32", 32, False)
    INT64 = ("int64", 64, False)

    def __init__(self, label: str, bits: int, is_float: bool) -> None:
        self.label = label
        self.bits = bits
        self.is_float = is_float

    @property
    def bytes(self) -> int:
        return self.bits // 8

    @classmethod
    def from_label(cls, label: str) -> "DType":
        for member in cls:
            if member.label == label:
                return member
        raise ConfigError(f"unknown dtype label {label!r}")


@dataclass(frozen=True)
class VectorISA:
    """A SIMD/vector instruction set as the performance model sees it.

    Attributes:
        name: Human-readable ISA name (``"RVV v0.7.1"``, ``"AVX2"``).
        width_bits: Architectural vector register width. For the
            Sandybridge E5-2609 we follow the paper and treat AVX as
            128-bit for arithmetic throughput.
        vectorizable: Data types for which the hardware executes vector
            arithmetic. Missing dtypes fall back to scalar (1 lane).
        vla: Whether the ISA supports Vector Length Agnostic code
            (RVV only; x86 SIMD is fixed-width).
        version: Optional version string used by the compiler model to
            check assembly compatibility (RVV v0.7.1 vs v1.0 matters).
    """

    name: str
    width_bits: int
    vectorizable: frozenset[DType] = field(default_factory=frozenset)
    vla: bool = False
    version: str | None = None

    def __post_init__(self) -> None:
        if self.width_bits < 0 or self.width_bits % 64 not in (0,):
            if self.width_bits != 0:
                raise ConfigError(
                    f"vector width must be a multiple of 64 bits or 0, got "
                    f"{self.width_bits}"
                )

    @property
    def is_scalar_only(self) -> bool:
        """True for cores with no vector unit at all (SiFive U74)."""
        return self.width_bits == 0 or not self.vectorizable

    def supports(self, dtype: DType) -> bool:
        """Whether vector *arithmetic* on ``dtype`` executes in the vector
        unit (as opposed to falling back to the scalar pipeline)."""
        return not self.is_scalar_only and dtype in self.vectorizable

    def lanes(self, dtype: DType) -> int:
        """Number of elements of ``dtype`` processed per vector operation.

        Returns 1 when the ISA cannot vectorize the dtype — the scalar
        fallback the paper observes for FP64 on the C920.
        """
        if not self.supports(dtype):
            return 1
        return max(1, self.width_bits // dtype.bits)


_ALL_FLOATS = frozenset({DType.FP16, DType.FP32})
_ALL_INTS = frozenset(
    {DType.INT8, DType.INT16, DType.INT32, DType.INT64}
)


def rvv_0_7_1() -> VectorISA:
    """The C920's RVV v0.7.1: 128-bit, FP16/FP32 + integers, **no FP64**.

    The T-Head datasheet is contradictory about FP64 (Section 2.1 of the
    paper); the paper's measurements (Figure 2) show no FP64 vector
    benefit, so the model follows the measurements.
    """
    return VectorISA(
        name="RVV v0.7.1",
        width_bits=128,
        vectorizable=_ALL_FLOATS | _ALL_INTS,
        vla=True,
        version="0.7.1",
    )


def rvv_1_0(width_bits: int = 128) -> VectorISA:
    """Ratified RVV v1.0 (what Clang targets); includes FP64."""
    return VectorISA(
        name="RVV v1.0",
        width_bits=width_bits,
        vectorizable=_ALL_FLOATS | _ALL_INTS | {DType.FP64},
        vla=True,
        version="1.0",
    )


def scalar_only() -> VectorISA:
    """No vector extension (SiFive U74: RV64GC only)."""
    return VectorISA(name="none", width_bits=0)


def avx() -> VectorISA:
    """AVX as present on Sandybridge.

    The paper treats the E5-2609's effective vector width as 128-bit
    ("the vector register lengths are the same, 128-bit, as the SG2042");
    we follow the paper so Figure 4/5 comparisons carry over.
    """
    return VectorISA(
        name="AVX",
        width_bits=128,
        vectorizable=frozenset({DType.FP32, DType.FP64}),
    )


def avx2() -> VectorISA:
    """AVX2 + FMA (Rome, Broadwell): 256-bit, all float and int types."""
    return VectorISA(
        name="AVX2",
        width_bits=256,
        vectorizable=_ALL_FLOATS | _ALL_INTS | {DType.FP64},
    )


def avx512() -> VectorISA:
    """AVX-512 (Icelake server): 512-bit."""
    return VectorISA(
        name="AVX512",
        width_bits=512,
        vectorizable=_ALL_FLOATS | _ALL_INTS | {DType.FP64},
    )
