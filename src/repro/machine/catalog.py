"""The seven CPUs the paper measures, served from the data registry.

The calibrated parameters live in the schema-validated JSON documents
under ``repro/registry/data/machines/`` (one document per machine; see
``docs/REGISTRY.md``). Each factory here is a thin lookup into
:func:`repro.registry.default_registry`, pinned byte-identical to the
reference Python constructors in :mod:`repro.machine._reference` by
test — so a catalog CPU and its registry-loaded twin share one
``machine_digest`` and therefore the same :mod:`repro.store` artifacts.

The registry caches parsed documents but constructs per call, so the
factories keep returning fresh immutable instances — callers may use
them as dictionary keys and compare by value, as before.
"""

from __future__ import annotations

from repro.machine.cpu import CPUModel

__all__ = [
    "sg2042",
    "visionfive_v2",
    "visionfive_v1",
    "amd_rome",
    "intel_broadwell",
    "intel_icelake",
    "intel_sandybridge",
    "all_cpus",
    "x86_cpus",
    "riscv_cpus",
]


def _lookup(name: str) -> CPUModel:
    # Imported lazily: the registry validates machine documents through
    # repro.machine.serialize, which imports this package.
    from repro.registry import default_registry

    return default_registry().machine(name)


def sg2042() -> CPUModel:
    """Sophon SG2042: 64 XuanTie C920 cores @ 2 GHz, RVV v0.7.1."""
    return _lookup("sg2042")


def visionfive_v2() -> CPUModel:
    """StarFive VisionFive V2 (JH7110): 4 SiFive U74 cores, no RVV."""
    return _lookup("visionfive_v2")


def visionfive_v1() -> CPUModel:
    """StarFive VisionFive V1 (JH7100): 2 SiFive U74 cores."""
    return _lookup("visionfive_v1")


def amd_rome() -> CPUModel:
    """AMD Rome EPYC 7742 (ARCHER2): 64 Zen 2 cores, AVX2."""
    return _lookup("amd_rome")


def intel_broadwell() -> CPUModel:
    """Intel Broadwell Xeon E5-2695 v4 (Cirrus): 18 cores, AVX2."""
    return _lookup("intel_broadwell")


def intel_icelake() -> CPUModel:
    """Intel Icelake Xeon 6330: 28 cores, AVX-512."""
    return _lookup("intel_icelake")


def intel_sandybridge() -> CPUModel:
    """Intel Sandybridge Xeon E5-2609: 4 cores, AVX without FMA."""
    return _lookup("intel_sandybridge")


def riscv_cpus() -> dict[str, CPUModel]:
    """The RISC-V platforms of Section 3.1, keyed by short name."""
    return {
        "sg2042": sg2042(),
        "visionfive_v2": visionfive_v2(),
        "visionfive_v1": visionfive_v1(),
    }


def x86_cpus() -> dict[str, CPUModel]:
    """The x86 comparison platforms of Table 4, keyed by short name."""
    return {
        "amd_rome": amd_rome(),
        "intel_broadwell": intel_broadwell(),
        "intel_icelake": intel_icelake(),
        "intel_sandybridge": intel_sandybridge(),
    }


def all_cpus() -> dict[str, CPUModel]:
    """Every CPU in the *paper's* study, keyed by short name.

    Registry-only machines added by the sequels (``sophon_sg2044``,
    ``sg2042_2s``) are deliberately absent — the paper's tables stay
    seven machines wide. Use ``default_registry().machines()`` for the
    full set.
    """
    cpus = riscv_cpus()
    cpus.update(x86_cpus())
    return cpus
