"""Reference Python constructors for the paper's seven CPUs.

Published parameters (clock, core counts, vector widths, cache sizes and
sharing, controller counts, NUMA maps) are taken directly from Section 2.1
and Table 4 of the paper. The remaining calibration factors — sustained
versus peak efficiencies and per-core bandwidth caps — were fitted so that
the experiment pipeline reproduces the paper's headline ratios; each
factory's docstring states the fit rationale.

These factories are the *provenance* of the registry's seed data files
(``repro/registry/data/machines/*.json``): the shipped JSON is generated
from them via :func:`repro.machine.serialize.cpu_to_dict` and pinned
byte-identical by test. Runtime lookups go through
:mod:`repro.machine.catalog`, which reads the registry; this module stays
importable so the equivalence pin has an independent side to compare
against. Machines added after the paper (``sophon_sg2044``,
``sg2042_2s``) exist only as data files, deliberately.
"""

from __future__ import annotations

from repro.machine.cache import CacheHierarchy, CacheLevel, Sharing
from repro.machine.cpu import CoreModel, CPUModel, MemorySystem
from repro.machine.topology import contiguous_topology, sg2042_topology
from repro.machine.vector import (
    avx,
    avx2,
    avx512,
    rvv_0_7_1,
    scalar_only,
)
from repro.util.units import GHZ, KIB, MIB

__all__ = [
    "sg2042",
    "visionfive_v2",
    "visionfive_v1",
    "amd_rome",
    "intel_broadwell",
    "intel_icelake",
    "intel_sandybridge",
    "REFERENCE_FACTORIES",
]


def sg2042() -> CPUModel:
    """Sophon SG2042: 64 XuanTie C920 cores @ 2 GHz, RVV v0.7.1 (128-bit,
    no FP64 vectors), clusters of 4 sharing 1MiB L2, 64MiB L3, four
    DDR4-3200 controllers — one per NUMA region.

    Calibration: the C920 sustains well below its 12-stage OoO peak on
    real codes; scalar efficiency 0.60 with 2 FP ops/cycle gives a 2.4
    GFLOP/s scalar rate, and the memory system is modelled at the widely
    reported ~24 GB/s sustained package bandwidth (~23% of peak), 6 GB/s
    per core.
    """
    core = CoreModel(
        name="XuanTie C920",
        clock_hz=2.0 * GHZ,
        fp_ops_per_cycle=2.0,
        vector_pipes=1,
        isa=rvv_0_7_1(),
        fma=True,
        out_of_order=True,
        scalar_efficiency=0.60,
        vector_efficiency=0.50,
        ls_ops_per_cycle=1.0,
    )
    caches = CacheHierarchy(
        levels=(
            CacheLevel("L1D", 64 * KIB, Sharing.CORE, associativity=4,
                       latency_cycles=3, bandwidth_bytes_per_cycle=16.0),
            CacheLevel("L2", 1 * MIB, Sharing.CLUSTER, associativity=16,
                       latency_cycles=14, bandwidth_bytes_per_cycle=8.0),
            # The 64MiB "system cache" is physically sliced per memory
            # controller — 16MiB in front of each NUMA region's DDR
            # channel. Each slice sustains ~8 GB/s per requesting core
            # and ~28 GB/s aggregate, degrading sharply once more than 8
            # cores in the region hammer it: the mechanism behind both
            # the block-placement collapse at 32 threads and the
            # 64-thread collapse of stream kernels (Tables 1-3).
            CacheLevel("L3", 16 * MIB, Sharing.NUMA, associativity=16,
                       latency_cycles=40, bandwidth_bytes_per_cycle=6.0,
                       aggregate_bandwidth_bytes_per_cycle=14.0,
                       contention_threshold=8,
                       contention_exponent=3.0),
        )
    )
    memory = MemorySystem(
        controllers=4,
        channel_bandwidth_bytes=25.6e9,  # DDR4-3200
        efficiency=0.234,
        latency_ns=130.0,
        numa_local=True,
        per_core_bandwidth_bytes=7.0e9,
        thrash_threshold=8,
        thrash_exponent=1.8,
    )
    return CPUModel(
        name="Sophon SG2042",
        part="SG2042",
        core=core,
        caches=caches,
        topology=sg2042_topology(),
        memory=memory,
        fork_join_ns=2500.0,
    )


def visionfive_v2() -> CPUModel:
    """StarFive VisionFive V2 (JH7110): 4 SiFive U74 cores @ 1.5 GHz,
    RV64GC only (no vector extension), 2MiB package-shared L2.

    Calibration: the in-order dual-issue U74 is derated to 30% of its
    dual-issue peak on dependent FP loops (no OoO window), sustaining
    ~0.63 GFLOP/s; LPDDR4 sustains ~2.8 GB/s package-wide, 1.6 GB/s for
    one core. These land the paper's 4.3-6.5x (FP64) C920-vs-U74 band.
    """
    core = CoreModel(
        name="SiFive U74",
        clock_hz=1.5 * GHZ,
        fp_ops_per_cycle=2.0,
        vector_pipes=0,
        isa=scalar_only(),
        fma=True,
        out_of_order=False,
        scalar_efficiency=0.70,
        inorder_penalty=0.26,
        ls_ops_per_cycle=1.0,
    )
    caches = CacheHierarchy(
        levels=(
            CacheLevel("L1D", 32 * KIB, Sharing.CORE, associativity=8,
                       latency_cycles=3, bandwidth_bytes_per_cycle=8.0),
            CacheLevel("L2", 2 * MIB, Sharing.PACKAGE, associativity=16,
                       latency_cycles=21, bandwidth_bytes_per_cycle=8.0),
        )
    )
    memory = MemorySystem(
        controllers=1,
        channel_bandwidth_bytes=12.8e9,  # LPDDR4-3200 x32
        efficiency=0.22,
        latency_ns=140.0,
        numa_local=False,
        per_core_bandwidth_bytes=1.6e9,
    )
    return CPUModel(
        name="StarFive VisionFive V2",
        part="JH7110",
        core=core,
        caches=caches,
        topology=contiguous_topology(4),
        memory=memory,
        fork_join_ns=3000.0,
    )


def visionfive_v1() -> CPUModel:
    """StarFive VisionFive V1 (JH7100): 2 SiFive U74 cores, nominally the
    same 1.5 GHz core as the V2 yet measured 3-6x slower at FP64 and 1-3x
    at FP32 (Figure 1) — a phenomenon the paper leaves unexplained.

    Calibration: we reproduce the measurement with the mechanism the data
    suggests: the JH7100's DRAM path is drastically slower (its L2/DDR
    subsystem predates the JH7110 redesign), sustaining ~0.45 GB/s per
    core. Because FP64 doubles per-element traffic, a bandwidth-starved
    part degrades twice as much at FP64 as at FP32, matching the paper's
    asymmetric V1/V2 gap without needing a clock difference.
    """
    core = CoreModel(
        name="SiFive U74",
        clock_hz=1.5 * GHZ,
        fp_ops_per_cycle=2.0,
        vector_pipes=0,
        isa=scalar_only(),
        fma=True,
        out_of_order=False,
        scalar_efficiency=0.60,
        inorder_penalty=0.26,
        ls_ops_per_cycle=1.0,
    )
    caches = CacheHierarchy(
        levels=(
            CacheLevel("L1D", 32 * KIB, Sharing.CORE, associativity=8,
                       latency_cycles=3, bandwidth_bytes_per_cycle=8.0),
            CacheLevel("L2", 2 * MIB, Sharing.PACKAGE, associativity=16,
                       latency_cycles=24, bandwidth_bytes_per_cycle=4.0),
        )
    )
    memory = MemorySystem(
        controllers=1,
        channel_bandwidth_bytes=12.8e9,
        efficiency=0.05,
        latency_ns=180.0,
        numa_local=False,
        per_core_bandwidth_bytes=0.38e9,
    )
    return CPUModel(
        name="StarFive VisionFive V1",
        part="JH7100",
        core=core,
        caches=caches,
        topology=contiguous_topology(2),
        memory=memory,
        fork_join_ns=3000.0,
    )


def amd_rome() -> CPUModel:
    """AMD Rome EPYC 7742 (ARCHER2): 64 cores @ 2.25 GHz, AVX2+FMA
    (256-bit), 512KiB private L2, 16MiB L3 per 4-core CCX, four NUMA
    regions of 16 cores, eight DDR4-3200 controllers.

    Calibration: mature x86 cores sustain ~85% scalar and ~50% vector
    peak on RAJAPerf-style loops; package memory sustains ~150 GB/s.
    """
    core = CoreModel(
        name="Zen 2",
        clock_hz=2.25 * GHZ,
        fp_ops_per_cycle=4.0,
        vector_pipes=2,
        isa=avx2(),
        fma=True,
        out_of_order=True,
        scalar_efficiency=0.85,
        vector_efficiency=0.50,
    )
    caches = CacheHierarchy(
        levels=(
            CacheLevel("L1D", 32 * KIB, Sharing.CORE, associativity=8,
                       latency_cycles=4, bandwidth_bytes_per_cycle=64.0),
            CacheLevel("L2", 512 * KIB, Sharing.CORE, associativity=8,
                       latency_cycles=12, bandwidth_bytes_per_cycle=32.0),
            CacheLevel("L3", 16 * MIB, Sharing.CLUSTER, associativity=16,
                       latency_cycles=39, bandwidth_bytes_per_cycle=16.0),
        )
    )
    memory = MemorySystem(
        controllers=8,
        channel_bandwidth_bytes=25.6e9,
        efficiency=0.75,
        latency_ns=105.0,
        numa_local=True,
        per_core_bandwidth_bytes=22.0e9,
    )
    return CPUModel(
        name="AMD Rome",
        part="EPYC 7742",
        core=core,
        caches=caches,
        topology=contiguous_topology(64, num_numa=4, cluster_size=4),
        memory=memory,
        fork_join_ns=1200.0,
    )


def intel_broadwell() -> CPUModel:
    """Intel Broadwell Xeon E5-2695 v4 (Cirrus): 18 cores @ 2.1 GHz, AVX2,
    256KiB private L2, 45MiB shared L3, single NUMA region, four DDR4-2400
    controllers."""
    core = CoreModel(
        name="Broadwell",
        clock_hz=2.1 * GHZ,
        fp_ops_per_cycle=4.0,
        vector_pipes=2,
        isa=avx2(),
        fma=True,
        out_of_order=True,
        scalar_efficiency=0.85,
        vector_efficiency=0.50,
    )
    caches = CacheHierarchy(
        levels=(
            CacheLevel("L1D", 32 * KIB, Sharing.CORE, associativity=8,
                       latency_cycles=4, bandwidth_bytes_per_cycle=64.0),
            CacheLevel("L2", 256 * KIB, Sharing.CORE, associativity=8,
                       latency_cycles=12, bandwidth_bytes_per_cycle=32.0),
            CacheLevel("L3", 45 * MIB, Sharing.PACKAGE, associativity=20,
                       latency_cycles=34, bandwidth_bytes_per_cycle=16.0),
        )
    )
    memory = MemorySystem(
        controllers=4,
        channel_bandwidth_bytes=19.2e9,  # DDR4-2400
        efficiency=0.75,
        latency_ns=95.0,
        numa_local=False,
        per_core_bandwidth_bytes=15.0e9,
    )
    return CPUModel(
        name="Intel Broadwell",
        part="Xeon E5-2695",
        core=core,
        caches=caches,
        topology=contiguous_topology(18),
        memory=memory,
        fork_join_ns=900.0,
    )


def intel_icelake() -> CPUModel:
    """Intel Icelake Xeon 6330: 28 cores @ 2.0 GHz, AVX-512, 1MiB private
    L2 (four times the SG2042's per-core share), 43MiB shared L3, single
    NUMA region, eight DDR4-2933 controllers."""
    core = CoreModel(
        name="Icelake-SP",
        clock_hz=2.0 * GHZ,
        fp_ops_per_cycle=4.0,
        vector_pipes=2,
        isa=avx512(),
        fma=True,
        out_of_order=True,
        scalar_efficiency=0.85,
        vector_efficiency=0.45,
    )
    caches = CacheHierarchy(
        levels=(
            CacheLevel("L1D", 48 * KIB, Sharing.CORE, associativity=12,
                       latency_cycles=5, bandwidth_bytes_per_cycle=128.0),
            CacheLevel("L2", 1 * MIB, Sharing.CORE, associativity=16,
                       latency_cycles=13, bandwidth_bytes_per_cycle=64.0),
            CacheLevel("L3", 43 * MIB, Sharing.PACKAGE, associativity=16,
                       latency_cycles=42, bandwidth_bytes_per_cycle=16.0),
        )
    )
    memory = MemorySystem(
        controllers=8,
        channel_bandwidth_bytes=23.5e9,  # DDR4-2933
        efficiency=0.75,
        latency_ns=90.0,
        numa_local=False,
        per_core_bandwidth_bytes=20.0e9,
    )
    return CPUModel(
        name="Intel Icelake",
        part="Xeon 6330",
        core=core,
        caches=caches,
        topology=contiguous_topology(28),
        memory=memory,
        fork_join_ns=900.0,
    )


def intel_sandybridge() -> CPUModel:
    """Intel Sandybridge Xeon E5-2609 (2012): 4 cores @ 2.4 GHz, AVX with
    no FMA — the paper treats its effective vector width as 128-bit, the
    same as the SG2042 — 256KiB private L2, 10MiB shared L3, four DDR3-1066
    channels.

    Calibration: separate 128-bit add and multiply pipes (vector_pipes=2,
    fma=False) sustain ~5.8 GFLOP/s FP64 vector — roughly 2.4x the C920's
    scalar FP64 — while DDR3 per-core bandwidth (~8 GB/s) only matches the
    C920's, which is why the paper finds Sandybridge *slower* for the
    memory-bound stream and algorithm classes at FP64.
    """
    core = CoreModel(
        name="Sandy Bridge",
        clock_hz=2.4 * GHZ,
        fp_ops_per_cycle=2.0,
        vector_pipes=2,
        isa=avx(),
        fma=False,
        out_of_order=True,
        scalar_efficiency=0.75,
        vector_efficiency=0.50,
    )
    caches = CacheHierarchy(
        levels=(
            CacheLevel("L1D", 64 * KIB, Sharing.CORE, associativity=8,
                       latency_cycles=4, bandwidth_bytes_per_cycle=32.0),
            CacheLevel("L2", 256 * KIB, Sharing.CORE, associativity=8,
                       latency_cycles=12, bandwidth_bytes_per_cycle=32.0),
            CacheLevel("L3", 10 * MIB, Sharing.PACKAGE, associativity=20,
                       latency_cycles=30, bandwidth_bytes_per_cycle=16.0),
        )
    )
    memory = MemorySystem(
        controllers=4,
        channel_bandwidth_bytes=8.53e9,  # DDR3-1066
        efficiency=0.60,
        latency_ns=85.0,
        numa_local=False,
        per_core_bandwidth_bytes=6.2e9,
    )
    return CPUModel(
        name="Intel Sandybridge",
        part="Xeon E5-2609",
        core=core,
        caches=caches,
        topology=contiguous_topology(4),
        memory=memory,
        fork_join_ns=800.0,
    )


#: Short registry name -> reference constructor, in catalog order.
REFERENCE_FACTORIES = {
    "sg2042": sg2042,
    "visionfive_v2": visionfive_v2,
    "visionfive_v1": visionfive_v1,
    "amd_rome": amd_rome,
    "intel_broadwell": intel_broadwell,
    "intel_icelake": intel_icelake,
    "intel_sandybridge": intel_sandybridge,
}
