"""Whole-CPU model: core microarchitecture + caches + topology + memory.

A :class:`CPUModel` is a pure description — the analytic performance model
in :mod:`repro.perfmodel` consumes it. Parameters come from datasheets
where published (clock, widths, capacities, controller counts) and from a
small set of calibration factors (sustained-versus-peak efficiencies)
documented per machine in :mod:`repro.machine.catalog`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cache import CacheHierarchy
from repro.machine.topology import NumaTopology
from repro.machine.vector import DType, VectorISA
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class CoreModel:
    """One CPU core as the throughput model sees it.

    Attributes:
        name: Core name (``"XuanTie C920"``, ``"SiFive U74"``).
        clock_hz: Core clock.
        fp_ops_per_cycle: Peak scalar floating-point operations retired per
            cycle (counting an FMA as two). 2 for a single fully pipelined
            FMA unit, 4 for dual FMA pipes.
        vector_pipes: Number of vector execution pipes; total vector
            flops/cycle = ``vector_pipes * lanes(dtype) * fma factor``.
        fma: Whether fused multiply-add doubles per-op flops.
        out_of_order: Out-of-order vs in-order; in-order cores take the
            :attr:`inorder_penalty` multiplier on achievable IPC.
        scalar_efficiency: Calibration factor in (0, 1] for sustained vs
            peak scalar throughput on loop kernels.
        vector_efficiency: Same for vector code.
        isa: The vector ISA description.
        inorder_penalty: Throughput derating applied when
            ``out_of_order`` is False (dependency stalls an OoO window
            would hide).
        ls_ops_per_cycle: Load/store instructions issued per cycle. A
            vector load/store moves ``lanes`` elements per instruction,
            which is why enabling RVV helps the bandwidth-hungry stream
            class on the C920 even when the data is cache-resident.
    """

    name: str
    clock_hz: float
    fp_ops_per_cycle: float
    vector_pipes: int
    isa: VectorISA
    fma: bool = True
    out_of_order: bool = True
    scalar_efficiency: float = 0.7
    vector_efficiency: float = 0.6
    inorder_penalty: float = 0.55
    ls_ops_per_cycle: float = 2.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigError(f"{self.name}: clock must be positive")
        if self.fp_ops_per_cycle <= 0:
            raise ConfigError(f"{self.name}: fp_ops_per_cycle must be > 0")
        if self.vector_pipes < 0:
            raise ConfigError(f"{self.name}: vector_pipes must be >= 0")
        for attr in ("scalar_efficiency", "vector_efficiency",
                     "inorder_penalty"):
            val = getattr(self, attr)
            if not 0 < val <= 1:
                raise ConfigError(
                    f"{self.name}: {attr} must be in (0, 1], got {val}"
                )
        if self.vector_pipes and self.isa.is_scalar_only:
            raise ConfigError(
                f"{self.name}: vector pipes without a vector ISA"
            )
        if self.ls_ops_per_cycle <= 0:
            raise ConfigError(f"{self.name}: ls_ops_per_cycle must be > 0")

    def scalar_flops_per_second(self, dtype: DType) -> float:
        """Sustained scalar FLOP rate for loop code of ``dtype``."""
        rate = self.clock_hz * self.fp_ops_per_cycle * self.scalar_efficiency
        if not self.out_of_order:
            rate *= self.inorder_penalty
        # FP64 on 32-bit-datapath FPUs would halve here; every core in the
        # paper has a 64-bit scalar FPU so scalar rate is dtype-neutral.
        return rate

    def vector_flops_per_second(self, dtype: DType) -> float:
        """Sustained FLOP rate when the executed code path is vector code
        of ``dtype``. Falls back to the scalar rate when the ISA cannot
        vectorize the dtype (the C920-FP64 case)."""
        if not self.isa.supports(dtype):
            return self.scalar_flops_per_second(dtype)
        lanes = self.isa.lanes(dtype)
        ops = 2.0 if self.fma else 1.0
        rate = (
            self.clock_hz
            * self.vector_pipes
            * lanes
            * ops
            * self.vector_efficiency
        )
        if not self.out_of_order:
            rate *= self.inorder_penalty
        return rate

    def flops_per_second(self, dtype: DType, vectorized: bool) -> float:
        """Dispatch on the executed code path."""
        if vectorized:
            return self.vector_flops_per_second(dtype)
        return self.scalar_flops_per_second(dtype)


@dataclass(frozen=True)
class MemorySystem:
    """DRAM subsystem: controllers, their placement and bandwidth.

    Attributes:
        controllers: Total number of memory controllers in the package.
            The paper stresses that the SG2042 has one controller per NUMA
            region while Rome has two and single-node Icelake has eight.
        channel_bandwidth_bytes: Peak bandwidth of one controller/channel
            (e.g. DDR4-3200 -> 25.6 GB/s).
        efficiency: Sustained/peak calibration factor. The SG2042's memory
            subsystem is known to sustain a small fraction of peak (STREAM
            triad measures ~15-20 GB/s package-wide); x86 servers sustain
            70-85%.
        latency_ns: Loaded DRAM latency, feeding the latency term for
            strided/irregular kernels.
        numa_local: Whether controllers are distributed one-per-NUMA-region
            (True for SG2042/Rome) or pooled on a single node.
        per_core_bandwidth_bytes: Maximum DRAM bandwidth one core can draw
            (limited by its load/store units and MSHR count) regardless of
            how idle the controllers are. This is what bounds the
            single-thread Stream results.
        thrash_threshold: Active cores per NUMA region beyond which the
            region's controller bandwidth degrades (row-buffer and queue
            thrashing). ``None`` disables the effect; it is what the
            paper's 64-thread measurements suggest for the SG2042.
        thrash_exponent: Degradation exponent, as in
            :meth:`repro.machine.cache.CacheLevel.effective_aggregate_bandwidth`.
    """

    controllers: int
    channel_bandwidth_bytes: float
    efficiency: float
    latency_ns: float = 100.0
    numa_local: bool = True
    per_core_bandwidth_bytes: float = 10e9
    thrash_threshold: int | None = None
    thrash_exponent: float = 1.8

    def __post_init__(self) -> None:
        if self.controllers < 1:
            raise ConfigError("need at least one memory controller")
        if self.channel_bandwidth_bytes <= 0:
            raise ConfigError("channel bandwidth must be positive")
        if not 0 < self.efficiency <= 1:
            raise ConfigError(
                f"memory efficiency must be in (0, 1], got {self.efficiency}"
            )
        if self.latency_ns <= 0:
            raise ConfigError("latency must be positive")
        if self.per_core_bandwidth_bytes <= 0:
            raise ConfigError("per-core bandwidth must be positive")
        if self.thrash_threshold is not None and self.thrash_threshold < 1:
            raise ConfigError("thrash threshold must be >= 1")
        if self.thrash_exponent < 0:
            raise ConfigError("thrash exponent must be >= 0")

    @property
    def package_bandwidth(self) -> float:
        """Sustained package-wide DRAM bandwidth in bytes/s."""
        return self.controllers * self.channel_bandwidth_bytes * self.efficiency

    def bandwidth_per_numa(self, num_numa: int) -> float:
        """Sustained bandwidth available inside one NUMA region."""
        if num_numa < 1:
            raise ConfigError("num_numa must be >= 1")
        if self.controllers % num_numa and self.numa_local:
            raise ConfigError(
                f"{self.controllers} controllers cannot be spread evenly "
                f"over {num_numa} NUMA regions"
            )
        return self.package_bandwidth / num_numa

    def effective_region_bandwidth(
        self, num_numa: int, active_in_region: int
    ) -> float:
        """Region bandwidth after the oversubscription thrash penalty."""
        if active_in_region < 1:
            raise ConfigError("active_in_region must be >= 1")
        bandwidth = self.bandwidth_per_numa(num_numa)
        if (self.thrash_threshold is not None
                and active_in_region > self.thrash_threshold):
            bandwidth *= (
                self.thrash_threshold / active_in_region
            ) ** self.thrash_exponent
        return bandwidth


@dataclass(frozen=True)
class SocketInterconnect:
    """The link between sockets of a multi-socket board.

    The 2-socket SG2042 study (arxiv 2502.10320) shows cross-socket
    traffic collapsing far below local bandwidth; these three numbers
    feed the socket-hop term in
    :func:`repro.perfmodel.memory.dram_bandwidth_per_thread`.

    Attributes:
        bandwidth_bytes: Peak one-direction link bandwidth in bytes/s.
        latency_ns: Extra latency a remote-socket DRAM access pays on
            top of the local :attr:`MemorySystem.latency_ns`.
        efficiency: Sustained/peak calibration factor for the link under
            contention, in (0, 1].
    """

    bandwidth_bytes: float
    latency_ns: float
    efficiency: float = 0.8

    def __post_init__(self) -> None:
        if self.bandwidth_bytes <= 0:
            raise ConfigError("interconnect bandwidth must be positive")
        if self.latency_ns <= 0:
            raise ConfigError("interconnect latency must be positive")
        if not 0 < self.efficiency <= 1:
            raise ConfigError(
                f"interconnect efficiency must be in (0, 1], "
                f"got {self.efficiency}"
            )

    @property
    def sustained_bandwidth(self) -> float:
        return self.bandwidth_bytes * self.efficiency


@dataclass(frozen=True)
class CPUModel:
    """A complete CPU package description.

    Attributes:
        name: Marketing name used in reports (``"Sophon SG2042"``).
        part: Part number (``"EPYC 7742"``).
        core: The per-core model.
        caches: Data-cache hierarchy.
        topology: NUMA/cluster map.
        memory: DRAM subsystem.
        fork_join_ns: Base cost of an OpenMP fork+join at one thread;
            grows with thread count in the runtime model.
        smt: SMT ways; the paper disables SMT everywhere, so always 1 here,
            but kept explicit because the claim matters.
        interconnect: Socket-to-socket link, required exactly when the
            topology declares more than one socket; ``None`` for every
            single-socket machine.
    """

    name: str
    part: str
    core: CoreModel
    caches: CacheHierarchy
    topology: NumaTopology
    memory: MemorySystem
    fork_join_ns: float = 2000.0
    smt: int = 1
    interconnect: SocketInterconnect | None = None

    def __hash__(self) -> int:
        # A CPUModel keys several hot per-sweep caches (machine digest,
        # batch-engine prelude); the generated hash re-walks the whole
        # nested model every lookup. Compute once per (frozen) instance.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((
                self.name, self.part, self.core, self.caches,
                self.topology, self.memory, self.fork_join_ns, self.smt,
                self.interconnect,
            ))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __post_init__(self) -> None:
        if self.fork_join_ns < 0:
            raise ConfigError("fork_join_ns must be >= 0")
        if self.smt != 1:
            raise ConfigError(
                "the paper disables SMT on every platform; smt must be 1"
            )
        if self.topology.num_sockets > 1 and self.interconnect is None:
            raise ConfigError(
                f"{self.name}: multi-socket topology requires an "
                "interconnect description"
            )
        if self.topology.num_sockets == 1 and self.interconnect is not None:
            raise ConfigError(
                f"{self.name}: interconnect given but topology declares "
                "a single socket"
            )
        if self.memory.numa_local:
            # validated for side effect: controllers divide evenly
            self.memory.bandwidth_per_numa(self.topology.num_numa_nodes)
        # Cross-cutting model invariants (capacity monotonicity, issue
        # widths, ...) live in the resilience validator; imported lazily
        # because repro.resilience type-hints against this module.
        from repro.resilience.validate import validate_cpu

        validate_cpu(self)

    @property
    def num_cores(self) -> int:
        return self.topology.num_cores

    def describe(self) -> str:
        """Human-readable spec block, as used in README/EXPERIMENTS."""
        mem = self.memory
        lines = [
            f"{self.name} ({self.part})",
            f"  cores: {self.num_cores} x {self.core.name} @ "
            f"{self.core.clock_hz / 1e9:.2f} GHz",
            f"  vector: {self.core.isa.name} "
            f"({self.core.isa.width_bits}-bit)",
            "  caches:",
        ]
        lines.extend("    " + line for line in self.caches.describe().split("\n"))
        lines.append(
            f"  memory: {mem.controllers} controllers x "
            f"{mem.channel_bandwidth_bytes / 1e9:.1f} GB/s "
            f"(sustained {mem.package_bandwidth / 1e9:.1f} GB/s)"
        )
        lines.append(
            f"  NUMA regions: {self.topology.num_numa_nodes}, "
            f"clusters: {self.topology.num_clusters}"
        )
        if self.interconnect is not None:
            ic = self.interconnect
            lines.append(
                f"  sockets: {self.topology.num_sockets} linked at "
                f"{ic.sustained_bandwidth / 1e9:.1f} GB/s sustained, "
                f"+{ic.latency_ns:.0f} ns remote"
            )
        return "\n".join(lines)
