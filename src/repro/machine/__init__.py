"""Microarchitectural machine descriptions.

This subpackage encodes the published hardware parameters of every CPU the
paper measures (Section 2.1 and Table 4): core microarchitecture, vector
ISA and per-dtype vectorization support, cache hierarchy with sharing
domains, and NUMA topology including the SG2042's unusual non-contiguous
core-id map.
"""

from repro.machine.cache import CacheHierarchy, CacheLevel, Sharing
from repro.machine.cpu import (
    CoreModel,
    CPUModel,
    MemorySystem,
    SocketInterconnect,
)
from repro.machine.topology import NumaTopology
from repro.machine.vector import DType, VectorISA

from repro.machine import catalog

__all__ = [
    "CacheLevel",
    "CacheHierarchy",
    "Sharing",
    "CoreModel",
    "CPUModel",
    "MemorySystem",
    "SocketInterconnect",
    "NumaTopology",
    "VectorISA",
    "DType",
    "catalog",
]
