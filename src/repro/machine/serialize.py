"""Machine description serialization (JSON).

Lets users define their own CPUs — the "what if" workflows in
``examples/future_hardware.py`` and the documents under
``repro.registry`` — in version-controllable JSON files and load them
into the same pipelines as the built-in catalog. Round-trip fidelity is
tested for every catalog machine and every shipped registry document.

Deserialization is *strict*: an unknown or missing field raises a
:class:`~repro.util.errors.ConfigError` naming the dotted field path and
the document it came from, never a bare ``KeyError`` — user-submitted
registry documents make these errors user-facing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.machine.cache import CacheHierarchy, CacheLevel, Sharing
from repro.machine.cpu import (
    CoreModel,
    CPUModel,
    MemorySystem,
    SocketInterconnect,
)
from repro.machine.topology import NumaTopology
from repro.machine.vector import DType, VectorISA
from repro.util.errors import ConfigError

#: Sentinel distinguishing "field absent" from "field is None".
_ABSENT = object()

#: source used in errors when the caller did not name the document.
DEFAULT_SOURCE = "machine document"


class _Section:
    """One mapping inside a document, checked strictly on access.

    ``require``/``get`` pull fields out; :meth:`finish` then rejects any
    field the schema never asked for. Both error modes name the dotted
    path (``core.isa.width_bits``) and the document source.
    """

    def __init__(self, data: Any, path: str, source: str) -> None:
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"malformed {source}: {path or 'document'} must be a "
                f"JSON object, got {type(data).__name__}"
            )
        self._data = data
        self._path = path
        self._source = source
        self._seen: set[str] = set()

    def _dotted(self, key: str) -> str:
        return f"{self._path}.{key}" if self._path else key

    def require(self, key: str) -> Any:
        if key not in self._data:
            raise ConfigError(
                f"{self._source}: missing field {self._dotted(key)}"
            )
        self._seen.add(key)
        return self._data[key]

    def get(self, key: str, default: Any = _ABSENT) -> Any:
        self._seen.add(key)
        if key not in self._data:
            return None if default is _ABSENT else default
        return self._data[key]

    def finish(self) -> None:
        unknown = sorted(set(self._data) - self._seen)
        if unknown:
            fields = ", ".join(self._dotted(key) for key in unknown)
            raise ConfigError(
                f"malformed {self._source}: unknown field {fields}"
            )


def isa_to_dict(isa: VectorISA) -> dict[str, Any]:
    return {
        "name": isa.name,
        "width_bits": isa.width_bits,
        "vectorizable": sorted(d.label for d in isa.vectorizable),
        "vla": isa.vla,
        "version": isa.version,
    }


def isa_from_dict(
    data: dict[str, Any],
    *,
    path: str = "isa",
    source: str = DEFAULT_SOURCE,
) -> VectorISA:
    sec = _Section(data, path, source)
    isa = VectorISA(
        name=sec.require("name"),
        width_bits=sec.require("width_bits"),
        vectorizable=frozenset(
            DType.from_label(lbl) for lbl in sec.get("vectorizable", ())
        ),
        vla=sec.get("vla", False),
        version=sec.get("version"),
    )
    sec.finish()
    return isa


def _level_to_dict(level: CacheLevel) -> dict[str, Any]:
    return {
        "name": level.name,
        "capacity_bytes": level.capacity_bytes,
        "sharing": level.sharing.value,
        "line_bytes": level.line_bytes,
        "associativity": level.associativity,
        "latency_cycles": level.latency_cycles,
        "bandwidth_bytes_per_cycle": level.bandwidth_bytes_per_cycle,
        "aggregate_bandwidth_bytes_per_cycle":
            level.aggregate_bandwidth_bytes_per_cycle,
        "contention_threshold": level.contention_threshold,
        "contention_exponent": level.contention_exponent,
    }


def _level_from_dict(
    data: dict[str, Any], path: str, source: str
) -> CacheLevel:
    sec = _Section(data, path, source)
    level = CacheLevel(
        name=sec.require("name"),
        capacity_bytes=sec.require("capacity_bytes"),
        sharing=Sharing(sec.require("sharing")),
        line_bytes=sec.get("line_bytes", 64),
        associativity=sec.get("associativity", 8),
        latency_cycles=sec.get("latency_cycles", 4),
        bandwidth_bytes_per_cycle=sec.get(
            "bandwidth_bytes_per_cycle", 32.0
        ),
        aggregate_bandwidth_bytes_per_cycle=sec.get(
            "aggregate_bandwidth_bytes_per_cycle"
        ),
        contention_threshold=sec.get("contention_threshold"),
        contention_exponent=sec.get("contention_exponent", 2.0),
    )
    sec.finish()
    return level


def _core_from_dict(
    data: dict[str, Any], source: str
) -> CoreModel:
    sec = _Section(data, "core", source)
    core = CoreModel(
        name=sec.require("name"),
        clock_hz=sec.require("clock_hz"),
        fp_ops_per_cycle=sec.require("fp_ops_per_cycle"),
        vector_pipes=sec.require("vector_pipes"),
        isa=isa_from_dict(
            sec.require("isa"), path="core.isa", source=source
        ),
        fma=sec.get("fma", True),
        out_of_order=sec.get("out_of_order", True),
        scalar_efficiency=sec.get("scalar_efficiency", 0.7),
        vector_efficiency=sec.get("vector_efficiency", 0.6),
        inorder_penalty=sec.get("inorder_penalty", 0.55),
        ls_ops_per_cycle=sec.get("ls_ops_per_cycle", 2.0),
    )
    sec.finish()
    return core


def _topology_from_dict(
    data: dict[str, Any], source: str
) -> NumaTopology:
    sec = _Section(data, "topology", source)
    sockets = sec.get("sockets")
    topology = NumaTopology(
        numa_nodes=tuple(
            tuple(node) for node in sec.require("numa_nodes")
        ),
        clusters=tuple(tuple(c) for c in sec.require("clusters")),
        sockets=(
            None if sockets is None
            else tuple(tuple(sock) for sock in sockets)
        ),
    )
    sec.finish()
    return topology


def _memory_from_dict(
    data: dict[str, Any], source: str
) -> MemorySystem:
    sec = _Section(data, "memory", source)
    memory = MemorySystem(
        controllers=sec.require("controllers"),
        channel_bandwidth_bytes=sec.require("channel_bandwidth_bytes"),
        efficiency=sec.require("efficiency"),
        latency_ns=sec.get("latency_ns", 100.0),
        numa_local=sec.get("numa_local", True),
        per_core_bandwidth_bytes=sec.get(
            "per_core_bandwidth_bytes", 10e9
        ),
        thrash_threshold=sec.get("thrash_threshold"),
        thrash_exponent=sec.get("thrash_exponent", 1.8),
    )
    sec.finish()
    return memory


def _interconnect_to_dict(ic: SocketInterconnect) -> dict[str, Any]:
    return {
        "bandwidth_bytes": ic.bandwidth_bytes,
        "latency_ns": ic.latency_ns,
        "efficiency": ic.efficiency,
    }


def _interconnect_from_dict(
    data: dict[str, Any], source: str
) -> SocketInterconnect:
    sec = _Section(data, "interconnect", source)
    ic = SocketInterconnect(
        bandwidth_bytes=sec.require("bandwidth_bytes"),
        latency_ns=sec.require("latency_ns"),
        efficiency=sec.get("efficiency", 0.8),
    )
    sec.finish()
    return ic


def cpu_to_dict(cpu: CPUModel) -> dict[str, Any]:
    """Serialize a CPU model to a JSON-compatible dict.

    The optional socket tier (``topology.sockets``, ``interconnect``) is
    omitted when absent so single-socket machines keep the exact
    serialization — and therefore the exact ``machine_digest`` — they
    had before sockets existed.
    """
    core = cpu.core
    topology: dict[str, Any] = {
        "numa_nodes": [list(n) for n in cpu.topology.numa_nodes],
        "clusters": [list(c) for c in cpu.topology.clusters],
    }
    if cpu.topology.sockets is not None:
        topology["sockets"] = [list(s) for s in cpu.topology.sockets]
    data = {
        "name": cpu.name,
        "part": cpu.part,
        "core": {
            "name": core.name,
            "clock_hz": core.clock_hz,
            "fp_ops_per_cycle": core.fp_ops_per_cycle,
            "vector_pipes": core.vector_pipes,
            "isa": isa_to_dict(core.isa),
            "fma": core.fma,
            "out_of_order": core.out_of_order,
            "scalar_efficiency": core.scalar_efficiency,
            "vector_efficiency": core.vector_efficiency,
            "inorder_penalty": core.inorder_penalty,
            "ls_ops_per_cycle": core.ls_ops_per_cycle,
        },
        "caches": [_level_to_dict(lvl) for lvl in cpu.caches],
        "topology": topology,
        "memory": {
            "controllers": cpu.memory.controllers,
            "channel_bandwidth_bytes": cpu.memory.channel_bandwidth_bytes,
            "efficiency": cpu.memory.efficiency,
            "latency_ns": cpu.memory.latency_ns,
            "numa_local": cpu.memory.numa_local,
            "per_core_bandwidth_bytes":
                cpu.memory.per_core_bandwidth_bytes,
            "thrash_threshold": cpu.memory.thrash_threshold,
            "thrash_exponent": cpu.memory.thrash_exponent,
        },
        "fork_join_ns": cpu.fork_join_ns,
        "smt": cpu.smt,
    }
    if cpu.interconnect is not None:
        data["interconnect"] = _interconnect_to_dict(cpu.interconnect)
    return data


def cpu_from_dict(
    data: dict[str, Any], *, source: str = DEFAULT_SOURCE
) -> CPUModel:
    """Deserialize a CPU model, checking fields strictly.

    ``source`` names the document in error messages (typically the file
    path or the registry document name).
    """
    sec = _Section(data, "", source)
    name = sec.require("name")
    part = sec.require("part")
    core = _core_from_dict(sec.require("core"), source)
    caches_data = sec.require("caches")
    if not isinstance(caches_data, (list, tuple)):
        raise ConfigError(
            f"malformed {source}: caches must be a JSON array"
        )
    caches = CacheHierarchy(
        levels=tuple(
            _level_from_dict(lvl, f"caches[{i}]", source)
            for i, lvl in enumerate(caches_data)
        )
    )
    topology = _topology_from_dict(sec.require("topology"), source)
    memory = _memory_from_dict(sec.require("memory"), source)
    interconnect_data = sec.get("interconnect")
    interconnect = (
        None if interconnect_data is None
        else _interconnect_from_dict(interconnect_data, source)
    )
    fork_join_ns = sec.get("fork_join_ns", 2000.0)
    smt = sec.get("smt", 1)
    sec.finish()
    try:
        return CPUModel(
            name=name,
            part=part,
            core=core,
            caches=caches,
            topology=topology,
            memory=memory,
            fork_join_ns=fork_join_ns,
            smt=smt,
            interconnect=interconnect,
        )
    except TypeError as exc:
        raise ConfigError(f"malformed {source}: {exc}") from exc


def save_cpu(cpu: CPUModel, path: str | Path) -> None:
    """Write a machine description to a JSON file."""
    Path(path).write_text(
        json.dumps(cpu_to_dict(cpu), indent=2) + "\n", encoding="utf-8"
    )


def load_cpu(path: str | Path) -> CPUModel:
    """Load a machine description from a JSON file."""
    target = Path(path)
    if not target.exists():
        raise ConfigError(f"machine file {target} does not exist")
    data = json.loads(target.read_text(encoding="utf-8"))
    return cpu_from_dict(data, source=f"machine document {target}")
