"""Machine description serialization (JSON).

Lets users define their own CPUs — the "what if" workflows in
``examples/future_hardware.py`` — in version-controllable JSON files and
load them into the same pipelines as the built-in catalog. Round-trip
fidelity is tested for all seven catalog machines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.machine.cache import CacheHierarchy, CacheLevel, Sharing
from repro.machine.cpu import CoreModel, CPUModel, MemorySystem
from repro.machine.topology import NumaTopology
from repro.machine.vector import DType, VectorISA
from repro.util.errors import ConfigError


def isa_to_dict(isa: VectorISA) -> dict[str, Any]:
    return {
        "name": isa.name,
        "width_bits": isa.width_bits,
        "vectorizable": sorted(d.label for d in isa.vectorizable),
        "vla": isa.vla,
        "version": isa.version,
    }


def isa_from_dict(data: dict[str, Any]) -> VectorISA:
    return VectorISA(
        name=data["name"],
        width_bits=data["width_bits"],
        vectorizable=frozenset(
            DType.from_label(lbl) for lbl in data.get("vectorizable", ())
        ),
        vla=data.get("vla", False),
        version=data.get("version"),
    )


def _level_to_dict(level: CacheLevel) -> dict[str, Any]:
    return {
        "name": level.name,
        "capacity_bytes": level.capacity_bytes,
        "sharing": level.sharing.value,
        "line_bytes": level.line_bytes,
        "associativity": level.associativity,
        "latency_cycles": level.latency_cycles,
        "bandwidth_bytes_per_cycle": level.bandwidth_bytes_per_cycle,
        "aggregate_bandwidth_bytes_per_cycle":
            level.aggregate_bandwidth_bytes_per_cycle,
        "contention_threshold": level.contention_threshold,
        "contention_exponent": level.contention_exponent,
    }


def _level_from_dict(data: dict[str, Any]) -> CacheLevel:
    return CacheLevel(
        name=data["name"],
        capacity_bytes=data["capacity_bytes"],
        sharing=Sharing(data["sharing"]),
        line_bytes=data.get("line_bytes", 64),
        associativity=data.get("associativity", 8),
        latency_cycles=data.get("latency_cycles", 4),
        bandwidth_bytes_per_cycle=data.get(
            "bandwidth_bytes_per_cycle", 32.0
        ),
        aggregate_bandwidth_bytes_per_cycle=data.get(
            "aggregate_bandwidth_bytes_per_cycle"
        ),
        contention_threshold=data.get("contention_threshold"),
        contention_exponent=data.get("contention_exponent", 2.0),
    )


def cpu_to_dict(cpu: CPUModel) -> dict[str, Any]:
    """Serialize a CPU model to a JSON-compatible dict."""
    core = cpu.core
    return {
        "name": cpu.name,
        "part": cpu.part,
        "core": {
            "name": core.name,
            "clock_hz": core.clock_hz,
            "fp_ops_per_cycle": core.fp_ops_per_cycle,
            "vector_pipes": core.vector_pipes,
            "isa": isa_to_dict(core.isa),
            "fma": core.fma,
            "out_of_order": core.out_of_order,
            "scalar_efficiency": core.scalar_efficiency,
            "vector_efficiency": core.vector_efficiency,
            "inorder_penalty": core.inorder_penalty,
            "ls_ops_per_cycle": core.ls_ops_per_cycle,
        },
        "caches": [_level_to_dict(lvl) for lvl in cpu.caches],
        "topology": {
            "numa_nodes": [list(n) for n in cpu.topology.numa_nodes],
            "clusters": [list(c) for c in cpu.topology.clusters],
        },
        "memory": {
            "controllers": cpu.memory.controllers,
            "channel_bandwidth_bytes": cpu.memory.channel_bandwidth_bytes,
            "efficiency": cpu.memory.efficiency,
            "latency_ns": cpu.memory.latency_ns,
            "numa_local": cpu.memory.numa_local,
            "per_core_bandwidth_bytes":
                cpu.memory.per_core_bandwidth_bytes,
            "thrash_threshold": cpu.memory.thrash_threshold,
            "thrash_exponent": cpu.memory.thrash_exponent,
        },
        "fork_join_ns": cpu.fork_join_ns,
        "smt": cpu.smt,
    }


def cpu_from_dict(data: dict[str, Any]) -> CPUModel:
    """Deserialize a CPU model; validation happens in the constructors."""
    try:
        core_data = dict(data["core"])
        core_data["isa"] = isa_from_dict(core_data["isa"])
        core = CoreModel(**core_data)
        caches = CacheHierarchy(
            levels=tuple(_level_from_dict(lvl) for lvl in data["caches"])
        )
        topo_data = data["topology"]
        topology = NumaTopology(
            numa_nodes=tuple(
                tuple(node) for node in topo_data["numa_nodes"]
            ),
            clusters=tuple(tuple(c) for c in topo_data["clusters"]),
        )
        memory = MemorySystem(**data["memory"])
        return CPUModel(
            name=data["name"],
            part=data["part"],
            core=core,
            caches=caches,
            topology=topology,
            memory=memory,
            fork_join_ns=data.get("fork_join_ns", 2000.0),
            smt=data.get("smt", 1),
        )
    except KeyError as exc:
        raise ConfigError(f"machine JSON missing field: {exc}") from exc
    except TypeError as exc:
        raise ConfigError(f"malformed machine JSON: {exc}") from exc


def save_cpu(cpu: CPUModel, path: str | Path) -> None:
    """Write a machine description to a JSON file."""
    Path(path).write_text(
        json.dumps(cpu_to_dict(cpu), indent=2) + "\n", encoding="utf-8"
    )


def load_cpu(path: str | Path) -> CPUModel:
    """Load a machine description from a JSON file."""
    target = Path(path)
    if not target.exists():
        raise ConfigError(f"machine file {target} does not exist")
    return cpu_from_dict(json.loads(target.read_text(encoding="utf-8")))
