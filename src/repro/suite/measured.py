"""Measured mode: actually time the NumPy kernel implementations.

The suite has two faces — modelled (predict times on the paper's
machines) and measured (run the NumPy implementations on *this* host).
Measured mode mirrors RAJAPerf's own methodology: warm up, run a fixed
repetition count, report the best-of-``runs`` time plus derived
bandwidth and FLOP rates from the kernel's traits.

This is how the repository's own numbers can be sanity-checked against
any real machine the user has, including an actual SG2042.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import telemetry
from repro.kernels.base import Kernel
from repro.machine.vector import DType
from repro.perfmodel.execution import execution_dtype
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class Measurement:
    """Timing of one kernel's NumPy implementation on the host.

    Attributes:
        kernel: Kernel name.
        n: Problem size measured.
        seconds_per_rep: Best-of-runs wall time for one repetition.
        bandwidth_bytes: Effective traffic rate (traits bytes / time).
        flops: Effective FLOP rate (traits flops / time).
        checksum: Final checksum (correctness witness).
    """

    kernel: str
    n: int
    seconds_per_rep: float
    bandwidth_bytes: float
    flops: float
    checksum: float

    def __post_init__(self) -> None:
        if self.seconds_per_rep <= 0:
            raise ConfigError("measured time must be positive")


#: Upper bound on the per-run repetition count derived from a kernel's
#: RAJAPerf ``reps`` (which reach 700 for the cheapest kernels — far
#: more than best-of-runs timing needs on a host).
MEASURED_REPS_CAP = 20


def measure_kernel(
    kernel: Kernel,
    n: int,
    precision: DType = DType.FP64,
    reps: int | None = None,
    runs: int = 3,
    warmup: int = 1,
) -> Measurement:
    """Time one kernel on the host.

    Uses best-of-``runs`` over ``reps`` repetitions each, after
    ``warmup`` untimed repetitions — the standard microbenchmark recipe
    (the paper averages five runs; best-of is less noise-sensitive for
    host-side sanity checks).

    ``reps=None`` (the default) follows the kernel's own RAJAPerf
    repetition count, as the paper's harness does, capped at
    :data:`MEASURED_REPS_CAP` so the 500+-rep stream kernels do not
    dominate a suite measurement.
    """
    if reps is None:
        reps = max(1, min(kernel.reps, MEASURED_REPS_CAP))
    if n < 1 or reps < 1 or runs < 1 or warmup < 0:
        raise ConfigError("n, reps, runs must be >= 1; warmup >= 0")
    rec = telemetry.recorder()
    if not rec.active:
        return _measure_kernel_timed(
            kernel, n, precision, reps, runs, warmup
        )
    with rec.span(
        "measure.kernel", kernel=kernel.name, n=n, reps=reps, runs=runs,
    ):
        measurement = _measure_kernel_timed(
            kernel, n, precision, reps, runs, warmup
        )
    telemetry.metrics().counter("measure.kernels").inc()
    return measurement


def _measure_kernel_timed(
    kernel: Kernel,
    n: int,
    precision: DType,
    reps: int,
    runs: int,
    warmup: int,
) -> Measurement:
    """The timing loop behind :func:`measure_kernel` (validated args)."""
    ws = kernel.prepare(n, precision)
    for _ in range(warmup):
        kernel.execute(ws)

    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        for _ in range(reps):
            kernel.execute(ws)
        elapsed = (time.perf_counter() - start) / reps
        best = min(best, elapsed)
    if best <= 0:
        # Sub-resolution measurement: clamp to the timer tick.
        best = max(best, 1e-9)

    dtype = execution_dtype(kernel, precision)
    traits = kernel.traits
    checksum = kernel.checksum(ws)
    # Drop the workspace arrays eagerly: a suite measurement holds at
    # most one kernel's arrays at a time instead of letting the last
    # workspace linger until the next ``prepare`` allocates on top.
    ws.clear()
    return Measurement(
        kernel=kernel.name,
        n=n,
        seconds_per_rep=best,
        bandwidth_bytes=traits.bytes_per_iter(dtype) * n / best,
        flops=traits.flops_per_iter * n / best,
        checksum=checksum,
    )


def measure_suite(
    kernels: list[Kernel],
    n: int = 100_000,
    precision: DType = DType.FP64,
    reps: int | None = None,
    runs: int = 3,
) -> list[Measurement]:
    """Measure a list of kernels at a common problem size.

    ``reps=None`` gives each kernel its own (capped) RAJAPerf
    repetition count — see :func:`measure_kernel`.
    """
    if not kernels:
        raise ConfigError("kernel list is empty")
    measurements = []
    for kernel in kernels:
        measurements.append(
            measure_kernel(kernel, n, precision, reps=reps, runs=runs)
        )
    return measurements


def render_measurements(measurements: list[Measurement]) -> str:
    """Table rendering for the CLI."""
    from repro.util.tables import render_table
    from repro.util.units import format_seconds

    rows = [
        (
            m.kernel,
            m.n,
            format_seconds(m.seconds_per_rep),
            f"{m.bandwidth_bytes / 1e9:.2f}",
            f"{m.flops / 1e9:.2f}",
        )
        for m in measurements
    ]
    return render_table(
        ("kernel", "n", "time/rep", "GB/s", "GFLOP/s"),
        rows,
        title="Measured on this host (NumPy implementations)",
    )
