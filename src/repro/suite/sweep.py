"""Configuration sweeps: run grids of (threads, placement, precision).

The experiments hand-roll their specific sweeps; this module provides
the general tool a user points at their own question — "which
configuration is best for these kernels on this machine?" — with tidy
long-format results and CSV export.

Sweeps are resilient: per-kernel failures degrade to explicit
``failures`` records under the skip/retry policies instead of killing
the grid, and a JSONL checkpoint (``checkpoint=``) persists completed
points so a killed sweep resumes mid-grid without recomputing them.

Sweeps are also fast: every grid point shares one compile cache and one
prediction memo (each kernel is compiled once per sweep, not once per
grid point — see :mod:`repro.suite.memo`), and ``workers=N`` dispatches
independent grid points onto a thread pool. Results are assembled in
grid order regardless of completion order, so a parallel sweep is
bit-identical to the serial one.
"""

from __future__ import annotations

from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import (
    dataclass,
    field,
    fields as dataclass_fields,
    replace,
)
from itertools import product
from pathlib import Path
from typing import TYPE_CHECKING, Sequence
import warnings

from repro import telemetry
from repro.kernels.base import Kernel
from repro.kernels.registry import get_kernel
from repro.machine.cpu import CPUModel
from repro.openmp.affinity import assign_cores
from repro.perfmodel.placement import reference_active
from repro.resilience import chaos
from repro.resilience.checkpoint import SweepCheckpoint, point_key
from repro.resilience.retry import FailurePolicy, FailureRecord, RetrySpec
from repro.suite.config import Placement, Precision, RunConfig
from repro.suite.memo import (
    CacheCounters,
    MemoKeyPrefix,
    SuiteCaches,
    machine_digest,
)
from repro.suite.runner import SuiteResult, grid_prefetch, run_suite
from repro.util.errors import ConfigError, ReproError
from repro.util.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import ArtifactStore


@dataclass(frozen=True)
class SweepPoint:
    """One row of a sweep result (long format)."""

    cpu: str
    threads: int
    placement: Placement
    precision: Precision
    kernel: str
    seconds: float


@dataclass(frozen=True)
class SweepFailure:
    """One kernel (or whole configuration) that failed inside a sweep.

    ``kernel`` is ``"*"`` when the entire configuration failed before
    any kernel ran (e.g. a corrupted machine description).
    """

    cpu: str
    threads: int
    placement: Placement
    precision: Precision
    kernel: str
    error_type: str
    message: str
    attempts: int
    site: str | None = None


#: Attribute names ``SweepResult.filtered`` accepts as criteria.
_POINT_ATTRS = frozenset(f.name for f in dataclass_fields(SweepPoint))


@dataclass(frozen=True)
class SweepResult:
    """All points of one sweep, plus any recorded failures."""

    points: tuple[SweepPoint, ...]
    failures: tuple[SweepFailure, ...] = field(default_factory=tuple)
    #: Final counters of the sweep's shared cache layers (None for a
    #: cache-disabled sweep). Excluded from equality: a resumed or
    #: parallel sweep earns different hit counts for identical points.
    #:
    #: .. deprecated:: legacy thin view — the same counters are
    #:    re-exposed as ``cache.compile.*`` / ``cache.predict.*`` gauges
    #:    on the telemetry metrics registry whenever a telemetry session
    #:    is active (see :mod:`repro.telemetry` and the ``telemetry``
    #:    field); prefer those for new code.
    cache_stats: CacheCounters | None = field(default=None, compare=False)
    #: Telemetry digest of the session the sweep ran under (``None``
    #: when telemetry was off): span counts, per-phase inclusive times,
    #: and the final metric values — including spans and metrics merged
    #: back from ``workers_mode="process"`` workers. Excluded from
    #: equality like ``cache_stats``.
    telemetry: "telemetry.TelemetrySummary | None" = field(
        default=None, compare=False
    )
    #: True when the whole result was restored from a sweep-level store
    #: artifact (the fastest warm tier) instead of computed. Provenance,
    #: not content — excluded from equality like ``cache_stats``.
    restored: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if not self.points and not self.failures:
            raise ConfigError("sweep produced no points")

    def filtered(self, **criteria) -> list[SweepPoint]:
        """Points matching all given attribute values.

        Kernel names are normalized here — the registry stores them
        upper-case, so ``filtered(kernel="triad")`` matches ``TRIAD``
        (and ``best_for_kernel`` inherits the same rule).
        """
        unknown = sorted(set(criteria) - _POINT_ATTRS)
        if unknown:
            raise ConfigError(
                f"unknown sweep point attribute(s) {unknown}; "
                f"known: {sorted(_POINT_ATTRS)}"
            )
        if isinstance(criteria.get("kernel"), str):
            criteria["kernel"] = criteria["kernel"].upper()
        out = []
        for point in self.points:
            if all(
                getattr(point, key) == value
                for key, value in criteria.items()
            ):
                out.append(point)
        return out

    def best_for_kernel(self, kernel: str) -> SweepPoint:
        """Fastest configuration for one kernel."""
        candidates = self.filtered(kernel=kernel)
        if not candidates:
            raise ConfigError(f"no sweep points for kernel {kernel!r}")
        return min(candidates, key=lambda p: p.seconds)

    def best_overall(self) -> tuple[int, Placement, Precision]:
        """Configuration minimizing the summed time over all kernels."""
        if not self.points:
            raise ConfigError("sweep has no successful points")
        totals: dict[tuple, float] = {}
        for p in self.points:
            key = (p.threads, p.placement, p.precision)
            totals[key] = totals.get(key, 0.0) + p.seconds
        return min(totals, key=totals.get)

    def to_csv(self) -> str:
        from repro.util.tables import render_csv

        rows = [
            (
                p.cpu,
                p.threads,
                p.placement.value,
                p.precision.label,
                p.kernel,
                f"{p.seconds:.9f}",
            )
            for p in self.points
        ]
        return render_csv(
            ("cpu", "threads", "placement", "precision", "kernel",
             "seconds"),
            rows,
        )

    def failure_summary(self) -> str:
        """Human-readable list of the sweep's failures (may be empty)."""
        if not self.failures:
            return "no failures"
        lines = [f"{len(self.failures)} failure(s):"]
        for f in self.failures:
            lines.append(
                f"  {f.kernel:<14} {f.threads:>3}t {f.placement.value:<8}"
                f" {f.precision.label}: {f.error_type} after "
                f"{f.attempts} attempt(s): {f.message}"
            )
        return "\n".join(lines)


def _grid_hash(
    cpu: CPUModel,
    kernels: Sequence[Kernel],
    threads: Sequence[int],
    placements: Sequence[Placement],
    precisions: Sequence[Precision],
    runs: int,
    noise_sigma: float,
) -> int:
    """Integrity stamp tying a checkpoint to one exact sweep grid."""
    return derive_seed(
        "sweep-checkpoint",
        cpu.name,
        tuple(k.name for k in kernels),
        tuple(int(t) for t in threads),
        tuple(p.value for p in placements),
        tuple(p.label for p in precisions),
        runs,
        noise_sigma,
    )


# -- whole-sweep store tier ------------------------------------------------


def _sweep_store_key(
    cpu: CPUModel,
    kernel_list: list[Kernel],
    threads: Sequence[int],
    placements: Sequence[Placement],
    precisions: Sequence[Precision],
    runs: int,
    noise_sigma: float,
    engine: str,
) -> tuple:
    """On-disk key of a whole-sweep artifact: every semantic input of
    the grid. The engine is included out of caution — engines are
    bit-identical by contract, but a stored result must never be able
    to mask a divergence between them."""
    return (
        "sweep-result",
        machine_digest(cpu),
        tuple(k.name for k in kernel_list),
        tuple(int(t) for t in threads),
        tuple(p.value for p in placements),
        tuple(p.label for p in precisions),
        int(runs),
        float(noise_sigma),
        engine,
    )


def _sweep_store(
    checkpoint: str | Path | None, caches: SuiteCaches
) -> "ArtifactStore | None":
    """The store backing whole-sweep artifacts, or ``None``.

    The tier engages only for a pure grid computation: no checkpoint to
    feed (resume bookkeeping must observe real per-point completion),
    no chaos plan (injected faults are stateful and must fire), and not
    reference mode (an explicit request to run the reference
    implementation, never a cache)."""
    if checkpoint is not None:
        return None
    if chaos.active_plan() is not None or reference_active():
        return None
    return caches.store


def _stored_sweep(
    store: "ArtifactStore",
    key: tuple,
    cpu: CPUModel,
    expected_points: int,
    caches: SuiteCaches,
) -> SweepResult | None:
    """Restore the whole sweep from one artifact read, or ``None``.

    An unusable payload (corruption, version skew, wrong point count)
    degrades to recompute with a :class:`~repro.store.StoreWarning`,
    like every other store tier."""
    from repro.store.artifact import StoreWarning
    from repro.store.codecs import CodecError, decode_sweep_points

    payload = store.get("sweep", key)
    if payload is None:
        return None
    try:
        points = decode_sweep_points(payload, cpu.name, expected_points)
    except CodecError as exc:
        warnings.warn(
            f"stored sweep result is unusable ({exc}); recomputing",
            StoreWarning, stacklevel=4,
        )
        return None
    return SweepResult(
        points=points,
        failures=(),
        cache_stats=caches.stats(),
        restored=True,
    )


def _persist_sweep(
    store: "ArtifactStore", key: tuple, result: SweepResult
) -> None:
    """Write a completed sweep as one whole-grid artifact.

    Failure-free sweeps only: errors are never cached (they re-raise or
    re-record identically on every run by design), and a partial point
    list must not shadow the full grid."""
    from repro.store.codecs import encode_sweep_points

    if result.failures or not result.points:
        return
    store.put("sweep", key, encode_sweep_points(result.points))


@dataclass
class _GridPoint:
    """One configuration of the sweep grid, pre-split against the
    checkpoint into already-completed and still-to-run kernels."""

    threads: int
    placement: Placement
    precision: Precision
    restored: dict[str, SweepPoint]
    todo: list[Kernel]


#: Per-process cache layers for ``workers_mode="process"`` workers,
#: created lazily on the worker's first grid point and shared across
#: every point the pool later dispatches to that process. Caching never
#: changes results, so per-process (rather than sweep-global) caches
#: only cost some duplicated compiles.
_PROCESS_CACHES: SuiteCaches | None = None


@dataclass(frozen=True)
class _WorkerTelemetry:
    """A process worker's result plus its telemetry payload.

    Spans and the metrics snapshot travel back as plain picklable data;
    the parent merges them into the sweep's session so a multi-process
    sweep still yields one trace (ordered by start time — span starts
    are wall-anchored, see :mod:`repro.telemetry.spans`) and one
    registry.
    """

    result: SuiteResult
    spans: tuple
    metrics: "telemetry.MetricsSnapshot"


def _process_run_point(payload: tuple) -> "SuiteResult | _WorkerTelemetry":
    """Top-level (picklable) worker for ``workers_mode="process"``.

    Kernels travel as names and are re-resolved from the registry in
    the worker — kernel objects may close over non-picklable state.
    When the parent sweep runs under telemetry, the worker installs its
    own session and hands spans + metrics back for merging.
    """
    (cpu, kernel_names, threads, placement, precision, runs,
     noise_sigma, policy, retry, engine, traced) = payload
    global _PROCESS_CACHES
    if _PROCESS_CACHES is None:
        _PROCESS_CACHES = SuiteCaches()
    config = RunConfig(
        threads=threads,
        placement=placement,
        precision=precision,
        runs=runs,
        noise_sigma=noise_sigma,
    )

    def run() -> SuiteResult:
        return run_suite(
            cpu,
            config,
            kernels=[get_kernel(name) for name in kernel_names],
            policy=policy,
            retry=retry,
            caches=_PROCESS_CACHES,
            engine=engine,
        )

    if not traced:
        return run()
    with telemetry.telemetry_session() as (rec, reg):
        result = run()
        return _WorkerTelemetry(
            result=result,
            spans=tuple(rec.records()),
            metrics=reg.snapshot(),
        )


def _absorb_worker(
    value: "SuiteResult | _WorkerTelemetry",
) -> SuiteResult:
    """Merge a process worker's telemetry (if any) into the sweep's
    session; runs on the main thread in grid order, so merges are
    deterministic."""
    if isinstance(value, _WorkerTelemetry):
        telemetry.recorder().merge(value.spans)
        telemetry.metrics().merge(value.metrics)
        return value.result
    return value


def sweep(
    cpu: CPUModel,
    kernels: Sequence[Kernel],
    threads: Sequence[int] = (1,),
    placements: Sequence[Placement] = (Placement.BLOCK,),
    precisions: Sequence[Precision] = (Precision.FP64,),
    runs: int = 1,
    noise_sigma: float = 0.0,
    *,
    policy: FailurePolicy = FailurePolicy.ABORT,
    retry: RetrySpec | None = None,
    checkpoint: str | Path | None = None,
    workers: int = 1,
    workers_mode: str = "thread",
    caches: SuiteCaches | None = None,
    engine: str = "batch",
) -> SweepResult:
    """Run the full configuration grid and collect long-format points.

    Args:
        policy: Failure policy forwarded to :func:`run_suite`; non-ABORT
            policies additionally catch whole-configuration failures
            (recorded with ``kernel="*"``) so the rest of the grid runs.
        retry: Retry budget for the RETRY policy.
        checkpoint: Path of a JSONL checkpoint. Completed points are
            flushed there as the grid progresses and skipped on resume;
            the file's header hash must match this exact grid.
        workers: Grid points dispatched concurrently (>= 1). Points are
            independent, seeds depend only on the point's identity, and
            results/checkpoint records are assembled in grid order by
            the main thread — so any worker count returns a SweepResult
            bit-identical to ``workers=1``. Forced serial while a chaos
            fault plan is installed (its counters are ordering-
            sensitive by design).
        workers_mode: ``"thread"`` (default) dispatches grid points on
            a thread pool — cheap, shares the sweep's caches, but the
            GIL bounds the gain. ``"process"`` uses a process pool:
            real CPU parallelism for the residual per-point Python,
            paid for with pickling and per-process caches (each worker
            lazily builds its own ``SuiteCaches``; the returned
            ``cache_stats`` then reflects only main-process activity).
            Results are bit-identical either way. Forced to ``thread``
            under :func:`reference_mode` (a process-local flag a child
            process would not inherit); chaos plans force serial
            execution before mode matters.
        caches: Cache layers shared by every grid point; defaults to a
            fresh :class:`SuiteCaches` (compile cache + prediction memo
            enabled), so each (kernel, flavor, rollback) is compiled
            exactly once per sweep. Pass ``SuiteCaches.disabled()`` to
            reproduce the uncached behaviour.
        engine: Prediction engine forwarded to :func:`run_suite`:
            ``"batch"`` (default) evaluates each configuration's whole
            kernel list in one vectorized NumPy pass, ``"scalar"`` is
            the historical one-call-per-kernel path. Bit-identical;
            batch degrades to scalar under chaos plans and
            ``reference_mode()``.
    """
    if not kernels:
        raise ConfigError("kernel list is empty")
    if not threads or not placements or not precisions:
        raise ConfigError("sweep axes must be non-empty")
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if workers_mode not in ("thread", "process"):
        raise ConfigError(
            f"unknown workers_mode {workers_mode!r}; "
            f"expected 'thread' or 'process'"
        )
    if engine not in ("scalar", "batch"):
        raise ConfigError(
            f"unknown engine {engine!r}; expected 'scalar' or 'batch'"
        )
    if isinstance(policy, str):
        policy = FailurePolicy.from_label(policy)
    kernel_list = list(kernels)
    if caches is None:
        caches = SuiteCaches()
    if workers_mode == "process" and reference_active():
        # reference_mode() flips a module global in *this* process only;
        # a spawned worker would silently run the fast path instead.
        workers_mode = "thread"

    rec = telemetry.recorder()
    if not rec.active:
        return _run_sweep(
            cpu, kernel_list, threads, placements, precisions, runs,
            noise_sigma, policy, retry, checkpoint, workers,
            workers_mode, caches, engine,
        )
    with rec.span(
        "sweep", cpu=cpu.name, kernels=len(kernel_list),
        grid_points=len(threads) * len(placements) * len(precisions),
        workers=workers, mode=workers_mode, engine=engine,
    ):
        result = _run_sweep(
            cpu, kernel_list, threads, placements, precisions, runs,
            noise_sigma, policy, retry, checkpoint, workers,
            workers_mode, caches, engine,
        )
    # Publish before capturing: the final cache gauges are the sweep's
    # own (main-process) counters — the last write, so the registry and
    # ``cache_stats`` reconcile exactly in every workers mode.
    reg = telemetry.metrics()
    reg.counter("sweep.runs").inc()
    reg.counter("sweep.points").inc(len(result.points))
    if result.restored:
        reg.counter("sweep.restored").inc()
    if result.failures:
        reg.counter("sweep.failures").inc(len(result.failures))
    if result.cache_stats is not None:
        result.cache_stats.publish(reg)
    return replace(
        result,
        telemetry=telemetry.TelemetrySummary.capture(rec, reg),
    )


def _run_sweep(
    cpu: CPUModel,
    kernel_list: list[Kernel],
    threads: Sequence[int],
    placements: Sequence[Placement],
    precisions: Sequence[Precision],
    runs: int,
    noise_sigma: float,
    policy: FailurePolicy,
    retry: RetrySpec | None,
    checkpoint: str | Path | None,
    workers: int,
    workers_mode: str,
    caches: SuiteCaches,
    engine: str,
) -> SweepResult:
    """The grid body behind :func:`sweep`'s validation + telemetry
    wrapper (arguments arrive normalized)."""
    # Whole-sweep store tier: an identical completed sweep restores
    # from a single artifact read, skipping the grid entirely — the
    # second-process warm path. Results are bit-identical (floats
    # round-trip exactly); the cache layers stay untouched, which the
    # returned counters reflect honestly.
    store = _sweep_store(checkpoint, caches)
    if store is not None:
        store_key = _sweep_store_key(
            cpu, kernel_list, threads, placements, precisions, runs,
            noise_sigma, engine,
        )
        expected = (len(kernel_list) * len(threads) * len(placements)
                    * len(precisions))
        restored = _stored_sweep(store, store_key, cpu, expected, caches)
        if restored is not None:
            return restored

    ckpt, grid = _checkpoint_grid(
        cpu, kernel_list, threads, placements, precisions, runs,
        noise_sigma, checkpoint,
    )

    # Whole-grid prediction: one vectorized pass computes every grid
    # point's predictions up front (uniform points share a single 2-D
    # ``predict_grid`` evaluation), then each ``run_suite`` consumes its
    # slice. Bit-identical, with identical cache counter activity — the
    # per-point prefetch this replaces did the same lookups and stores.
    # Skipped wherever the per-point batch prefetch would be: scalar
    # engine, chaos plans, reference mode; and under process workers,
    # whose children own their caches.
    prefetches: list[dict | None] = [None] * len(grid)
    if (
        engine == "batch"
        and chaos.active_plan() is None
        and not reference_active()
        and not (workers_mode == "process" and min(workers, len(grid)) > 1)
    ):
        jobs = []
        for gp in grid:
            try:
                jobs.append((
                    RunConfig(
                        threads=gp.threads,
                        placement=gp.placement,
                        precision=gp.precision,
                        runs=runs,
                        noise_sigma=noise_sigma,
                    ),
                    gp.todo,
                ))
            except ReproError:
                # Invalid configuration: left unprefetched so run_suite
                # raises (or records) the error exactly as before.
                jobs.append(None)
        with telemetry.recorder().span(
            "sweep.prefetch", jobs=sum(1 for j in jobs if j is not None),
        ):
            prefetches = grid_prefetch(cpu, jobs, caches)

    def run_point(index: int, gp: _GridPoint) -> SuiteResult | None:
        if not gp.todo:
            return None
        config = RunConfig(
            threads=gp.threads,
            placement=gp.placement,
            precision=gp.precision,
            runs=runs,
            noise_sigma=noise_sigma,
        )
        return run_suite(
            cpu, config, kernels=gp.todo, policy=policy, retry=retry,
            caches=caches, engine=engine, prefetched=prefetches[index],
        )

    # The chaos module's per-(site, kernel) attempt counters are shared
    # global state; parallel workers would interleave them
    # nondeterministically, so fault-plan runs stay serial.
    effective_workers = min(workers, len(grid))
    if chaos.active_plan() is not None:
        effective_workers = 1

    points: list[SweepPoint] = []
    failures: list[SweepFailure] = []

    def collect(gp: _GridPoint, outcome: SuiteResult | None,
                error: ReproError | None) -> None:
        """Fold one grid point's outcome into the sweep (main thread)."""
        _collect_point(
            cpu.name, kernel_list, ckpt, points, failures, gp, outcome,
            error,
        )

    if effective_workers <= 1:
        for index, gp in enumerate(grid):
            try:
                result = run_point(index, gp)
            except ReproError as exc:
                if policy is FailurePolicy.ABORT:
                    raise
                collect(gp, None, exc)
                continue
            collect(gp, result, None)
    else:
        if workers_mode == "process":
            pool_cls = ProcessPoolExecutor

            def submit(pool, gp: _GridPoint, index: int) -> Future | None:
                if not gp.todo:
                    return None
                return pool.submit(
                    _process_run_point,
                    (
                        cpu, tuple(k.name for k in gp.todo), gp.threads,
                        gp.placement, gp.precision, runs, noise_sigma,
                        policy, retry, engine, telemetry.active(),
                    ),
                )
        else:
            pool_cls = ThreadPoolExecutor

            def submit(pool, gp: _GridPoint, index: int) -> Future | None:
                return pool.submit(run_point, index, gp)

        with pool_cls(max_workers=effective_workers) as pool:
            futures: list[Future | None] = [
                submit(pool, gp, index) for index, gp in enumerate(grid)
            ]
            # Collect in submission (= grid) order: deterministic
            # result assembly and checkpoint writes regardless of
            # which worker finishes first.
            pool_broken = False
            for index, (gp, future) in enumerate(zip(grid, futures)):
                if future is None:
                    collect(gp, None, None)
                    continue
                if pool_broken:
                    # The pool is gone; every pending future holds the
                    # same BrokenProcessPool. Degrade to in-process
                    # execution for the rest of the grid (identical
                    # results — workers change nothing but wall time).
                    try:
                        result = run_point(index, gp)
                    except ReproError as exc:
                        if policy is FailurePolicy.ABORT:
                            raise
                        collect(gp, None, exc)
                        continue
                    collect(gp, result, None)
                    continue
                try:
                    result = _absorb_worker(future.result())
                except BrokenProcessPool as exc:
                    # A worker process died (OOM-killed, segfaulted).
                    # That is an infrastructure failure, not a kernel
                    # failure: record it as an explicit configuration-
                    # level FailureRecord for this point — under every
                    # policy, a raw BrokenProcessPool traceback is never
                    # the sweep's answer — and fall back in-process for
                    # the remaining grid points.
                    pool_broken = True
                    failures.append(
                        _sweep_failure(
                            cpu.name, gp.threads, gp.placement,
                            gp.precision,
                            FailureRecord(
                                kernel="*",
                                error_type=type(exc).__name__,
                                message=(
                                    "process pool crashed while running "
                                    "this grid point; remaining points "
                                    "fell back to in-process execution"
                                ),
                                attempts=1,
                            ),
                        )
                    )
                    collect(gp, None, None)
                    continue
                except ReproError as exc:
                    if policy is FailurePolicy.ABORT:
                        for pending in futures:
                            if pending is not None:
                                pending.cancel()
                        raise
                    collect(gp, None, exc)
                    continue
                collect(gp, result, None)

    result = SweepResult(
        points=tuple(points),
        failures=tuple(failures),
        cache_stats=caches.stats(),
    )
    if store is not None:
        _persist_sweep(store, store_key, result)
    return result


def _checkpoint_grid(
    cpu: CPUModel,
    kernel_list: list[Kernel],
    threads: Sequence[int],
    placements: Sequence[Placement],
    precisions: Sequence[Precision],
    runs: int,
    noise_sigma: float,
    checkpoint: str | Path | None,
) -> tuple[SweepCheckpoint | None, list[_GridPoint]]:
    """The sweep grid, pre-split against the checkpoint (main thread).

    Shared by the single-host and distributed drivers — the grid hash
    covers only the sweep's identity (never how it was dispatched), so
    their checkpoints are interchangeable mid-sweep.
    """
    ckpt: SweepCheckpoint | None = None
    if checkpoint is not None:
        ckpt = SweepCheckpoint(
            checkpoint,
            _grid_hash(cpu, kernel_list, threads, placements, precisions,
                       runs, noise_sigma),
        )
    grid: list[_GridPoint] = []
    for t, placement, precision in product(
        threads, placements, precisions
    ):
        if ckpt is None:
            # No checkpoint: every kernel is todo — skip the per-kernel
            # key derivation entirely (it is pure overhead here, and a
            # warm sweep's grid walk is counted in microseconds).
            grid.append(
                _GridPoint(t, placement, precision, {},
                           list(kernel_list))
            )
            continue
        restored: dict[str, SweepPoint] = {}
        todo: list[Kernel] = []
        for kernel in kernel_list:
            key = point_key(
                t, placement.value, precision.label, kernel.name
            )
            if ckpt is not None and ckpt.has(key):
                record = ckpt.completed[key]
                restored[kernel.name] = SweepPoint(
                    cpu=record.get("cpu", cpu.name),
                    threads=t,
                    placement=placement,
                    precision=precision,
                    kernel=kernel.name,
                    seconds=float(record["seconds"]),
                )
            else:
                todo.append(kernel)
        grid.append(_GridPoint(t, placement, precision, restored, todo))
    return ckpt, grid


def _collect_point(
    cpu_name: str,
    kernel_list: list[Kernel],
    ckpt: SweepCheckpoint | None,
    points: list[SweepPoint],
    failures: list[SweepFailure],
    gp: _GridPoint,
    outcome: SuiteResult | None,
    error: ReproError | None,
) -> None:
    """Fold one grid point's outcome into the sweep's accumulators.

    Always runs on the driving thread in grid order — checkpoint
    records and result rows come out deterministic no matter which
    worker (or host) produced the outcome.
    """
    fresh: dict[str, SweepPoint] = {}
    if error is not None:
        failures.append(
            _sweep_failure(
                cpu_name, gp.threads, gp.placement, gp.precision,
                FailureRecord.from_exception("*", error, 1),
            )
        )
    elif (
        outcome is not None and ckpt is None and not gp.restored
    ):
        # Hot path: no checkpoint to feed and nothing restored, so the
        # suite's runs (already in kernel order) fold straight into the
        # point list without the per-kernel reorder pass below.
        t, placement, precision = gp.threads, gp.placement, gp.precision
        for name, run in outcome.runs.items():
            points.append(SweepPoint(
                cpu_name, t, placement, precision, name, run.seconds,
            ))
        failures.extend(
            _sweep_failure(cpu_name, t, placement, precision, record)
            for record in outcome.failures
        )
        return
    elif outcome is not None:
        for name, run in outcome.runs.items():
            point = SweepPoint(
                cpu=cpu_name,
                threads=gp.threads,
                placement=gp.placement,
                precision=gp.precision,
                kernel=name,
                seconds=run.seconds,
            )
            fresh[name] = point
            if ckpt is not None:
                ckpt.record({
                    "cpu": cpu_name,
                    "threads": gp.threads,
                    "placement": gp.placement.value,
                    "precision": gp.precision.label,
                    "kernel": name,
                    "seconds": run.seconds,
                    "attempts": run.attempts,
                })
        failures.extend(
            _sweep_failure(
                cpu_name, gp.threads, gp.placement, gp.precision,
                record,
            )
            for record in outcome.failures
        )
    # Emit points in kernel order regardless of restore/run split.
    for kernel in kernel_list:
        point = gp.restored.get(kernel.name) or fresh.get(kernel.name)
        if point is not None:
            points.append(point)


def _sweep_failure(
    cpu_name: str,
    threads: int,
    placement: Placement,
    precision: Precision,
    record: FailureRecord,
) -> SweepFailure:
    return SweepFailure(
        cpu=cpu_name,
        threads=threads,
        placement=placement,
        precision=precision,
        kernel=record.kernel,
        error_type=record.error_type,
        message=record.message,
        attempts=record.attempts,
        site=record.site,
    )


# -- distributed sweeps ----------------------------------------------------


def _memo_group_token(
    cpu: CPUModel,
    gp: _GridPoint,
    runs: int,
    noise_sigma: float,
    caches: SuiteCaches,
):
    """Grouping token for shard assignment, or ``None``.

    Two grid points whose predictions share memo keys must run on one
    rank for the memo counters to stay interleaving-invariant (the
    second point then scores pure hits exactly as it would serially).
    Memo keys embed the :class:`MemoKeyPrefix`, so grouping by prefix
    is sufficient: distinct prefixes touch disjoint memo entries, and
    the compile cache is invariant anyway (it computes under its lock,
    exactly once per key). ``None`` means "no constraint" — memo off,
    or a configuration whose resolution fails (it fails identically
    wherever it runs).
    """
    if caches.predict is None or chaos.active_plan() is not None:
        return None
    try:
        config = RunConfig(
            threads=gp.threads, placement=gp.placement,
            precision=gp.precision, runs=runs, noise_sigma=noise_sigma,
        )
        compiler = config.resolve_compiler(cpu)
        cores = assign_cores(
            cpu.topology, config.threads, config.placement
        )
    except ReproError:
        return None
    return MemoKeyPrefix(
        machine_digest(cpu), cores, config.precision, compiler.name,
        config.flavor if config.vectorize else None,
        config.rollback if config.vectorize else None,
        config.vectorize,
    )


def _assign_shards(
    cpu: CPUModel,
    grid: list[_GridPoint],
    runs: int,
    noise_sigma: float,
    caches: SuiteCaches,
    hosts: int,
) -> list[list[int]]:
    """Deterministic grid-index shards, one per rank.

    Points are grouped by memo identity (see :func:`_memo_group_token`)
    and whole groups round-robin across ranks in first-appearance
    order; indices stay ascending within a rank, so each shard is a
    subsequence of the grid.
    """
    groups: list[list[int]] = []
    by_token: dict[object, list[int]] = {}
    for index, gp in enumerate(grid):
        token = _memo_group_token(cpu, gp, runs, noise_sigma, caches)
        if token is None:
            groups.append([index])
            continue
        members = by_token.get(token)
        if members is None:
            members = []
            by_token[token] = members
            groups.append(members)
        members.append(index)
    shards: list[list[int]] = [[] for _ in range(hosts)]
    for g, members in enumerate(groups):
        shards[g % hosts].extend(members)
    for shard in shards:
        shard.sort()
    return shards


def distributed_sweep(
    cpu: CPUModel,
    kernels: Sequence[Kernel],
    threads: Sequence[int] = (1,),
    placements: Sequence[Placement] = (Placement.BLOCK,),
    precisions: Sequence[Precision] = (Precision.FP64,),
    runs: int = 1,
    noise_sigma: float = 0.0,
    *,
    hosts: int = 2,
    policy: FailurePolicy = FailurePolicy.ABORT,
    retry: RetrySpec | None = None,
    checkpoint: str | Path | None = None,
    caches: SuiteCaches | None = None,
    engine: str = "batch",
) -> SweepResult:
    """:func:`sweep` sharded across ``hosts`` simulated hosts.

    The grid is partitioned into per-rank shards and executed over
    :class:`repro.cluster.runtime.SpmdRuntime`; each rank prefetches
    and runs its shard, the shard outcomes are gathered to rank 0
    (``Communicator.gather``), and the driving thread folds them back
    **in grid order** — results, failure records and checkpoint writes
    are bit-identical to the single-host sweep, and so are the shared
    cache counters (shard assignment keeps memo-key groups on one rank;
    see :func:`_memo_group_token`). Rank spans land in the caller's
    telemetry session tagged ``sweep.shard``/``rank=N``, so a
    distributed sweep still yields one merged trace.

    Single-host semantics are the contract; ``hosts=1`` (or an active
    chaos plan, whose injection counters are ordering-sensitive by
    design) simply delegates to :func:`sweep`.
    """
    if hosts < 1:
        raise ConfigError(f"hosts must be >= 1, got {hosts}")
    if hosts == 1 or chaos.active_plan() is not None:
        return sweep(
            cpu, kernels, threads, placements, precisions, runs,
            noise_sigma, policy=policy, retry=retry,
            checkpoint=checkpoint, caches=caches, engine=engine,
        )
    if not kernels:
        raise ConfigError("kernel list is empty")
    if not threads or not placements or not precisions:
        raise ConfigError("sweep axes must be non-empty")
    if engine not in ("scalar", "batch"):
        raise ConfigError(
            f"unknown engine {engine!r}; expected 'scalar' or 'batch'"
        )
    if isinstance(policy, str):
        policy = FailurePolicy.from_label(policy)
    kernel_list = list(kernels)
    if caches is None:
        caches = SuiteCaches()

    rec = telemetry.recorder()
    if not rec.active:
        return _run_distributed(
            cpu, kernel_list, threads, placements, precisions, runs,
            noise_sigma, policy, retry, checkpoint, caches, engine,
            hosts,
        )
    with rec.span(
        "sweep.distributed", cpu=cpu.name, kernels=len(kernel_list),
        grid_points=len(threads) * len(placements) * len(precisions),
        hosts=hosts, engine=engine,
    ):
        result = _run_distributed(
            cpu, kernel_list, threads, placements, precisions, runs,
            noise_sigma, policy, retry, checkpoint, caches, engine,
            hosts,
        )
    reg = telemetry.metrics()
    reg.counter("sweep.runs").inc()
    reg.counter("sweep.points").inc(len(result.points))
    if result.restored:
        reg.counter("sweep.restored").inc()
    if result.failures:
        reg.counter("sweep.failures").inc(len(result.failures))
    reg.gauge("sweep.hosts").set(hosts)
    if result.cache_stats is not None:
        result.cache_stats.publish(reg)
    return replace(
        result,
        telemetry=telemetry.TelemetrySummary.capture(rec, reg),
    )


def _run_distributed(
    cpu: CPUModel,
    kernel_list: list[Kernel],
    threads: Sequence[int],
    placements: Sequence[Placement],
    precisions: Sequence[Precision],
    runs: int,
    noise_sigma: float,
    policy: FailurePolicy,
    retry: RetrySpec | None,
    checkpoint: str | Path | None,
    caches: SuiteCaches,
    engine: str,
    hosts: int,
) -> SweepResult:
    from repro.cluster.runtime import Communicator, SpmdRuntime

    # Same whole-sweep store tier as the single-host driver, probed
    # before sharding — a restored distributed sweep short-circuits at
    # the driver exactly like ``hosts=1`` does, so points, counters and
    # store activity stay identical across host counts.
    store = _sweep_store(checkpoint, caches)
    if store is not None:
        store_key = _sweep_store_key(
            cpu, kernel_list, threads, placements, precisions, runs,
            noise_sigma, engine,
        )
        expected = (len(kernel_list) * len(threads) * len(placements)
                    * len(precisions))
        restored = _stored_sweep(store, store_key, cpu, expected, caches)
        if restored is not None:
            return restored

    ckpt, grid = _checkpoint_grid(
        cpu, kernel_list, threads, placements, precisions, runs,
        noise_sigma, checkpoint,
    )
    num_ranks = min(hosts, max(1, len(grid)))
    shards = _assign_shards(cpu, grid, runs, noise_sigma, caches,
                            num_ranks)
    prefetchable = (
        engine == "batch"
        and chaos.active_plan() is None
        and not reference_active()
    )

    def shard_body(comm: Communicator):
        """One rank: prefetch + run its shard, gather to rank 0.

        Ranks are threads sharing ``caches`` — exactly the single-host
        thread-pool situation, so every counter total is interleaving-
        invariant (the compile cache computes under its lock; memo-key
        groups never span ranks). Per-point errors travel as values so
        the driving thread can apply the failure policy in grid order.
        """
        indices = shards[comm.rank]
        outcomes: list[tuple] = []
        with telemetry.recorder().span(
            "sweep.shard", rank=comm.rank, points=len(indices),
        ):
            prefetches: dict[int, dict | None] = {}
            if prefetchable:
                jobs = []
                for index in indices:
                    gp = grid[index]
                    try:
                        jobs.append((
                            RunConfig(
                                threads=gp.threads,
                                placement=gp.placement,
                                precision=gp.precision,
                                runs=runs,
                                noise_sigma=noise_sigma,
                            ),
                            gp.todo,
                        ))
                    except ReproError:
                        jobs.append(None)
                prefetches = dict(zip(
                    indices, grid_prefetch(cpu, jobs, caches)
                ))
            for index in indices:
                gp = grid[index]
                if not gp.todo:
                    outcomes.append((index, None, None))
                    continue
                try:
                    config = RunConfig(
                        threads=gp.threads,
                        placement=gp.placement,
                        precision=gp.precision,
                        runs=runs,
                        noise_sigma=noise_sigma,
                    )
                    result = run_suite(
                        cpu, config, kernels=gp.todo, policy=policy,
                        retry=retry, caches=caches, engine=engine,
                        prefetched=prefetches.get(index),
                    )
                except ReproError as exc:
                    outcomes.append((index, None, exc))
                    continue
                outcomes.append((index, result, None))
        return comm.gather(outcomes, root=0)

    gathered = SpmdRuntime(num_ranks).run(shard_body)[0]
    merged: dict[int, tuple] = {}
    for shard_outcomes in gathered:
        for index, outcome, error in shard_outcomes:
            merged[index] = (outcome, error)

    points: list[SweepPoint] = []
    failures: list[SweepFailure] = []
    for index, gp in enumerate(grid):
        outcome, error = merged[index]
        if error is not None and policy is FailurePolicy.ABORT:
            # Grid-order abort: points before this one are already
            # folded (and checkpointed), later ones are discarded —
            # observable state matches the serial sweep exactly.
            raise error
        _collect_point(
            cpu.name, kernel_list, ckpt, points, failures, gp, outcome,
            error,
        )
    result = SweepResult(
        points=tuple(points),
        failures=tuple(failures),
        cache_stats=caches.stats(),
    )
    if store is not None:
        _persist_sweep(store, store_key, result)
    return result
