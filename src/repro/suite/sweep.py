"""Configuration sweeps: run grids of (threads, placement, precision).

The experiments hand-roll their specific sweeps; this module provides
the general tool a user points at their own question — "which
configuration is best for these kernels on this machine?" — with tidy
long-format results and CSV export.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

from repro.kernels.base import Kernel
from repro.machine.cpu import CPUModel
from repro.suite.config import Placement, Precision, RunConfig
from repro.suite.runner import SuiteResult, run_suite
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class SweepPoint:
    """One row of a sweep result (long format)."""

    cpu: str
    threads: int
    placement: Placement
    precision: Precision
    kernel: str
    seconds: float


@dataclass(frozen=True)
class SweepResult:
    """All points of one sweep."""

    points: tuple[SweepPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigError("sweep produced no points")

    def filtered(self, **criteria) -> list[SweepPoint]:
        """Points matching all given attribute values."""
        out = []
        for point in self.points:
            if all(
                getattr(point, key) == value
                for key, value in criteria.items()
            ):
                out.append(point)
        return out

    def best_for_kernel(self, kernel: str) -> SweepPoint:
        """Fastest configuration for one kernel."""
        candidates = self.filtered(kernel=kernel.upper())
        if not candidates:
            raise ConfigError(f"no sweep points for kernel {kernel!r}")
        return min(candidates, key=lambda p: p.seconds)

    def best_overall(self) -> tuple[int, Placement, Precision]:
        """Configuration minimizing the summed time over all kernels."""
        totals: dict[tuple, float] = {}
        for p in self.points:
            key = (p.threads, p.placement, p.precision)
            totals[key] = totals.get(key, 0.0) + p.seconds
        return min(totals, key=totals.get)

    def to_csv(self) -> str:
        from repro.util.tables import render_csv

        rows = [
            (
                p.cpu,
                p.threads,
                p.placement.value,
                p.precision.label,
                p.kernel,
                f"{p.seconds:.9f}",
            )
            for p in self.points
        ]
        return render_csv(
            ("cpu", "threads", "placement", "precision", "kernel",
             "seconds"),
            rows,
        )


def sweep(
    cpu: CPUModel,
    kernels: Sequence[Kernel],
    threads: Sequence[int] = (1,),
    placements: Sequence[Placement] = (Placement.BLOCK,),
    precisions: Sequence[Precision] = (Precision.FP64,),
    runs: int = 1,
    noise_sigma: float = 0.0,
) -> SweepResult:
    """Run the full configuration grid and collect long-format points."""
    if not kernels:
        raise ConfigError("kernel list is empty")
    if not threads or not placements or not precisions:
        raise ConfigError("sweep axes must be non-empty")
    points: list[SweepPoint] = []
    kernel_list = list(kernels)
    for t, placement, precision in product(
        threads, placements, precisions
    ):
        config = RunConfig(
            threads=t,
            placement=placement,
            precision=precision,
            runs=runs,
            noise_sigma=noise_sigma,
        )
        result: SuiteResult = run_suite(cpu, config, kernels=kernel_list)
        for name, run in result.runs.items():
            points.append(
                SweepPoint(
                    cpu=cpu.name,
                    threads=t,
                    placement=placement,
                    precision=precision,
                    kernel=name,
                    seconds=run.seconds,
                )
            )
    return SweepResult(points=tuple(points))
