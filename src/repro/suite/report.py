"""Aggregation: class-level bars, whiskers, speedups, efficiencies.

Implements the exact reporting conventions of the paper's figures and
tables (see :mod:`repro.util.stats` for the conventions themselves).
"""

from __future__ import annotations

from repro.kernels.base import KernelClass
from repro.suite.runner import SuiteResult
from repro.util.errors import ConfigError
from repro.util.stats import (
    Summary,
    arithmetic_mean,
    parallel_efficiency,
    relative_to_baseline,
    speedup,
    summarize,
)


def _common_kernels(a: SuiteResult, b: SuiteResult) -> list[str]:
    common = [k for k in a.runs if k in b.runs]
    if not common:
        raise ConfigError("results share no kernels")
    return common


def kernel_relative(
    baseline: SuiteResult, other: SuiteResult
) -> dict[str, float]:
    """Per-kernel signed times-faster/slower of ``other`` vs
    ``baseline`` (the figures' y-axis quantity)."""
    return {
        name: relative_to_baseline(
            baseline.time(name), other.time(name)
        )
        for name in _common_kernels(baseline, other)
    }


def class_summaries(
    baseline: SuiteResult, other: SuiteResult
) -> dict[KernelClass, Summary]:
    """Class-level bar + whiskers of ``other`` relative to ``baseline``
    — one figure's worth of data."""
    rel = kernel_relative(baseline, other)
    out: dict[KernelClass, Summary] = {}
    for klass in KernelClass:
        values = [
            rel[r.kernel_name]
            for r in baseline.kernels_in_class(klass)
            if r.kernel_name in rel
        ]
        if values:
            out[klass] = summarize(values)
    return out


def class_speedups(
    single_thread: SuiteResult, threaded: SuiteResult
) -> dict[KernelClass, tuple[float, float]]:
    """Class-level (speedup, parallel efficiency) — one row of
    Tables 1-3.

    The class speedup is the mean of per-kernel speedups; efficiency
    divides by the threaded run's thread count.
    """
    if single_thread.config.threads != 1:
        raise ConfigError("baseline must be a single-thread run")
    threads = threaded.config.threads
    out: dict[KernelClass, tuple[float, float]] = {}
    for klass in KernelClass:
        pairs = [
            (r.seconds, threaded.time(r.kernel_name))
            for r in single_thread.kernels_in_class(klass)
            if r.kernel_name in threaded.runs
        ]
        if not pairs:
            continue
        s = arithmetic_mean([speedup(t1, tp) for t1, tp in pairs])
        out[klass] = (s, parallel_efficiency(s, threads))
    return out


def suite_average_relative(
    baseline: SuiteResult, other: SuiteResult
) -> float:
    """Whole-suite mean of the signed relative values — the "on average
    N times faster" statements in the paper's conclusions."""
    rel = kernel_relative(baseline, other)
    return arithmetic_mean(list(rel.values()))


def telemetry_summary(result) -> str:
    """Render a result's telemetry digest.

    Accepts any result carrying the ``telemetry`` field
    (:class:`SuiteResult` or ``SweepResult``); explains how to enable
    telemetry when the run recorded none.
    """
    summary = getattr(result, "telemetry", None)
    if summary is None:
        return ("telemetry: off (run under telemetry_session() or pass "
                "--telemetry)")
    return summary.render()


def failure_summary(result: SuiteResult) -> str:
    """Render a suite's failures as an explicit gap report.

    Tables and figures computed from a degraded result carry this
    alongside, so a missing kernel reads as "failed after N attempts",
    never as silently absent data.
    """
    if not result.failures:
        return f"{result.cpu_name}: all {len(result.runs)} kernels ok"
    lines = [
        f"{result.cpu_name}: {len(result.runs)} kernels ok, "
        f"{len(result.failures)} failed"
    ]
    for record in result.failures:
        site = f" [injected: {record.site}]" if record.site else ""
        lines.append(
            f"  {record.kernel:<14} {record.error_type} after "
            f"{record.attempts} attempt(s): {record.message}{site}"
        )
    return "\n".join(lines)
