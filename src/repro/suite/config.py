"""Run configuration: one point in the paper's experiment space.

A configuration pins everything Section 3 varies: thread count, placement
policy, precision, whether vectorization is enabled, which compiler and
vector flavour produced the binary, and whether the RVV-rollback tool was
applied (required to run Clang output on the C920).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.compiler.model import (
    CLANG_16,
    Compiler,
    GCC_8_3,
    GCC_11_2,
    VectorFlavor,
    XUANTIE_GCC_8_4,
    compiler_by_name,
)
from repro.machine.cpu import CPUModel
from repro.machine.vector import DType
from repro.openmp.affinity import PlacementPolicy
from repro.util.errors import ConfigError

#: Public aliases matching the paper's vocabulary.
Precision = DType
Placement = PlacementPolicy

#: The paper averages every reported result over five runs.
DEFAULT_RUNS = 5


@dataclass(frozen=True)
class RunConfig:
    """One benchmark configuration.

    Attributes:
        threads: OpenMP thread count.
        precision: FP32 or FP64 (multithreaded runs in the paper use
            FP32; figure comparisons use both).
        placement: Thread placement policy (Tables 1-3).
        vectorize: Whether vector code generation is enabled; ``False``
            models ``-fno-tree-vectorize`` builds (Figure 2 baseline).
        compiler: Compiler short id, or ``None`` to use the platform
            default (XuanTie GCC 8.4 on RVV 0.7.1 targets, GCC 11.2 on
            AMD Rome/ARCHER2, GCC 8.3 elsewhere — Section 3.3).
        flavor: VLS or VLA vector code (Figure 3; GCC only emits VLS).
        rollback: Apply the RVV-rollback tool to run RVV v1.0 assembly
            on a v0.7.1 core.
        runs: Simulated repetitions to average (paper: 5).
        noise_sigma: Lognormal run-to-run noise; 0 for exact model output.
        size_scale: Multiplier on every kernel's default problem size.
    """

    threads: int = 1
    precision: Precision = Precision.FP64
    placement: Placement = Placement.BLOCK
    vectorize: bool = True
    compiler: str | None = None
    flavor: VectorFlavor = VectorFlavor.VLS
    rollback: bool = False
    runs: int = DEFAULT_RUNS
    noise_sigma: float = 0.02
    size_scale: float = 1.0

    def __post_init__(self) -> None:
        # Accept string shorthands ("fp32", "cyclic", "vla") for
        # ergonomic CLI/example use.
        if isinstance(self.precision, str):
            object.__setattr__(
                self, "precision", DType.from_label(self.precision)
            )
        if isinstance(self.placement, str):
            object.__setattr__(
                self, "placement", PlacementPolicy.from_label(self.placement)
            )
        if isinstance(self.flavor, str):
            object.__setattr__(
                self, "flavor", VectorFlavor(self.flavor.lower())
            )
        if self.threads < 1:
            raise ConfigError(f"threads must be >= 1, got {self.threads}")
        if self.precision not in (DType.FP32, DType.FP64):
            raise ConfigError(
                "precision must be FP32 or FP64 (the suite's run modes)"
            )
        if self.runs < 1:
            raise ConfigError(f"runs must be >= 1, got {self.runs}")
        if self.noise_sigma < 0:
            raise ConfigError("noise_sigma must be >= 0")
        if self.size_scale <= 0:
            raise ConfigError("size_scale must be positive")
        if self.compiler is not None:
            compiler_by_name(self.compiler)  # validates

    def with_threads(self, threads: int, placement: Placement | None = None
                     ) -> "RunConfig":
        """Derive a config differing only in thread count/placement."""
        if placement is None:
            return replace(self, threads=threads)
        return replace(self, threads=threads, placement=placement)

    def resolve_compiler(self, cpu: CPUModel) -> Compiler:
        """The compiler used for ``cpu`` under this config.

        Defaults follow the paper: XuanTie GCC 8.4 for RVV v0.7.1 cores
        (the only toolchain emitting v0.7.1), GCC 11.2 on ARCHER2's AMD
        Rome, GCC 8.3 everywhere else. Native RVV v1.0 cores (the
        SG2044's C930 — a registry machine, not a paper one) default to
        Clang 16, the toolchain that emits v1.0 directly, with no
        rollback needed. The shipped registry decision table
        (``registry/data/compilers/paper_defaults.json``) restates these
        rules and is cross-checked against this method by
        ``repro lint --registry``.
        """
        if self.compiler is not None:
            comp = compiler_by_name(self.compiler)
        elif cpu.core.isa.version == "0.7.1":
            comp = XUANTIE_GCC_8_4
        elif cpu.core.isa.version == "1.0":
            comp = CLANG_16
        elif cpu.part == "EPYC 7742":
            comp = GCC_11_2
        else:
            comp = GCC_8_3
        if (
            comp is CLANG_16
            and cpu.core.isa.version == "0.7.1"
            and not self.rollback
        ):
            raise ConfigError(
                "Clang emits RVV v1.0 only; enable rollback=True to run "
                "its output on the C920 (the paper's RVV-rollback flow)"
            )
        return comp
