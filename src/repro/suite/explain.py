"""Per-kernel deep dive: everything the models know about one kernel.

Backs the ``sg2042-repro explain`` command: traits, IR-derived features,
per-compiler vectorization verdicts, the roofline placement, and
predicted times across the key configurations — the full story the
paper's figures summarize statistically, one kernel at a time.
"""

from __future__ import annotations

from repro import telemetry
from repro.analysis.roofline import classify_kernels
from repro.compiler.analysis import DECISIVE_FEATURES, derive_features
from repro.compiler.model import CLANG_16, VectorFlavor, XUANTIE_GCC_8_4
from repro.compiler.vectorizer import analyze
from repro.kernels.ir_defs import ir_for
from repro.kernels.registry import get_kernel
from repro.machine.cpu import CPUModel
from repro.machine.vector import DType
from repro.openmp.affinity import PlacementPolicy, assign_cores
from repro.perfmodel.execution import simulate_kernel
from repro.util.errors import ReproError
from repro.util.units import format_bytes, format_seconds


def explain_kernel(kernel_name: str, cpu: CPUModel) -> str:
    """Render the full model view of one kernel on one machine."""
    kernel = get_kernel(kernel_name)
    traits = kernel.traits
    lines = [
        f"{kernel.name} ({kernel.klass.value} class)",
        "=" * (len(kernel.name) + len(kernel.klass.value) + 9),
        "",
        "characterization:",
        f"  flops/iter: {traits.flops_per_iter}, "
        f"reads/iter: {traits.reads_per_iter}, "
        f"writes/iter: {traits.writes_per_iter}",
        f"  default size: {kernel.default_size:,} "
        f"(footprint {format_bytes(int(kernel.footprint_bytes(kernel.default_size, DType.FP64)))} "
        "at FP64)",
        f"  parallel fraction: {traits.parallel_fraction}, "
        f"parallel regions/rep: {traits.regions_per_rep}",
        f"  arithmetic intensity: "
        f"{traits.arithmetic_intensity(DType.FP64):.3f} flops/byte (FP64)",
    ]

    derived = derive_features(ir_for(kernel.name))
    lines += [
        "",
        "loop features (derived from IR):",
        "  " + (", ".join(
            sorted(f.value for f in derived & DECISIVE_FEATURES)
        ) or "(none decisive)"),
    ]

    lines += ["", "compilation on the C920 (RVV v0.7.1):"]
    gcc = analyze(XUANTIE_GCC_8_4, kernel, cpu.core.isa)
    lines.append(f"  XuanTie GCC 8.4: {gcc.reason}")
    clang = analyze(
        CLANG_16, kernel, cpu.core.isa, flavor=VectorFlavor.VLS,
        rollback=True,
    )
    lines.append(f"  Clang 16 (+rollback): {clang.reason}")

    (point,) = classify_kernels(cpu, [kernel], DType.FP64)
    lines += [
        "",
        f"roofline ({cpu.name}, 1 thread, FP64): {point.bound}-bound at "
        f"{point.intensity:.3f} flops/byte, attainable "
        f"{point.attainable_flops / 1e9:.2f} GFLOP/s",
    ]

    lines += ["", f"predicted times on {cpu.name}:"]
    for threads, placement, precision in (
        (1, PlacementPolicy.BLOCK, DType.FP64),
        (1, PlacementPolicy.BLOCK, DType.FP32),
        (32, PlacementPolicy.CLUSTER, DType.FP32),
        (cpu.num_cores, PlacementPolicy.CLUSTER, DType.FP32),
    ):
        try:
            cores = assign_cores(cpu.topology, threads, placement)
            result = simulate_kernel(
                kernel, cpu, cores, precision, gcc
            )
        except ReproError as exc:
            # Degrade to an explicit gap: one failed configuration must
            # not take down the rest of the explanation.
            lines.append(
                f"  {threads:>3} thread(s) {placement.value:<8} "
                f"{precision.label}: prediction failed "
                f"({type(exc).__name__}: {exc})"
            )
            continue
        lines.append(
            f"  {threads:>3} thread(s) {placement.value:<8} "
            f"{precision.label}: {format_seconds(result.seconds):>12} "
            f"({result.bound}-bound, served by {result.serving_level}, "
            f"{'vector' if result.vector_executed else 'scalar'} path)"
        )

    if telemetry.active():
        # Under a live session (``explain --telemetry``) the explanation
        # ends with the spans/metrics its own model calls recorded.
        summary = telemetry.TelemetrySummary.capture(
            telemetry.recorder(), telemetry.metrics()
        )
        lines += ["", summary.render()]
    return "\n".join(lines)
