"""Content-addressed prediction memo + per-sweep cache bookkeeping.

``simulate_kernel`` is pure: its result is fully determined by the
machine description, the kernel, the placement, the element type, the
compilation report and the problem size. The :class:`PredictionMemo`
keys predictions on exactly that content — the machine enters as a
digest of its full description (:func:`machine_digest`), so two equal
machines share entries while any re-tuned parameter changes the key.
Everything configuration-level (digest, placement, dtype, compiler
identity) is interned once per suite run in a :class:`MemoKeyPrefix`
whose hash is computed once, so the per-kernel keys a cold sweep
hashes thousands of times stay cheap.

The memo is *optional* and conservative: the suite runner bypasses it
entirely while a chaos fault plan is installed (injected faults are
stateful per call and must not be replayed from a cache), so resilience
campaigns observe exactly the historical behaviour.

:class:`SuiteCaches` bundles the two cache layers a sweep shares across
its grid points; :class:`CacheCounters` is the counters snapshot surfaced
on ``SuiteResult``/``SweepResult``.
"""

from __future__ import annotations

import json
import threading
import warnings
from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.compiler.cache import CompileCache
from repro.machine.cpu import CPUModel
from repro.perfmodel.execution import ExecutionResult
from repro.util.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import ArtifactStore

#: One prediction's identity: ``(prefix, kernel name, problem size)``.
#: The :class:`MemoKeyPrefix` carries everything configuration-level —
#: machine digest, placement, dtype, compiler identity — and the
#: compilation report is *implied*: vectorization analysis is
#: deterministic in (compiler, kernel, ISA, flavor, rollback), every
#: component of which the prefix or the kernel name pins.
PredictionKey = tuple["MemoKeyPrefix", str, int]


@lru_cache(maxsize=128)
def machine_digest(cpu: CPUModel) -> int:
    """Stable 63-bit digest of a machine's full description.

    Derived from the canonical serialized form of the model
    (:func:`repro.machine.serialize.cpu_to_dict`, which renders the
    ISA's ``vectorizable`` frozenset in sorted order), so it is
    content-addressed *and* stable across processes: equal machines
    digest equally even under hash randomization, while any parameter
    change — a cache size, a thrash threshold — changes it. That
    cross-process stability is what lets the persistent prediction
    tier (:class:`PredictionMemo` over an ``ArtifactStore``) share
    pages between runs. Cached per model object (the serialization
    walk is far pricier than a dataclass hash), which a cold sweep
    performs once per grid point.
    """
    from repro.machine.serialize import cpu_to_dict

    canonical = json.dumps(
        cpu_to_dict(cpu), sort_keys=True, separators=(",", ":")
    )
    return derive_seed("machine-digest", canonical)


class MemoKeyPrefix:
    """Configuration-level prefix of prediction-memo keys, hashed once.

    A cold sweep builds (and hashes) thousands of per-kernel memo keys;
    the expensive parts — the 64-entry placement tuple, enums, the
    machine digest — are identical within one suite run. Interning them
    here with a precomputed hash makes each per-kernel key a cheap
    ``(prefix, name, size)`` triple. Equality is by content, so prefixes
    built by different suite runs (or processes) over equal
    configurations address the same entries.
    """

    __slots__ = ("_parts", "_hash")

    def __init__(self, *parts) -> None:
        self._parts = parts
        self._hash = hash(parts)

    @property
    def parts(self) -> tuple:
        """The raw prefix parts — the persistent tier lowers these to
        a stable on-disk page key via ``jsonable_parts``."""
        return self._parts

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MemoKeyPrefix)
            and self._parts == other._parts
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoKeyPrefix{self._parts!r}"


@dataclass(frozen=True)
class CacheCounters:
    """Hit/miss counters of a sweep's (or suite's) cache layers.

    This is the legacy ad-hoc view carried on
    ``SuiteResult.cache_stats`` / ``SweepResult.cache_stats``. When a
    telemetry session is active the same counters are re-exposed as
    ``cache.compile.*`` / ``cache.predict.*`` gauges on the metrics
    registry (:meth:`publish`); the two are published from one snapshot,
    so they always reconcile exactly.
    """

    compile_hits: int = 0
    compile_misses: int = 0
    compile_entries: int = 0
    predict_hits: int = 0
    predict_misses: int = 0
    predict_entries: int = 0
    compile_disk_hits: int = 0
    predict_disk_hits: int = 0
    predict_evictions: int = 0

    #: ``{metric name: CacheCounters field}`` — the telemetry names the
    #: counters publish under (see docs/OBSERVABILITY.md).
    METRIC_FIELDS = (
        ("cache.compile.hits", "compile_hits"),
        ("cache.compile.misses", "compile_misses"),
        ("cache.compile.entries", "compile_entries"),
        ("cache.predict.hits", "predict_hits"),
        ("cache.predict.misses", "predict_misses"),
        ("cache.predict.entries", "predict_entries"),
        ("cache.compile.disk_hits", "compile_disk_hits"),
        ("cache.predict.disk_hits", "predict_disk_hits"),
        ("cache.predict.evictions", "predict_evictions"),
    )

    def publish(self, registry) -> None:
        """Expose these counters as ``cache.*`` gauges on a telemetry
        metrics registry (:class:`repro.telemetry.MetricsRegistry`).

        Gauges, not counters: each publish is a point-in-time snapshot
        (last write wins), mirroring the ``cache_stats`` semantics.
        """
        for metric_name, field_name in self.METRIC_FIELDS:
            registry.gauge(metric_name).set(getattr(self, field_name))

    def render(self) -> str:
        # Disk/eviction detail appears only when the persistent tier
        # (or the LRU cap) actually did something, so the no-store
        # rendering is byte-identical to the historical one.
        out = (
            f"compile cache: {self.compile_misses} compiled, "
            f"{self.compile_hits} reused; prediction memo: "
            f"{self.predict_misses} computed, {self.predict_hits} reused"
        )
        if self.compile_disk_hits or self.predict_disk_hits:
            out += (
                f"; disk: {self.compile_disk_hits} reports "
                f"+ {self.predict_disk_hits} predictions restored"
            )
        if self.predict_evictions:
            out += f"; {self.predict_evictions} memo entries evicted"
        return out


class PredictionMemo:
    """Thread-safe content-addressed memo of kernel predictions.

    Lookups and stores take the lock; the prediction itself is computed
    outside it so parallel sweep workers never serialize on the model.
    Two workers racing on one cold key may both compute it — the results
    are identical by purity, so the last store wins harmlessly (the
    miss counter then reflects computations performed, not unique keys).

    ``store`` attaches an optional persistent tier: predictions are
    grouped into one on-disk *page* per :class:`MemoKeyPrefix` (one
    configuration), so ``peek_many``/``put_many`` — which the batch
    engine calls once per configuration — cost at most one artifact
    read/write each. Disk hits are counted separately from memory hits.

    ``max_entries`` bounds the in-memory tier with LRU eviction so
    long-lived processes (``repro serve``) cannot grow without limit;
    evicted entries remain on disk when a store is attached.
    """

    def __init__(
        self,
        store: "ArtifactStore | None" = None,
        max_entries: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be a positive integer or None, "
                f"got {max_entries!r}"
            )
        self._lock = threading.Lock()
        self._entries: dict[PredictionKey, ExecutionResult] = {}
        self._store = store
        self._max_entries = max_entries
        # Decoded per-prefix pages, loaded at most once per process and
        # mutated in place by write-throughs (read-merge-write).
        self._pages: dict[MemoKeyPrefix, dict[str, ExecutionResult]] = {}
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._evictions = 0

    # -- persistent tier (all called with the lock held) -------------------

    def _page(
        self, prefix: MemoKeyPrefix
    ) -> dict[str, ExecutionResult]:
        """The decoded on-disk page for one configuration prefix."""
        page = self._pages.get(prefix)
        if page is None:
            page = self._load_page(prefix)
            self._pages[prefix] = page
        return page

    def _load_page(
        self, prefix: MemoKeyPrefix
    ) -> dict[str, ExecutionResult]:
        from repro.store.artifact import StoreWarning
        from repro.store.codecs import (
            CodecError,
            decode_prediction_page,
            jsonable_parts,
        )

        payload = self._store.get(
            "predict", jsonable_parts(prefix.parts)
        )
        if payload is None:
            return {}
        try:
            return decode_prediction_page(payload)
        except CodecError as exc:
            warnings.warn(
                f"stored prediction page is unusable ({exc}); "
                f"recomputing",
                StoreWarning, stacklevel=5,
            )
            return {}

    def _store_page(self, prefix: MemoKeyPrefix) -> None:
        from repro.store.codecs import (
            encode_prediction_page,
            jsonable_parts,
        )

        self._store.put(
            "predict",
            jsonable_parts(prefix.parts),
            encode_prediction_page(self._pages[prefix]),
        )

    def _disk_get(self, key: PredictionKey) -> ExecutionResult | None:
        from repro.store.codecs import page_slot

        return self._page(key[0]).get(page_slot(key[1], key[2]))

    def _write_through(
        self, key: PredictionKey, result: ExecutionResult
    ) -> None:
        """Merge one prediction into its page; caller flushes."""
        from repro.store.codecs import page_slot

        self._page(key[0])[page_slot(key[1], key[2])] = result

    # -- in-memory tier (called with the lock held) ------------------------

    def _insert(self, key: PredictionKey,
                result: ExecutionResult) -> None:
        entries = self._entries
        entries[key] = result
        if self._max_entries is not None:
            while len(entries) > self._max_entries:
                del entries[next(iter(entries))]
                self._evictions += 1

    def _touch(self, key: PredictionKey,
               result: ExecutionResult) -> None:
        """Move a hit entry to the LRU tail (no-op when unbounded —
        insertion order is irrelevant without a cap)."""
        if self._max_entries is not None:
            del self._entries[key]
            self._entries[key] = result

    # -- public API --------------------------------------------------------

    def get_or_compute(
        self,
        key: PredictionKey,
        compute: Callable[[], ExecutionResult],
    ) -> ExecutionResult:
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._hits += 1
                self._touch(key, cached)
                return cached
            if self._store is not None:
                cached = self._disk_get(key)
                if cached is not None:
                    self._disk_hits += 1
                    self._insert(key, cached)
                    return cached
        result = compute()
        with self._lock:
            self._misses += 1
            self._insert(key, result)
            if self._store is not None:
                self._write_through(key, result)
                self._store_page(key[0])
        return result

    def peek(self, key: PredictionKey) -> ExecutionResult | None:
        """Cached result for ``key``, or ``None`` — counts a hit when
        present, counts nothing when absent.

        The batch engine's half of :meth:`get_or_compute`: it peeks every
        key first, batch-computes the misses in one vectorized pass, then
        :meth:`put`\\ s them back — the counters end up exactly as if each
        kernel had gone through ``get_or_compute`` individually."""
        with self._lock:
            return self._peek_locked(key)

    def _peek_locked(self, key: PredictionKey) -> ExecutionResult | None:
        cached = self._entries.get(key)
        if cached is not None:
            self._hits += 1
            self._touch(key, cached)
            return cached
        if self._store is not None:
            cached = self._disk_get(key)
            if cached is not None:
                self._disk_hits += 1
                self._insert(key, cached)
                return cached
        return None

    def put(self, key: PredictionKey, result: ExecutionResult) -> None:
        """Store a prediction computed elsewhere; counts a miss."""
        with self._lock:
            self._misses += 1
            self._insert(key, result)
            if self._store is not None:
                self._write_through(key, result)
                self._store_page(key[0])

    def peek_many(
        self, keys: Sequence[PredictionKey]
    ) -> list[ExecutionResult | None]:
        """Batched :meth:`peek`: one lock hold for a whole
        configuration's keys, same per-key counter accounting. With a
        store attached, all keys of one configuration share one page
        read (pages are cached after the first load) and the per-key
        disk probe is inlined — a store-restored sweep spends its time
        in dict lookups, not call frames."""
        with self._lock:
            if self._store is None:
                return [self._peek_locked(key) for key in keys]
            from repro.store.codecs import page_slot

            entries = self._entries
            out: list[ExecutionResult | None] = []
            hits = restored = 0
            for key in keys:
                cached = entries.get(key)
                if cached is not None:
                    hits += 1
                    self._touch(key, cached)
                    out.append(cached)
                    continue
                cached = self._page(key[0]).get(
                    page_slot(key[1], key[2])
                )
                if cached is not None:
                    restored += 1
                    self._insert(key, cached)
                out.append(cached)
            self._hits += hits
            self._disk_hits += restored
            return out

    def put_many(
        self,
        items: Iterable[tuple[PredictionKey, ExecutionResult]],
    ) -> None:
        """Batched :meth:`put` under one lock hold — one page write per
        configuration prefix touched, not one per prediction."""
        with self._lock:
            touched: set[MemoKeyPrefix] = set()
            for key, result in items:
                self._misses += 1
                self._insert(key, result)
                if self._store is not None:
                    self._write_through(key, result)
                    touched.add(key[0])
            for prefix in touched:
                self._store_page(prefix)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def disk_hits(self) -> int:
        with self._lock:
            return self._disk_hits

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    @property
    def max_entries(self) -> int | None:
        return self._max_entries

    @property
    def store(self) -> "ArtifactStore | None":
        return self._store

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop the in-memory tiers (disk artifacts are untouched)."""
        with self._lock:
            self._entries.clear()
            self._pages.clear()
            self._hits = 0
            self._misses = 0
            self._disk_hits = 0
            self._evictions = 0


@dataclass
class SuiteCaches:
    """The cache layers shared across one sweep's grid points.

    Either layer may be ``None`` to disable it; ``SuiteCaches()`` with
    no arguments enables both (the default a sweep builds for itself).
    """

    compile: CompileCache | None = field(default_factory=CompileCache)
    predict: PredictionMemo | None = field(default_factory=PredictionMemo)

    @classmethod
    def disabled(cls) -> "SuiteCaches":
        """Caches object with both layers off — the pre-cache behaviour,
        used by the golden equivalence tests and the sweep benchmark."""
        return cls(compile=None, predict=None)

    @classmethod
    def persistent(
        cls,
        store: "ArtifactStore",
        memo_entry_cap: int | None = None,
    ) -> "SuiteCaches":
        """Both layers backed by one on-disk artifact store.

        ``memo_entry_cap`` additionally bounds the prediction memo's
        in-memory tier (LRU); evicted entries stay readable on disk.
        """
        return cls(
            compile=CompileCache(store=store),
            predict=PredictionMemo(
                store=store, max_entries=memo_entry_cap
            ),
        )

    @property
    def store(self) -> "ArtifactStore | None":
        """The artifact store backing either layer (``None`` when both
        are memory-only). The sweep driver locates the whole-sweep
        artifact tier through this."""
        if self.predict is not None and self.predict.store is not None:
            return self.predict.store
        if self.compile is not None:
            return self.compile.store
        return None

    def stats(self) -> CacheCounters:
        compile_stats = (
            self.compile.stats if self.compile is not None else None
        )
        return CacheCounters(
            compile_hits=compile_stats.hits if compile_stats else 0,
            compile_misses=compile_stats.misses if compile_stats else 0,
            compile_entries=compile_stats.entries if compile_stats else 0,
            predict_hits=self.predict.hits if self.predict else 0,
            predict_misses=self.predict.misses if self.predict else 0,
            predict_entries=len(self.predict) if self.predict else 0,
            compile_disk_hits=(
                compile_stats.disk_hits if compile_stats else 0
            ),
            predict_disk_hits=(
                self.predict.disk_hits if self.predict else 0
            ),
            predict_evictions=(
                self.predict.evictions if self.predict else 0
            ),
        )
