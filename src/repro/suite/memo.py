"""Content-addressed prediction memo + per-sweep cache bookkeeping.

``simulate_kernel`` is pure: its result is fully determined by the
machine description, the kernel, the placement, the element type, the
compilation report and the problem size. The :class:`PredictionMemo`
keys predictions on exactly that content — the machine enters as a
digest of its full description (:func:`machine_digest`), so two equal
machines share entries while any re-tuned parameter changes the key.
Everything configuration-level (digest, placement, dtype, compiler
identity) is interned once per suite run in a :class:`MemoKeyPrefix`
whose hash is computed once, so the per-kernel keys a cold sweep
hashes thousands of times stay cheap.

The memo is *optional* and conservative: the suite runner bypasses it
entirely while a chaos fault plan is installed (injected faults are
stateful per call and must not be replayed from a cache), so resilience
campaigns observe exactly the historical behaviour.

:class:`SuiteCaches` bundles the two cache layers a sweep shares across
its grid points; :class:`CacheCounters` is the counters snapshot surfaced
on ``SuiteResult``/``SweepResult``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Iterable, Sequence

from repro.compiler.cache import CompileCache
from repro.machine.cpu import CPUModel
from repro.perfmodel.execution import ExecutionResult
from repro.util.rng import derive_seed

#: One prediction's identity: ``(prefix, kernel name, problem size)``.
#: The :class:`MemoKeyPrefix` carries everything configuration-level —
#: machine digest, placement, dtype, compiler identity — and the
#: compilation report is *implied*: vectorization analysis is
#: deterministic in (compiler, kernel, ISA, flavor, rollback), every
#: component of which the prefix or the kernel name pins.
PredictionKey = tuple["MemoKeyPrefix", str, int]


@lru_cache(maxsize=128)
def machine_digest(cpu: CPUModel) -> int:
    """Stable 63-bit digest of a machine's full description.

    Derived from the ``repr`` of the (frozen, nested-dataclass) model,
    so it is content-addressed: equal machines digest equally, any
    parameter change — a cache size, a thrash threshold — changes it.
    Cached per model object (the ``repr`` walk is far pricier than a
    dataclass hash), which a cold sweep performs once per grid point.
    """
    return derive_seed("machine-digest", repr(cpu))


class MemoKeyPrefix:
    """Configuration-level prefix of prediction-memo keys, hashed once.

    A cold sweep builds (and hashes) thousands of per-kernel memo keys;
    the expensive parts — the 64-entry placement tuple, enums, the
    machine digest — are identical within one suite run. Interning them
    here with a precomputed hash makes each per-kernel key a cheap
    ``(prefix, name, size)`` triple. Equality is by content, so prefixes
    built by different suite runs (or processes) over equal
    configurations address the same entries.
    """

    __slots__ = ("_parts", "_hash")

    def __init__(self, *parts) -> None:
        self._parts = parts
        self._hash = hash(parts)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MemoKeyPrefix)
            and self._parts == other._parts
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoKeyPrefix{self._parts!r}"


@dataclass(frozen=True)
class CacheCounters:
    """Hit/miss counters of a sweep's (or suite's) cache layers.

    This is the legacy ad-hoc view carried on
    ``SuiteResult.cache_stats`` / ``SweepResult.cache_stats``. When a
    telemetry session is active the same counters are re-exposed as
    ``cache.compile.*`` / ``cache.predict.*`` gauges on the metrics
    registry (:meth:`publish`); the two are published from one snapshot,
    so they always reconcile exactly.
    """

    compile_hits: int = 0
    compile_misses: int = 0
    compile_entries: int = 0
    predict_hits: int = 0
    predict_misses: int = 0
    predict_entries: int = 0

    #: ``{metric name: CacheCounters field}`` — the telemetry names the
    #: counters publish under (see docs/OBSERVABILITY.md).
    METRIC_FIELDS = (
        ("cache.compile.hits", "compile_hits"),
        ("cache.compile.misses", "compile_misses"),
        ("cache.compile.entries", "compile_entries"),
        ("cache.predict.hits", "predict_hits"),
        ("cache.predict.misses", "predict_misses"),
        ("cache.predict.entries", "predict_entries"),
    )

    def publish(self, registry) -> None:
        """Expose these counters as ``cache.*`` gauges on a telemetry
        metrics registry (:class:`repro.telemetry.MetricsRegistry`).

        Gauges, not counters: each publish is a point-in-time snapshot
        (last write wins), mirroring the ``cache_stats`` semantics.
        """
        for metric_name, field_name in self.METRIC_FIELDS:
            registry.gauge(metric_name).set(getattr(self, field_name))

    def render(self) -> str:
        return (
            f"compile cache: {self.compile_misses} compiled, "
            f"{self.compile_hits} reused; prediction memo: "
            f"{self.predict_misses} computed, {self.predict_hits} reused"
        )


class PredictionMemo:
    """Thread-safe content-addressed memo of kernel predictions.

    Lookups and stores take the lock; the prediction itself is computed
    outside it so parallel sweep workers never serialize on the model.
    Two workers racing on one cold key may both compute it — the results
    are identical by purity, so the last store wins harmlessly (the
    miss counter then reflects computations performed, not unique keys).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[PredictionKey, ExecutionResult] = {}
        self._hits = 0
        self._misses = 0

    def get_or_compute(
        self,
        key: PredictionKey,
        compute: Callable[[], ExecutionResult],
    ) -> ExecutionResult:
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._hits += 1
                return cached
        result = compute()
        with self._lock:
            self._misses += 1
            self._entries[key] = result
        return result

    def peek(self, key: PredictionKey) -> ExecutionResult | None:
        """Cached result for ``key``, or ``None`` — counts a hit when
        present, counts nothing when absent.

        The batch engine's half of :meth:`get_or_compute`: it peeks every
        key first, batch-computes the misses in one vectorized pass, then
        :meth:`put`\\ s them back — the counters end up exactly as if each
        kernel had gone through ``get_or_compute`` individually."""
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._hits += 1
            return cached

    def put(self, key: PredictionKey, result: ExecutionResult) -> None:
        """Store a prediction computed elsewhere; counts a miss."""
        with self._lock:
            self._misses += 1
            self._entries[key] = result

    def peek_many(
        self, keys: Sequence[PredictionKey]
    ) -> list[ExecutionResult | None]:
        """Batched :meth:`peek`: one lock hold for a whole
        configuration's keys, same per-key counter accounting."""
        out: list[ExecutionResult | None] = []
        with self._lock:
            get = self._entries.get
            for key in keys:
                cached = get(key)
                if cached is not None:
                    self._hits += 1
                out.append(cached)
        return out

    def put_many(
        self,
        items: Iterable[tuple[PredictionKey, ExecutionResult]],
    ) -> None:
        """Batched :meth:`put` under one lock hold."""
        with self._lock:
            for key, result in items:
                self._misses += 1
                self._entries[key] = result

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0


@dataclass
class SuiteCaches:
    """The cache layers shared across one sweep's grid points.

    Either layer may be ``None`` to disable it; ``SuiteCaches()`` with
    no arguments enables both (the default a sweep builds for itself).
    """

    compile: CompileCache | None = field(default_factory=CompileCache)
    predict: PredictionMemo | None = field(default_factory=PredictionMemo)

    @classmethod
    def disabled(cls) -> "SuiteCaches":
        """Caches object with both layers off — the pre-cache behaviour,
        used by the golden equivalence tests and the sweep benchmark."""
        return cls(compile=None, predict=None)

    def stats(self) -> CacheCounters:
        compile_stats = (
            self.compile.stats if self.compile is not None else None
        )
        return CacheCounters(
            compile_hits=compile_stats.hits if compile_stats else 0,
            compile_misses=compile_stats.misses if compile_stats else 0,
            compile_entries=compile_stats.entries if compile_stats else 0,
            predict_hits=self.predict.hits if self.predict else 0,
            predict_misses=self.predict.misses if self.predict else 0,
            predict_entries=len(self.predict) if self.predict else 0,
        )
