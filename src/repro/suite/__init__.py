"""RAJAPerf-style benchmark harness.

Couples the kernel suite, the compiler model and the performance model
into runnable experiments: a :class:`~repro.suite.config.RunConfig`
describes one configuration (threads, placement, precision, compiler,
vector flavour), ``run_suite`` produces per-kernel times averaged over
five simulated runs (like the paper), and :mod:`repro.suite.report`
aggregates them into the paper's class-level bars, whiskers, speedups
and parallel efficiencies.
"""

from repro.resilience.retry import FailurePolicy, FailureRecord, RetrySpec
from repro.suite.config import Placement, Precision, RunConfig
from repro.suite.memo import (
    CacheCounters,
    PredictionMemo,
    SuiteCaches,
    machine_digest,
)
from repro.suite.report import (
    class_speedups,
    class_summaries,
    failure_summary,
    kernel_relative,
)
from repro.suite.runner import SuiteResult, run_suite, verify_kernel

__all__ = [
    "RunConfig",
    "Precision",
    "Placement",
    "run_suite",
    "SuiteResult",
    "verify_kernel",
    "class_summaries",
    "class_speedups",
    "kernel_relative",
    "failure_summary",
    "FailurePolicy",
    "FailureRecord",
    "RetrySpec",
    "CacheCounters",
    "PredictionMemo",
    "SuiteCaches",
    "machine_digest",
]
