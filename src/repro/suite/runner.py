"""Suite runner: predict per-kernel times for one configuration.

``run_suite`` is the workhorse behind every table and figure: it resolves
the thread placement, compiles each kernel through the compiler model,
asks the performance model for the time, injects seeded run-to-run noise
and averages over the configured number of runs — mirroring how the paper
collected its numbers (five runs, -O3, pinned threads).

The execution path is hardened for the flaky-hardware reality behind
those numbers: each kernel runs in isolation under a
:class:`~repro.resilience.retry.FailurePolicy` (abort / skip / retry
with exponential backoff), failures are recorded on the result instead
of aborting the suite, and a chaos :class:`FaultPlan` can be installed
to test all of it deterministically. The default policy (ABORT, no
retry) reproduces the historical behaviour bit-for-bit.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.compiler.vectorizer import VectorizationReport, analyze
from repro.kernels.base import Kernel, KernelClass
from repro.kernels.registry import all_kernels
from repro.machine.cpu import CPUModel
from repro.machine.vector import DType
from repro.openmp.affinity import assign_cores
from repro.perfmodel.execution import ExecutionResult, simulate_kernel
from repro.resilience import chaos
from repro.suite.memo import CacheCounters, SuiteCaches, machine_digest
from repro.resilience.faults import FaultSite
from repro.resilience.retry import (
    FailurePolicy,
    FailureRecord,
    RetryExhaustedError,
    RetrySpec,
    call_with_retry,
)
from repro.resilience.validate import validate_cpu
from repro.suite.config import RunConfig
from repro.util.errors import ConfigError, ReproError, SimulationError
from repro.util.rng import derive_seed, noise_factors
from repro.util.stats import arithmetic_mean


@dataclass(frozen=True)
class KernelRun:
    """One kernel's outcome within a suite run."""

    kernel_name: str
    klass: KernelClass
    seconds: float  # run-averaged
    prediction: ExecutionResult
    report: VectorizationReport
    attempts: int = 1  # attempts it took under the retry policy


@dataclass(frozen=True)
class SuiteResult:
    """All kernel outcomes for one (machine, configuration) pair.

    ``failures`` lists kernels that never produced a time under a
    non-ABORT failure policy; reports render those as explicit gaps
    instead of crashing.
    """

    cpu_name: str
    config: RunConfig
    runs: dict[str, KernelRun]
    failures: tuple[FailureRecord, ...] = field(default_factory=tuple)
    #: Snapshot of the shared cache layers' counters when this suite
    #: finished (None when the suite ran uncached). Excluded from
    #: equality: two bit-identical results may differ in cache luck.
    cache_stats: CacheCounters | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.runs and not self.failures:
            raise ConfigError("suite result contains no kernels")

    def time(self, kernel_name: str) -> float:
        key = kernel_name.upper()
        if key not in self.runs:
            failed = self.failed_kernels()
            if key in failed:
                record = failed[key]
                raise ConfigError(
                    f"kernel {kernel_name!r} failed after "
                    f"{record.attempts} attempt(s): {record.message}"
                )
            raise ConfigError(f"no result for kernel {kernel_name!r}")
        return self.runs[key].seconds

    def kernels_in_class(self, klass: KernelClass) -> list[KernelRun]:
        return [r for r in self.runs.values() if r.klass == klass]

    def class_means(self) -> dict[KernelClass, float]:
        """Mean kernel time per class (seconds)."""
        out: dict[KernelClass, float] = {}
        for klass in KernelClass:
            members = self.kernels_in_class(klass)
            if members:
                out[klass] = arithmetic_mean([r.seconds for r in members])
        return out

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.runs.values())

    def failed_kernels(self) -> dict[str, FailureRecord]:
        """Failure records keyed by (upper-cased) kernel name."""
        return {f.kernel.upper(): f for f in self.failures}

    def total_attempts(self) -> int:
        """Attempts across all kernels, successes and failures alike."""
        return (
            sum(r.attempts for r in self.runs.values())
            + sum(f.attempts for f in self.failures)
        )


def _noisy_average(base_seconds: float, seed: int, runs: int,
                   sigma: float) -> float:
    """Average of ``runs`` noisy samples of the model prediction.

    ``sigma == 0`` (the deterministic default of sweeps and golden
    tests) short-circuits: the factors would be exactly ones and their
    mean exactly 1.0, so the product is bit-identical to the base —
    without paying for the RNG setup and the NumPy array round-trip."""
    if sigma == 0:
        return float(base_seconds)
    factors = noise_factors(seed, runs, sigma)
    return float(base_seconds * np.mean(factors))


def _run_one_kernel(
    kernel: Kernel,
    cpu: CPUModel,
    config: RunConfig,
    compiler,
    cores: tuple[int, ...],
    caches: SuiteCaches | None = None,
    cpu_digest: int | None = None,
) -> KernelRun:
    """The per-kernel unit of work the failure policy isolates."""
    chaos.raise_if_fault(FaultSite.RUN, kernel.name, kernel.klass)
    if config.vectorize:
        if caches is not None and caches.compile is not None:
            report = caches.compile.analyze(
                compiler,
                kernel,
                cpu.core.isa,
                flavor=config.flavor,
                rollback=config.rollback,
            )
        else:
            report = analyze(
                compiler,
                kernel,
                cpu.core.isa,
                flavor=config.flavor,
                rollback=config.rollback,
            )
    else:
        report = VectorizationReport(
            vectorized=False,
            vector_path_executed=False,
            flavor=None,
            efficiency=1.0,
            reason="vectorization disabled",
        )
    size = max(1, int(round(kernel.default_size * config.size_scale)))
    # The memo is bypassed while a fault plan is active: injected
    # faults are per-call state that a cached result would skip.
    memo = caches.predict if caches is not None else None
    if memo is not None and chaos.active_plan() is None:
        if cpu_digest is None:
            cpu_digest = machine_digest(cpu)
        key = (
            cpu_digest, kernel.name, cores, config.precision, report, size,
        )
        prediction = memo.get_or_compute(
            key,
            lambda: simulate_kernel(
                kernel, cpu, cores, config.precision, report, n=size
            ),
        )
    else:
        prediction = simulate_kernel(
            kernel, cpu, cores, config.precision, report, n=size
        )
    if config.noise_sigma == 0:
        # Skip the per-kernel seed derivation too — the seed feeds only
        # the noise RNG, which zero sigma never consults.
        seconds = prediction.seconds
    else:
        seed = derive_seed(
            cpu.name, kernel.name, config.threads,
            config.placement.value, config.precision.label,
            config.vectorize, compiler.name, config.flavor.value,
        )
        seconds = _noisy_average(
            prediction.seconds, seed, config.runs, config.noise_sigma
        )
    if not math.isfinite(seconds) or seconds <= 0:
        raise SimulationError(
            f"{kernel.name}: run-averaged time is not a positive finite "
            f"number ({seconds})"
        )
    return KernelRun(
        kernel_name=kernel.name,
        klass=kernel.klass,
        seconds=seconds,
        prediction=prediction,
        report=report,
    )


def run_suite(
    cpu: CPUModel,
    config: RunConfig,
    kernels: list[Kernel] | None = None,
    *,
    policy: FailurePolicy = FailurePolicy.ABORT,
    retry: RetrySpec | None = None,
    caches: SuiteCaches | None = None,
) -> SuiteResult:
    """Run (predict) the whole suite on ``cpu`` under ``config``.

    Args:
        cpu: Machine model (re-validated before the run).
        config: The run configuration.
        kernels: Subset to run; defaults to all 64.
        policy: What a kernel failure does to the rest of the suite —
            ABORT (default, historical behaviour), SKIP (record and
            continue) or RETRY (retry per ``retry``, then record).
        retry: Attempt/backoff budget for the RETRY policy; defaults to
            ``RetrySpec()`` (3 retries, no sleeping). Ignored otherwise.
        caches: Shared compile cache / prediction memo, typically owned
            by a sweep spanning many configurations. ``None`` (the
            default) runs fully uncached. Caching never changes results
            — both layers are keyed on everything their values depend
            on — and the prediction memo disables itself while a chaos
            fault plan is installed.
    """
    if kernels is None:
        kernels = all_kernels()
    if not kernels:
        raise ConfigError("kernel list is empty")
    if isinstance(policy, str):
        policy = FailurePolicy.from_label(policy)
    validate_cpu(cpu)
    chaos.raise_if_fault(FaultSite.MACHINE)
    compiler = config.resolve_compiler(cpu)
    cores = assign_cores(cpu.topology, config.threads, config.placement)
    spec = retry if retry is not None else RetrySpec()
    use_memo = (
        caches is not None
        and caches.predict is not None
        and chaos.active_plan() is None
    )
    cpu_digest = machine_digest(cpu) if use_memo else None

    runs: dict[str, KernelRun] = {}
    failures: list[FailureRecord] = []
    for kernel in kernels:
        # First attempt runs inline for every policy: the fault-free
        # path pays only this try/except, keeping the hardened runner
        # seed-identical and essentially free next to the legacy one.
        try:
            runs[kernel.name] = _run_one_kernel(
                kernel, cpu, config, compiler, cores, caches, cpu_digest
            )
            continue
        except ReproError as exc:
            if policy is FailurePolicy.ABORT:
                raise
            if policy is FailurePolicy.SKIP or spec.max_retries == 0:
                failures.append(
                    FailureRecord.from_exception(kernel.name, exc, 1)
                )
                continue
        # RETRY: attempt 1 is spent; sleep the first backoff here, then
        # hand the rest of the budget to the retry engine (its attempt k
        # is overall attempt k + 1, so its backoff base advances one
        # step to keep the exponential schedule intact).
        first_pause = spec.backoff_seconds(1)
        if first_pause > 0:
            time.sleep(first_pause)
        try:
            run, engine_attempts = call_with_retry(
                lambda k=kernel: _run_one_kernel(
                    k, cpu, config, compiler, cores, caches, cpu_digest
                ),
                RetrySpec(
                    max_retries=spec.max_retries - 1,
                    backoff_base_s=(
                        spec.backoff_base_s * spec.backoff_factor
                    ),
                    backoff_factor=spec.backoff_factor,
                    deadline_s=spec.deadline_s,
                ),
            )
            runs[kernel.name] = KernelRun(
                kernel_name=run.kernel_name,
                klass=run.klass,
                seconds=run.seconds,
                prediction=run.prediction,
                report=run.report,
                attempts=engine_attempts + 1,
            )
        except RetryExhaustedError as exc:
            failures.append(
                FailureRecord.from_exception(
                    kernel.name, exc.last, exc.attempts + 1
                )
            )
    return SuiteResult(
        cpu_name=cpu.name,
        config=config,
        runs=runs,
        failures=tuple(failures),
        cache_stats=caches.stats() if caches is not None else None,
    )


def verify_kernel(
    kernel: Kernel, n: int, precision: DType, reps: int = 2
) -> float:
    """Actually execute a kernel's NumPy implementation and return its
    checksum — the correctness face of the suite, used by tests and the
    quickstart example."""
    if n < 1 or reps < 1:
        raise ConfigError("n and reps must be >= 1")
    ws = kernel.prepare(n, precision)
    for _ in range(reps):
        kernel.execute(ws)
    checksum = kernel.checksum(ws)
    if not np.isfinite(checksum):
        raise ConfigError(
            f"{kernel.name} produced a non-finite checksum at n={n}"
        )
    return checksum
