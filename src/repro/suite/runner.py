"""Suite runner: predict per-kernel times for one configuration.

``run_suite`` is the workhorse behind every table and figure: it resolves
the thread placement, compiles each kernel through the compiler model,
asks the performance model for the time, injects seeded run-to-run noise
and averages over the configured number of runs — mirroring how the paper
collected its numbers (five runs, -O3, pinned threads).

The execution path is hardened for the flaky-hardware reality behind
those numbers: each kernel runs in isolation under a
:class:`~repro.resilience.retry.FailurePolicy` (abort / skip / retry
with exponential backoff), failures are recorded on the result instead
of aborting the suite, and a chaos :class:`FaultPlan` can be installed
to test all of it deterministically. The default policy (ABORT, no
retry) reproduces the historical behaviour bit-for-bit.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro import telemetry
from repro.compiler.vectorizer import VectorizationReport, analyze
from repro.kernels.base import Kernel, KernelClass
from repro.kernels.registry import all_kernels
from repro.machine.cpu import CPUModel
from repro.machine.vector import DType
from repro.openmp.affinity import assign_cores
from repro.perfmodel.batch import predict_batch, predict_grid
from repro.perfmodel.execution import ExecutionResult, simulate_kernel
from repro.perfmodel.placement import reference_active
from repro.resilience import chaos
from repro.suite.memo import (
    CacheCounters,
    MemoKeyPrefix,
    SuiteCaches,
    machine_digest,
)
from repro.resilience.faults import FaultSite
from repro.resilience.retry import (
    FailurePolicy,
    FailureRecord,
    RetryExhaustedError,
    RetrySpec,
    call_with_retry,
)
from repro.resilience.validate import validate_cpu
from repro.suite.config import RunConfig
from repro.util.errors import ConfigError, ReproError, SimulationError
from repro.util.rng import derive_seed, noise_factors
from repro.util.stats import arithmetic_mean


@dataclass(frozen=True)
class KernelRun:
    """One kernel's outcome within a suite run."""

    kernel_name: str
    klass: KernelClass
    seconds: float  # run-averaged
    prediction: ExecutionResult
    report: VectorizationReport
    attempts: int = 1  # attempts it took under the retry policy


@dataclass(frozen=True)
class SuiteResult:
    """All kernel outcomes for one (machine, configuration) pair.

    ``failures`` lists kernels that never produced a time under a
    non-ABORT failure policy; reports render those as explicit gaps
    instead of crashing.
    """

    cpu_name: str
    config: RunConfig
    runs: dict[str, KernelRun]
    failures: tuple[FailureRecord, ...] = field(default_factory=tuple)
    #: Snapshot of the shared cache layers' counters when this suite
    #: finished (None when the suite ran uncached). Excluded from
    #: equality: two bit-identical results may differ in cache luck.
    #:
    #: .. deprecated:: legacy thin view — the same counters are
    #:    re-exposed as ``cache.compile.*`` / ``cache.predict.*`` gauges
    #:    on the telemetry metrics registry whenever a telemetry session
    #:    is active (see :mod:`repro.telemetry` and the ``telemetry``
    #:    field); prefer those for new code.
    cache_stats: CacheCounters | None = field(default=None, compare=False)
    #: Telemetry digest of the session this suite ran under (``None``
    #: when telemetry was off). Excluded from equality like
    #: ``cache_stats``: identical results may carry different timings.
    telemetry: "telemetry.TelemetrySummary | None" = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if not self.runs and not self.failures:
            raise ConfigError("suite result contains no kernels")

    def time(self, kernel_name: str) -> float:
        key = kernel_name.upper()
        if key not in self.runs:
            failed = self.failed_kernels()
            if key in failed:
                record = failed[key]
                raise ConfigError(
                    f"kernel {kernel_name!r} failed after "
                    f"{record.attempts} attempt(s): {record.message}"
                )
            raise ConfigError(f"no result for kernel {kernel_name!r}")
        return self.runs[key].seconds

    def kernels_in_class(self, klass: KernelClass) -> list[KernelRun]:
        return [r for r in self.runs.values() if r.klass == klass]

    def class_means(self) -> dict[KernelClass, float]:
        """Mean kernel time per class (seconds)."""
        out: dict[KernelClass, float] = {}
        for klass in KernelClass:
            members = self.kernels_in_class(klass)
            if members:
                out[klass] = arithmetic_mean([r.seconds for r in members])
        return out

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.runs.values())

    def failed_kernels(self) -> dict[str, FailureRecord]:
        """Failure records keyed by (upper-cased) kernel name."""
        return {f.kernel.upper(): f for f in self.failures}

    def total_attempts(self) -> int:
        """Attempts across all kernels, successes and failures alike."""
        return (
            sum(r.attempts for r in self.runs.values())
            + sum(f.attempts for f in self.failures)
        )


def _noisy_average(base_seconds: float, seed: int, runs: int,
                   sigma: float) -> float:
    """Average of ``runs`` noisy samples of the model prediction.

    ``sigma == 0`` (the deterministic default of sweeps and golden
    tests) short-circuits: the factors would be exactly ones and their
    mean exactly 1.0, so the product is bit-identical to the base —
    without paying for the RNG setup and the NumPy array round-trip."""
    if sigma == 0:
        return float(base_seconds)
    factors = noise_factors(seed, runs, sigma)
    return float(base_seconds * np.mean(factors))


def _resolve_report(
    kernel: Kernel,
    cpu: CPUModel,
    config: RunConfig,
    compiler,
    caches: SuiteCaches | None,
) -> VectorizationReport:
    """Compilation outcome for one kernel (through the compile cache
    when one is installed)."""
    if config.vectorize:
        if caches is not None and caches.compile is not None:
            return caches.compile.analyze(
                compiler,
                kernel,
                cpu.core.isa,
                flavor=config.flavor,
                rollback=config.rollback,
            )
        return analyze(
            compiler,
            kernel,
            cpu.core.isa,
            flavor=config.flavor,
            rollback=config.rollback,
        )
    return _DISABLED_REPORT


#: The report every kernel gets when ``config.vectorize`` is off — a
#: constant, so no-vectorize sweeps don't rebuild it per kernel per
#: grid point.
_DISABLED_REPORT = VectorizationReport(
    vectorized=False,
    vector_path_executed=False,
    flavor=None,
    efficiency=1.0,
    reason="vectorization disabled",
)


def _scaled_size(kernel: Kernel, config: RunConfig) -> int:
    return max(1, int(round(kernel.default_size * config.size_scale)))


@lru_cache(maxsize=512)
def _scaled_sizes(
    kernels: tuple[Kernel, ...], size_scale: float
) -> tuple[int, ...]:
    """Per-kernel :func:`_scaled_size`, cached on the (singleton) kernel
    tuple so a sweep grid rescales its suite once, not per grid point."""
    return tuple(
        max(1, int(round(kernel.default_size * size_scale)))
        for kernel in kernels
    )


#: ``{kernel name: (report, prediction)}`` as produced by the batch
#: prefetchers and consumed by :func:`_run_one_kernel`.
_Prefetched = dict[str, tuple[VectorizationReport, "ExecutionResult | None"]]


def _resolve_suite_reports(
    kernels: list[Kernel],
    cpu: CPUModel,
    config: RunConfig,
    compiler,
    caches: SuiteCaches | None,
) -> tuple[list[Kernel], list[VectorizationReport]]:
    """Resolve one configuration's compilation reports in bulk.

    Kernels whose compilation failed are dropped — the per-kernel
    policy loop re-runs them and owns the failure, so error types,
    messages and attempt counts are identical to the scalar engine.
    """
    resolved: list[Kernel] = []
    reports: list[VectorizationReport] = []
    if (
        config.vectorize
        and caches is not None
        and caches.compile is not None
    ):
        # One composite (or one-lock-hold) lookup resolves the whole
        # list with per-kernel counter parity; failed compilations come
        # back as None and stay with the policy loop.
        for kernel, report in zip(
            kernels,
            caches.compile.analyze_suite(
                compiler, tuple(kernels), cpu.core.isa,
                flavor=config.flavor, rollback=config.rollback,
            ),
        ):
            if report is not None:
                resolved.append(kernel)
                reports.append(report)
    else:
        for kernel in kernels:
            try:
                report = _resolve_report(
                    kernel, cpu, config, compiler, caches
                )
            except ReproError:
                continue
            resolved.append(kernel)
            reports.append(report)
    return resolved, reports


@dataclass
class _PrefetchPlan:
    """One configuration's memo-partitioned prediction work."""

    cores: tuple[int, ...]
    precision: DType
    prefetched: _Prefetched
    todo: list[Kernel]
    todo_reports: list[VectorizationReport]
    todo_sizes: tuple[int, ...] | list[int]
    todo_keys: list[tuple]
    memo: object | None


def _plan_prefetch(
    kernels: list[Kernel],
    cpu: CPUModel,
    config: RunConfig,
    compiler,
    cores: tuple[int, ...],
    caches: SuiteCaches | None,
    memo_prefix: MemoKeyPrefix | None,
) -> _PrefetchPlan:
    """Resolve reports and split one configuration against the memo.

    Memo counters mirror the scalar engine's: a
    :meth:`~repro.suite.memo.PredictionMemo.peek_many` hit here is the
    hit ``get_or_compute`` would have scored.
    """
    memo = (
        caches.predict
        if caches is not None and memo_prefix is not None
        else None
    )
    prefetched: _Prefetched = {}
    resolved, reports = _resolve_suite_reports(
        kernels, cpu, config, compiler, caches
    )
    sizes = _scaled_sizes(tuple(resolved), config.size_scale)

    todo: list[Kernel] = []
    todo_reports: list[VectorizationReport] = []
    todo_sizes: list[int] = []
    todo_keys: list[tuple] = []
    if memo is not None:
        keys = [
            (memo_prefix, kernel.name, size)
            for kernel, size in zip(resolved, sizes)
        ]
        with telemetry.recorder().span("memo.peek", keys=len(keys)) as sp:
            for kernel, report, size, key, cached in zip(
                resolved, reports, sizes, keys, memo.peek_many(keys)
            ):
                if cached is not None:
                    prefetched[kernel.name] = (report, cached)
                else:
                    todo.append(kernel)
                    todo_reports.append(report)
                    todo_sizes.append(size)
                    todo_keys.append(key)
            sp.set(hits=len(prefetched), misses=len(todo))
    else:
        todo, todo_reports, todo_sizes = resolved, reports, sizes
    return _PrefetchPlan(
        cores=cores,
        precision=config.precision,
        prefetched=prefetched,
        todo=todo,
        todo_reports=todo_reports,
        todo_sizes=todo_sizes,
        todo_keys=todo_keys,
        memo=memo,
    )


def _finish_prefetch(
    plan: _PrefetchPlan, predictions: list["ExecutionResult | None"]
) -> _Prefetched:
    """Memoize and fold one configuration's batch predictions.

    A :meth:`~repro.suite.memo.PredictionMemo.put_many` entry is the
    miss ``get_or_compute`` would have scored; abstentions (``None``)
    are never memoized — the policy loop's scalar path raises the
    authoritative error for them.
    """
    if plan.memo is not None:
        plan.memo.put_many(
            (key, prediction)
            for key, prediction in zip(plan.todo_keys, predictions)
            if prediction is not None
        )
    for kernel, report, prediction in zip(
        plan.todo, plan.todo_reports, predictions
    ):
        plan.prefetched[kernel.name] = (report, prediction)
    return plan.prefetched


def _batch_prefetch(
    kernels: list[Kernel],
    cpu: CPUModel,
    config: RunConfig,
    compiler,
    cores: tuple[int, ...],
    caches: SuiteCaches | None,
    memo_prefix: MemoKeyPrefix | None,
) -> _Prefetched:
    """Resolve reports and batch-predict one whole configuration.

    Returns ``{kernel name: (report, prediction)}``. Kernels whose
    compilation failed are absent; a ``None`` prediction means the
    batch engine abstained and the scalar path owns the error. Cache
    and memo counters are indistinguishable from the scalar engine's.
    """
    plan = _plan_prefetch(
        kernels, cpu, config, compiler, cores, caches, memo_prefix
    )
    if not plan.todo:
        return plan.prefetched
    predictions = predict_batch(
        cpu, plan.todo, cores, config.precision, plan.todo_reports,
        plan.todo_sizes,
    )
    return _finish_prefetch(plan, predictions)


def grid_prefetch(
    cpu: CPUModel,
    jobs: list[tuple[RunConfig, list[Kernel]] | None],
    caches: SuiteCaches | None,
) -> list[_Prefetched | None]:
    """Batch-prefetch a whole sweep grid ahead of its suite runs.

    ``jobs`` carries one ``(config, kernels)`` pair per grid point (or
    ``None`` for points the sweep wants skipped). Configurations that
    share an identical still-to-predict workload are evaluated together
    through :func:`~repro.perfmodel.batch.predict_grid` — for a cold
    sweep that is the entire grid in one 2-D pass — and each returned
    entry is exactly what :func:`_batch_prefetch` would have produced
    for that configuration, with identical cache/memo counter activity.

    A ``None`` entry in the result means this configuration could not
    be planned here (e.g. its placement or compiler resolution raises);
    :func:`run_suite` then runs it unprefetched so the authoritative
    error surfaces in the right place with unchanged semantics.
    """
    out: list[_Prefetched | None] = [None] * len(jobs)
    plans: list[_PrefetchPlan | None] = [None] * len(jobs)
    buckets: dict[tuple, list[int]] = {}
    seen: set[tuple] = set()
    deferred: list[tuple[int, RunConfig, list[Kernel], tuple[int, ...]]] = []
    for i, job in enumerate(jobs):
        if job is None:
            continue
        config, kernels = job
        if not kernels:
            continue
        try:
            compiler = config.resolve_compiler(cpu)
            cores = assign_cores(
                cpu.topology, config.threads, config.placement
            )
        except ReproError:
            # Leave this point to run_suite, which reproduces the error
            # under its own policy handling.
            continue
        use_memo = (
            caches is not None
            and caches.predict is not None
            and chaos.active_plan() is None
        )
        memo_prefix = (
            MemoKeyPrefix(
                machine_digest(cpu), cores, config.precision,
                compiler.name,
                config.flavor if config.vectorize else None,
                config.rollback if config.vectorize else None,
                config.vectorize,
            )
            if use_memo
            else None
        )
        if memo_prefix is not None:
            # Grid points can collide on memo identity (e.g. one thread
            # under any placement pins the same core). Sequentially the
            # second point scores pure memo hits; replay that here by
            # deferring it until the first point's predictions are
            # stored, keeping every counter equal to the per-point run.
            dup_key = (
                memo_prefix,
                tuple(kernel.name for kernel in kernels),
                config.size_scale,
            )
            if dup_key in seen:
                deferred.append((i, config, kernels, cores))
                continue
            seen.add(dup_key)
        plan = _plan_prefetch(
            kernels, cpu, config, compiler, cores, caches, memo_prefix
        )
        plans[i] = plan
        if not plan.todo:
            out[i] = plan.prefetched
            continue
        # Workload identity: same kernels, same reports, same sizes.
        # Reports are registry/cache singletons, so identity is exact.
        signature = (
            tuple(kernel.name for kernel in plan.todo),
            tuple(id(report) for report in plan.todo_reports),
            tuple(plan.todo_sizes),
        )
        buckets.setdefault(signature, []).append(i)

    for idxs in buckets.values():
        first = plans[idxs[0]]
        if len(idxs) == 1:
            predictions = predict_batch(
                cpu, first.todo, first.cores, first.precision,
                first.todo_reports, first.todo_sizes,
            )
            out[idxs[0]] = _finish_prefetch(first, predictions)
            continue
        grid_predictions = predict_grid(
            cpu, first.todo,
            [plans[i].cores for i in idxs],
            [plans[i].precision for i in idxs],
            first.todo_reports, first.todo_sizes,
        )
        for i, predictions in zip(idxs, grid_predictions):
            out[i] = _finish_prefetch(plans[i], predictions)

    for i, config, kernels, cores in deferred:
        compiler = config.resolve_compiler(cpu)
        memo_prefix = MemoKeyPrefix(
            machine_digest(cpu), cores, config.precision, compiler.name,
            config.flavor if config.vectorize else None,
            config.rollback if config.vectorize else None,
            config.vectorize,
        )
        out[i] = _batch_prefetch(
            kernels, cpu, config, compiler, cores, caches, memo_prefix
        )
    return out


def _predict_scalar(
    kernel: Kernel,
    cpu: CPUModel,
    cores: tuple[int, ...],
    precision: DType,
    report: VectorizationReport,
    size: int,
) -> ExecutionResult:
    """One scalar-engine model evaluation, traced when telemetry is on.

    The off path costs one recorder lookup per call — and this function
    is only reached when a kernel was not batch-prefetched, so the
    batch engine's hot loop never pays it.
    """
    rec = telemetry.recorder()
    if not rec.active:
        return simulate_kernel(kernel, cpu, cores, precision, report,
                               n=size)
    with rec.span("predict.scalar", kernel=kernel.name, n=size):
        return simulate_kernel(kernel, cpu, cores, precision, report,
                               n=size)


def _run_one_kernel(
    kernel: Kernel,
    cpu: CPUModel,
    config: RunConfig,
    compiler,
    cores: tuple[int, ...],
    caches: SuiteCaches | None = None,
    memo_prefix: MemoKeyPrefix | None = None,
    prefetched: dict[
        str, tuple[VectorizationReport, ExecutionResult | None]
    ] | None = None,
) -> KernelRun:
    """The per-kernel unit of work the failure policy isolates."""
    chaos.raise_if_fault(FaultSite.RUN, kernel.name, kernel.klass)
    entry = (
        prefetched.get(kernel.name) if prefetched is not None else None
    )
    if entry is not None:
        report, prediction = entry
    else:
        report = _resolve_report(kernel, cpu, config, compiler, caches)
        prediction = None
    if prediction is None:
        size = _scaled_size(kernel, config)
        # The memo is bypassed while a fault plan is active (injected
        # faults are per-call state that a cached result would skip) —
        # ``memo_prefix`` is only built when no plan is installed.
        memo = caches.predict if caches is not None else None
        if memo is not None and memo_prefix is not None:
            key = (memo_prefix, kernel.name, size)
            prediction = memo.get_or_compute(
                key,
                lambda: _predict_scalar(
                    kernel, cpu, cores, config.precision, report, size
                ),
            )
        else:
            prediction = _predict_scalar(
                kernel, cpu, cores, config.precision, report, size
            )
    if config.noise_sigma == 0:
        # Skip the per-kernel seed derivation too — the seed feeds only
        # the noise RNG, which zero sigma never consults.
        seconds = prediction.seconds
    else:
        seed = derive_seed(
            cpu.name, kernel.name, config.threads,
            config.placement.value, config.precision.label,
            config.vectorize, compiler.name, config.flavor.value,
        )
        seconds = _noisy_average(
            prediction.seconds, seed, config.runs, config.noise_sigma
        )
    if not math.isfinite(seconds) or seconds <= 0:
        raise SimulationError(
            f"{kernel.name}: run-averaged time is not a positive finite "
            f"number ({seconds})"
        )
    return KernelRun(
        kernel_name=kernel.name,
        klass=kernel.klass,
        seconds=seconds,
        prediction=prediction,
        report=report,
    )


def _bulk_runs(
    kernels: list[Kernel], prefetched: _Prefetched
) -> dict[str, KernelRun] | None:
    """Assemble a whole suite's :class:`KernelRun`\\ s from a complete
    prefetch, or ``None`` if any kernel needs the per-kernel loop.

    Equivalent to :func:`_run_one_kernel` over ``kernels`` under the
    caller-checked preconditions (no chaos plan, zero noise, untraced):
    each run is ``prediction.seconds`` plus the same finiteness guard,
    and a guard failure rejects the whole bulk so the loop raises the
    identical :class:`SimulationError`.
    """
    runs: dict[str, KernelRun] = {}
    get = prefetched.get
    for kernel in kernels:
        entry = get(kernel.name)
        if entry is None:
            return None
        report, prediction = entry
        if prediction is None:
            return None
        seconds = prediction.seconds
        if not math.isfinite(seconds) or seconds <= 0:
            return None
        runs[kernel.name] = KernelRun(
            kernel_name=kernel.name,
            klass=kernel.klass,
            seconds=seconds,
            prediction=prediction,
            report=report,
        )
    return runs


def run_suite(
    cpu: CPUModel,
    config: RunConfig,
    kernels: list[Kernel] | None = None,
    *,
    policy: FailurePolicy = FailurePolicy.ABORT,
    retry: RetrySpec | None = None,
    caches: SuiteCaches | None = None,
    engine: str = "scalar",
    prefetched: _Prefetched | None = None,
) -> SuiteResult:
    """Run (predict) the whole suite on ``cpu`` under ``config``.

    Args:
        cpu: Machine model (re-validated before the run).
        config: The run configuration.
        kernels: Subset to run; defaults to all 64.
        policy: What a kernel failure does to the rest of the suite —
            ABORT (default, historical behaviour), SKIP (record and
            continue) or RETRY (retry per ``retry``, then record).
        retry: Attempt/backoff budget for the RETRY policy; defaults to
            ``RetrySpec()`` (3 retries, no sleeping). Ignored otherwise.
        caches: Shared compile cache / prediction memo, typically owned
            by a sweep spanning many configurations. ``None`` (the
            default) runs fully uncached. Caching never changes results
            — both layers are keyed on everything their values depend
            on — and the prediction memo disables itself while a chaos
            fault plan is installed.
        engine: ``"scalar"`` (default — one :func:`simulate_kernel` call
            per kernel, the historical path) or ``"batch"`` — predict
            the whole kernel list in one vectorized pass
            (:func:`repro.perfmodel.batch.predict_batch`), bit-identical
            to scalar. Batch silently degrades to scalar while a chaos
            fault plan or :func:`reference_mode` is active (both are
            per-call state a batched evaluation cannot replay), and
            per-kernel it falls back to scalar wherever the batch pass
            abstains — so failure semantics are byte-identical too.
        prefetched: Pre-computed ``{kernel name: (report, prediction)}``
            from :func:`grid_prefetch` — a sweep passes this so a whole
            grid is predicted in one pass. When given, the batch
            engine's own prefetch is skipped (the work, and its cache
            counter activity, already happened grid-side).
    """
    if kernels is None:
        kernels = all_kernels()
    if not kernels:
        raise ConfigError("kernel list is empty")
    if engine not in ("scalar", "batch"):
        raise ConfigError(
            f"unknown engine {engine!r}; expected 'scalar' or 'batch'"
        )
    if isinstance(policy, str):
        policy = FailurePolicy.from_label(policy)
    rec = telemetry.recorder()
    # One boolean, hoisted out of the per-kernel loop: the telemetry-off
    # path pays a local-variable check per kernel, nothing more.
    traced = rec.active
    with rec.span(
        "suite.run", cpu=cpu.name, threads=config.threads,
        placement=config.placement.value,
        precision=config.precision.label, engine=engine,
        kernels=len(kernels),
    ):
        validate_cpu(cpu)
        chaos.raise_if_fault(FaultSite.MACHINE)
        compiler = config.resolve_compiler(cpu)
        cores = assign_cores(cpu.topology, config.threads,
                             config.placement)
        spec = retry if retry is not None else RetrySpec()
        use_memo = (
            caches is not None
            and caches.predict is not None
            and chaos.active_plan() is None
        )
        # All configuration-level key identity, interned and hashed once.
        # ``config.vectorize`` False normalizes flavor/rollback away so
        # the disabled-vectorization entries are shared across flavors,
        # exactly as the old report-valued keys were.
        memo_prefix = (
            MemoKeyPrefix(
                machine_digest(cpu), cores, config.precision,
                compiler.name,
                config.flavor if config.vectorize else None,
                config.rollback if config.vectorize else None,
                config.vectorize,
            )
            if use_memo
            else None
        )
        if (
            prefetched is None
            and engine == "batch"
            and chaos.active_plan() is None
            and not reference_active()
        ):
            prefetched = _batch_prefetch(
                kernels, cpu, config, compiler, cores, caches,
                memo_prefix
            )

        # Bulk fold: when every kernel arrived prefetched with a real
        # prediction and nothing can intervene per kernel (no chaos
        # plan, no tracing spans, no noise averaging), the per-kernel
        # policy loop below is pure assembly — do it in one tight pass.
        # Any kernel that would take a different branch (missing entry,
        # batch abstention, non-finite time) drops to the loop, so
        # failure semantics and counters stay byte-identical.
        if (
            prefetched is not None
            and not traced
            and config.noise_sigma == 0
            and chaos.active_plan() is None
        ):
            bulk = _bulk_runs(kernels, prefetched)
            if bulk is not None:
                return SuiteResult(
                    cpu_name=cpu.name,
                    config=config,
                    runs=bulk,
                    failures=(),
                    cache_stats=(
                        caches.stats() if caches is not None else None
                    ),
                    telemetry=None,
                )

        runs: dict[str, KernelRun] = {}
        failures: list[FailureRecord] = []
        for kernel in kernels:
            # First attempt runs inline for every policy: the fault-free
            # path pays only this try/except, keeping the hardened
            # runner seed-identical and essentially free next to the
            # legacy one.
            try:
                if traced:
                    with rec.span("kernel.run", kernel=kernel.name):
                        runs[kernel.name] = _run_one_kernel(
                            kernel, cpu, config, compiler, cores, caches,
                            memo_prefix, prefetched,
                        )
                else:
                    runs[kernel.name] = _run_one_kernel(
                        kernel, cpu, config, compiler, cores, caches,
                        memo_prefix, prefetched,
                    )
                continue
            except ReproError as exc:
                if policy is FailurePolicy.ABORT:
                    raise
                if policy is FailurePolicy.SKIP or spec.max_retries == 0:
                    failures.append(
                        FailureRecord.from_exception(kernel.name, exc, 1)
                    )
                    continue
            # RETRY: attempt 1 is spent; sleep the first backoff here,
            # then hand the rest of the budget to the retry engine (its
            # attempt k is overall attempt k + 1, so its backoff base
            # advances one step to keep the exponential schedule intact).
            first_pause = spec.backoff_seconds(1)
            if first_pause > 0:
                time.sleep(first_pause)
            try:
                with rec.span("retry", kernel=kernel.name) as retry_span:
                    run, engine_attempts = call_with_retry(
                        lambda k=kernel: _run_one_kernel(
                            k, cpu, config, compiler, cores, caches,
                            memo_prefix, prefetched,
                        ),
                        RetrySpec(
                            max_retries=spec.max_retries - 1,
                            backoff_base_s=(
                                spec.backoff_base_s * spec.backoff_factor
                            ),
                            backoff_factor=spec.backoff_factor,
                            deadline_s=spec.deadline_s,
                            jitter=spec.jitter,
                        ),
                    )
                    retry_span.set(attempts=engine_attempts + 1)
                runs[kernel.name] = KernelRun(
                    kernel_name=run.kernel_name,
                    klass=run.klass,
                    seconds=run.seconds,
                    prediction=run.prediction,
                    report=run.report,
                    attempts=engine_attempts + 1,
                )
            except RetryExhaustedError as exc:
                failures.append(
                    FailureRecord.from_exception(
                        kernel.name, exc.last, exc.attempts + 1
                    )
                )
    stats = caches.stats() if caches is not None else None
    summary = None
    if traced:
        reg = telemetry.metrics()
        reg.counter("suite.runs").inc()
        reg.counter("suite.kernel_runs").inc(len(runs))
        if failures:
            reg.counter("suite.kernel_failures").inc(len(failures))
        if stats is not None:
            stats.publish(reg)
        summary = telemetry.TelemetrySummary.capture(rec, reg)
    return SuiteResult(
        cpu_name=cpu.name,
        config=config,
        runs=runs,
        failures=tuple(failures),
        cache_stats=stats,
        telemetry=summary,
    )


def verify_kernel(
    kernel: Kernel, n: int, precision: DType, reps: int = 2
) -> float:
    """Actually execute a kernel's NumPy implementation and return its
    checksum — the correctness face of the suite, used by tests and the
    quickstart example."""
    if n < 1 or reps < 1:
        raise ConfigError("n and reps must be >= 1")
    ws = kernel.prepare(n, precision)
    for _ in range(reps):
        kernel.execute(ws)
    checksum = kernel.checksum(ws)
    if not np.isfinite(checksum):
        raise ConfigError(
            f"{kernel.name} produced a non-finite checksum at n={n}"
        )
    return checksum
