"""Suite runner: predict per-kernel times for one configuration.

``run_suite`` is the workhorse behind every table and figure: it resolves
the thread placement, compiles each kernel through the compiler model,
asks the performance model for the time, injects seeded run-to-run noise
and averages over the configured number of runs — mirroring how the paper
collected its numbers (five runs, -O3, pinned threads).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.vectorizer import VectorizationReport, analyze
from repro.kernels.base import Kernel, KernelClass
from repro.kernels.registry import all_kernels
from repro.machine.cpu import CPUModel
from repro.machine.vector import DType
from repro.openmp.affinity import assign_cores
from repro.perfmodel.execution import ExecutionResult, simulate_kernel
from repro.suite.config import RunConfig
from repro.util.errors import ConfigError
from repro.util.rng import derive_seed, noise_factors
from repro.util.stats import arithmetic_mean


@dataclass(frozen=True)
class KernelRun:
    """One kernel's outcome within a suite run."""

    kernel_name: str
    klass: KernelClass
    seconds: float  # run-averaged
    prediction: ExecutionResult
    report: VectorizationReport


@dataclass(frozen=True)
class SuiteResult:
    """All kernel outcomes for one (machine, configuration) pair."""

    cpu_name: str
    config: RunConfig
    runs: dict[str, KernelRun]

    def __post_init__(self) -> None:
        if not self.runs:
            raise ConfigError("suite result contains no kernels")

    def time(self, kernel_name: str) -> float:
        key = kernel_name.upper()
        if key not in self.runs:
            raise ConfigError(f"no result for kernel {kernel_name!r}")
        return self.runs[key].seconds

    def kernels_in_class(self, klass: KernelClass) -> list[KernelRun]:
        return [r for r in self.runs.values() if r.klass == klass]

    def class_means(self) -> dict[KernelClass, float]:
        """Mean kernel time per class (seconds)."""
        out: dict[KernelClass, float] = {}
        for klass in KernelClass:
            members = self.kernels_in_class(klass)
            if members:
                out[klass] = arithmetic_mean([r.seconds for r in members])
        return out

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.runs.values())


def _noisy_average(base_seconds: float, seed: int, runs: int,
                   sigma: float) -> float:
    """Average of ``runs`` noisy samples of the model prediction."""
    factors = noise_factors(seed, runs, sigma)
    return float(base_seconds * np.mean(factors))


def run_suite(
    cpu: CPUModel,
    config: RunConfig,
    kernels: list[Kernel] | None = None,
) -> SuiteResult:
    """Run (predict) the whole suite on ``cpu`` under ``config``."""
    if kernels is None:
        kernels = all_kernels()
    if not kernels:
        raise ConfigError("kernel list is empty")
    compiler = config.resolve_compiler(cpu)
    cores = assign_cores(cpu.topology, config.threads, config.placement)

    runs: dict[str, KernelRun] = {}
    for kernel in kernels:
        if config.vectorize:
            report = analyze(
                compiler,
                kernel,
                cpu.core.isa,
                flavor=config.flavor,
                rollback=config.rollback,
            )
        else:
            report = VectorizationReport(
                vectorized=False,
                vector_path_executed=False,
                flavor=None,
                efficiency=1.0,
                reason="vectorization disabled",
            )
        size = max(1, int(round(kernel.default_size * config.size_scale)))
        prediction = simulate_kernel(
            kernel, cpu, cores, config.precision, report, n=size
        )
        seed = derive_seed(
            cpu.name, kernel.name, config.threads,
            config.placement.value, config.precision.label,
            config.vectorize, compiler.name, config.flavor.value,
        )
        seconds = _noisy_average(
            prediction.seconds, seed, config.runs, config.noise_sigma
        )
        runs[kernel.name] = KernelRun(
            kernel_name=kernel.name,
            klass=kernel.klass,
            seconds=seconds,
            prediction=prediction,
            report=report,
        )
    return SuiteResult(cpu_name=cpu.name, config=config, runs=runs)


def verify_kernel(
    kernel: Kernel, n: int, precision: DType, reps: int = 2
) -> float:
    """Actually execute a kernel's NumPy implementation and return its
    checksum — the correctness face of the suite, used by tests and the
    quickstart example."""
    if n < 1 or reps < 1:
        raise ConfigError("n and reps must be >= 1")
    ws = kernel.prepare(n, precision)
    for _ in range(reps):
        kernel.execute(ws)
    checksum = kernel.checksum(ws)
    if not np.isfinite(checksum):
        raise ConfigError(
            f"{kernel.name} produced a non-finite checksum at n={n}"
        )
    return checksum
