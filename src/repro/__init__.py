"""Reproduction of *Is RISC-V ready for HPC prime-time: Evaluating the
64-core Sophon SG2042 RISC-V CPU* (Brown, Jamieson, Lee — SC-W 2023).

The paper is a hardware characterization study; this package substitutes
the physical testbed with an analytic machine performance model while
reimplementing everything that *is* software:

``repro.kernels``
    The full RAJAPerf benchmark suite (64 kernels, 6 classes) as runnable
    NumPy implementations with static traffic/flop characterizations.
``repro.machine``
    Microarchitectural descriptions of the seven CPUs the paper measures
    (SG2042, VisionFive V1/V2, AMD Rome, Intel Broadwell/Icelake/Sandybridge).
``repro.isa``
    An RVV assembly model including a working RVV v1.0 -> v0.7.1 rollback
    rewriter (the paper's enabling tool for Clang experiments).
``repro.compiler``
    Auto-vectorization decision models for XuanTie GCC and Clang.
``repro.openmp``
    A simulated OpenMP runtime: OMP_PLACES/OMP_PROC_BIND parsing and the
    block / NUMA-cyclic / cluster-cyclic thread placement policies from
    Section 3.2 of the paper.
``repro.perfmodel``
    The analytic simulator: cache hierarchy, NUMA memory-controller
    contention, superscalar/vector throughput, fork-join overheads.
``repro.suite``
    A RAJAPerf-style harness: run configs, repetition and averaging,
    class-level aggregation and baselining.
``repro.experiments``
    One module per table/figure in the paper's evaluation.

Quickstart::

    from repro import catalog, run_suite, RunConfig
    sg2042 = catalog.sg2042()
    result = run_suite(sg2042, RunConfig(threads=1, precision="fp32"))
    print(result.class_means())
"""

from repro.machine import catalog
from repro.suite.config import Placement, Precision, RunConfig
from repro.suite.runner import SuiteResult, run_suite

__version__ = "1.0.0"

__all__ = [
    "catalog",
    "RunConfig",
    "Precision",
    "Placement",
    "run_suite",
    "SuiteResult",
    "__version__",
]
