"""Distributed proto-apps: executable on the SPMD runtime.

Each app has a ``run_distributed`` entry that actually computes on N
ranks with halo exchanges/reductions, and matches a single-rank
reference — the correctness witnesses for the cluster extension.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.runtime import Communicator, SpmdRuntime
from repro.util.errors import ConfigError


def jacobi2d_distributed(
    num_ranks: int, ny: int, nx: int, steps: int, seed: int = 0
) -> np.ndarray:
    """Run ``steps`` Jacobi-2D sweeps on a ny x nx grid decomposed by
    rows over ``num_ranks`` ranks; returns the final global field.

    Boundary rows/columns hold their initial values (Dirichlet).
    """
    if ny % num_ranks:
        raise ConfigError(f"{ny} rows not divisible by {num_ranks} ranks")
    if ny // num_ranks < 1:
        raise ConfigError("each rank needs at least one row")
    rng = np.random.default_rng(seed)
    initial = rng.random((ny, nx))

    rows_per = ny // num_ranks

    def rank_fn(comm: Communicator) -> np.ndarray:
        lo = comm.rank * rows_per
        hi = lo + rows_per
        # Local block with one ghost row above and below.
        local = np.zeros((rows_per + 2, nx))
        local[1:-1] = initial[lo:hi]
        if comm.rank > 0:
            local[0] = initial[lo - 1]
        if comm.rank < comm.size - 1:
            local[-1] = initial[hi]

        for _ in range(steps):
            # Halo exchange: send edge rows, receive ghosts.
            if comm.size > 1:
                up = comm.rank - 1
                down = comm.rank + 1
                if comm.rank % 2 == 0:
                    if down < comm.size:
                        local[-1] = comm.sendrecv(
                            down, local[-2], down, tag=1
                        )
                    if up >= 0:
                        local[0] = comm.sendrecv(up, local[1], up, tag=2)
                else:
                    if up >= 0:
                        local[0] = comm.sendrecv(up, local[1], up, tag=1)
                    if down < comm.size:
                        local[-1] = comm.sendrecv(
                            down, local[-2], down, tag=2
                        )
            new = local.copy()
            interior = slice(1, rows_per + 1)
            new[interior, 1:-1] = 0.2 * (
                local[interior, 1:-1]
                + local[interior, :-2]
                + local[interior, 2:]
                + local[0:rows_per, 1:-1]
                + local[2 : rows_per + 2, 1:-1]
            )
            # Global boundary rows stay fixed.
            if comm.rank == 0:
                new[1] = local[1]
            if comm.rank == comm.size - 1:
                new[rows_per] = local[rows_per]
            local = new

        return local[1:-1]

    runtime = SpmdRuntime(num_ranks)
    blocks = runtime.run(rank_fn)
    return np.vstack(blocks)


def jacobi2d_reference(ny: int, nx: int, steps: int,
                       seed: int = 0) -> np.ndarray:
    """Single-process reference for :func:`jacobi2d_distributed`."""
    rng = np.random.default_rng(seed)
    grid = rng.random((ny, nx))
    for _ in range(steps):
        new = grid.copy()
        new[1:-1, 1:-1] = 0.2 * (
            grid[1:-1, 1:-1]
            + grid[1:-1, :-2]
            + grid[1:-1, 2:]
            + grid[:-2, 1:-1]
            + grid[2:, 1:-1]
        )
        grid = new
    return grid


def dot_distributed(num_ranks: int, n: int, seed: int = 0) -> float:
    """Distributed dot product with an allreduce."""
    if n % num_ranks:
        raise ConfigError(f"{n} elements not divisible by {num_ranks}")
    rng = np.random.default_rng(seed)
    a = rng.random(n)
    b = rng.random(n)
    chunk = n // num_ranks

    def rank_fn(comm: Communicator) -> float:
        lo = comm.rank * chunk
        hi = lo + chunk
        local = float(np.dot(a[lo:hi], b[lo:hi]))
        return comm.allreduce(local, op="sum")

    results = SpmdRuntime(num_ranks).run(rank_fn)
    # Every rank must hold the same global value.
    if max(results) - min(results) > 1e-9 * abs(results[0]):
        raise ConfigError("allreduce results diverged across ranks")
    return results[0]


def pi_distributed(num_ranks: int, n: int) -> float:
    """The classic MPI pi-by-quadrature example (mirrors the mpi4py
    tutorial program)."""
    if n < num_ranks:
        raise ConfigError("need at least one interval per rank")

    def rank_fn(comm: Communicator) -> float:
        h = 1.0 / n
        i = np.arange(comm.rank, n, comm.size)
        x = h * (i + 0.5)
        local = float(np.sum(4.0 / (1.0 + x * x)) * h)
        return comm.allreduce(local, op="sum")

    return SpmdRuntime(num_ranks).run(rank_fn)[0]
