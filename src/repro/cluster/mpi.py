"""MPI operation cost functions over a :class:`NetworkModel`.

Standard algorithm cost models (Thakur et al.): binomial trees for
small-message collectives, ring/recursive-doubling for large; halo
exchange as concurrent neighbour messages.
"""

from __future__ import annotations

import math

from repro.cluster.network import NetworkModel
from repro.util.errors import ConfigError

#: Message size where allreduce switches from tree to ring algorithm
#: (matches common MPI implementation defaults).
RING_THRESHOLD_BYTES = 64 * 1024


def point_to_point_time(net: NetworkModel, nbytes: float) -> float:
    """One MPI_Send/Recv pair."""
    return net.message_time(nbytes)


def allreduce_time(net: NetworkModel, nbytes: float, ranks: int) -> float:
    """MPI_Allreduce of ``nbytes`` across ``ranks``.

    Small messages: recursive doubling — ``ceil(log2 p)`` rounds of the
    full payload. Large messages: ring reduce-scatter + allgather —
    ``2 (p-1)`` steps of ``n/p`` each.
    """
    if ranks < 1:
        raise ConfigError("ranks must be >= 1")
    if nbytes < 0:
        raise ConfigError("nbytes must be >= 0")
    if ranks == 1:
        return 0.0
    rounds = math.ceil(math.log2(ranks))
    if nbytes <= RING_THRESHOLD_BYTES:
        return rounds * net.message_time(nbytes)
    chunk = nbytes / ranks
    steps = 2 * (ranks - 1)
    return steps * net.message_time(chunk)


def broadcast_time(net: NetworkModel, nbytes: float, ranks: int) -> float:
    """MPI_Bcast: binomial tree."""
    if ranks < 1:
        raise ConfigError("ranks must be >= 1")
    if ranks == 1:
        return 0.0
    return math.ceil(math.log2(ranks)) * net.message_time(nbytes)


def halo_exchange_time(
    net: NetworkModel,
    face_bytes: float,
    neighbours: int,
    overlap: float = 0.5,
) -> float:
    """One halo exchange: ``neighbours`` concurrent sends+recvs of
    ``face_bytes`` each.

    ``overlap`` in [0, 1] is the fraction of the neighbour messages the
    NIC pipelines concurrently (1 = perfectly parallel, 0 = fully
    serialized).
    """
    if neighbours < 0:
        raise ConfigError("neighbours must be >= 0")
    if not 0 <= overlap <= 1:
        raise ConfigError("overlap must be in [0, 1]")
    if neighbours == 0:
        return 0.0
    one = net.message_time(face_bytes)
    serialized = neighbours * one
    parallel = one
    return overlap * parallel + (1 - overlap) * serialized


def barrier_time(net: NetworkModel, ranks: int) -> float:
    """MPI_Barrier: dissemination algorithm, ``ceil(log2 p)`` rounds of
    empty messages."""
    if ranks < 1:
        raise ConfigError("ranks must be >= 1")
    if ranks == 1:
        return 0.0
    return math.ceil(math.log2(ranks)) * net.message_time(0)
