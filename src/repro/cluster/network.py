"""Network fabric models.

A message's wire time follows the classic alpha-beta model with a
per-message software overhead: ``t(n) = overhead + latency + n/bandwidth``.
Presets cover the adaptors plausible for SG2042-based clusters (the
Pioneer box exposes PCIe Gen4, so 25GbE is the natural baseline and
100GbE the optimistic case).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta-gamma network cost model.

    Attributes:
        name: Fabric name for reports.
        latency_s: One-way wire+switch latency (alpha).
        bandwidth_bytes: Sustained point-to-point bandwidth (1/beta).
        per_message_overhead_s: Host software overhead per message
            (MPI stack + driver; higher on slow cores — the paper notes
            auxiliaries will be driven by the CPU).
    """

    name: str
    latency_s: float
    bandwidth_bytes: float
    per_message_overhead_s: float = 1e-6

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.per_message_overhead_s < 0:
            raise ConfigError("latency/overhead must be >= 0")
        if self.bandwidth_bytes <= 0:
            raise ConfigError("bandwidth must be positive")

    def message_time(self, nbytes: float) -> float:
        """One point-to-point message of ``nbytes``."""
        if nbytes < 0:
            raise ConfigError("message size must be >= 0")
        return (
            self.per_message_overhead_s
            + self.latency_s
            + nbytes / self.bandwidth_bytes
        )


def ethernet_25g(host_overhead_s: float = 3e-6) -> NetworkModel:
    """25GbE RoCE-ish: ~2us latency, ~2.9 GB/s sustained."""
    return NetworkModel(
        name="25GbE",
        latency_s=2e-6,
        bandwidth_bytes=2.9e9,
        per_message_overhead_s=host_overhead_s,
    )


def ethernet_100g(host_overhead_s: float = 2e-6) -> NetworkModel:
    """100GbE: ~1.5us latency, ~11.5 GB/s sustained."""
    return NetworkModel(
        name="100GbE",
        latency_s=1.5e-6,
        bandwidth_bytes=11.5e9,
        per_message_overhead_s=host_overhead_s,
    )


def slingshot() -> NetworkModel:
    """HPE Slingshot-ish HPC fabric (the ARCHER2 comparison point)."""
    return NetworkModel(
        name="Slingshot",
        latency_s=1.1e-6,
        bandwidth_bytes=21e9,
        per_message_overhead_s=0.8e-6,
    )
