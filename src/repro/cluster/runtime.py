"""An executable in-process SPMD message-passing runtime.

Real (if small) message passing: each rank runs in its own thread with
point-to-point channels and collectives, mirroring the MPI subset the
proto-apps need — send/recv, allreduce, broadcast, barrier. SPMD rules
apply: every rank must call collectives in the same order.

This is the *correctness* face of the cluster study; the performance
face is the cost model in :mod:`repro.cluster.mpi`.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable

import numpy as np

from repro.util.errors import ConfigError


class Communicator:
    """Per-rank handle: the MPI-like API visible to rank functions."""

    def __init__(self, rank: int, size: int, runtime: "SpmdRuntime") -> None:
        self.rank = rank
        self.size = size
        self._rt = runtime
        self._collective_seq = 0

    # -- point to point ----------------------------------------------------

    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        """Send ``payload`` to ``dest`` (buffered, non-blocking).

        NumPy arrays are copied on send, matching MPI's buffer semantics
        (the sender may mutate its array afterwards).
        """
        if not 0 <= dest < self.size:
            raise ConfigError(f"invalid dest rank {dest}")
        if dest == self.rank:
            raise ConfigError("send to self deadlocks a blocking recv")
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        self._rt.channel(self.rank, dest, tag).put(payload)

    def recv(self, source: int, tag: int = 0, timeout: float = 30.0) -> Any:
        """Blocking receive from ``source``."""
        if not 0 <= source < self.size:
            raise ConfigError(f"invalid source rank {source}")
        try:
            return self._rt.channel(source, self.rank, tag).get(
                timeout=timeout
            )
        except queue.Empty:
            raise ConfigError(
                f"rank {self.rank}: recv from {source} (tag {tag}) "
                "timed out — deadlock?"
            ) from None

    def sendrecv(self, dest: int, payload: Any, source: int,
                 tag: int = 0) -> Any:
        """Exchange with neighbours without deadlocking (send is
        buffered, so send-then-recv is safe)."""
        self.send(dest, payload, tag)
        return self.recv(source, tag)

    # -- collectives -------------------------------------------------------

    def _next_seq(self) -> int:
        seq = self._collective_seq
        self._collective_seq += 1
        return seq

    def barrier(self) -> None:
        self._next_seq()
        self._rt.barrier.wait()

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """Allreduce over scalars or NumPy arrays."""
        seq = self._next_seq()
        slot = self._rt.collective_slot(seq)
        slot[self.rank] = value
        self._rt.barrier.wait()
        values = [slot[r] for r in range(self.size)]
        if op == "sum":
            result = values[0]
            for v in values[1:]:
                result = result + v
        elif op == "min":
            result = min(values) if not isinstance(
                values[0], np.ndarray
            ) else np.minimum.reduce(values)
        elif op == "max":
            result = max(values) if not isinstance(
                values[0], np.ndarray
            ) else np.maximum.reduce(values)
        else:
            raise ConfigError(f"unknown allreduce op {op!r}")
        # Second phase: everyone has read the slot; safe to reuse after.
        self._rt.barrier.wait()
        return result

    def broadcast(self, value: Any, root: int = 0) -> Any:
        if not 0 <= root < self.size:
            raise ConfigError(f"invalid root {root}")
        seq = self._next_seq()
        slot = self._rt.collective_slot(seq)
        if self.rank == root:
            slot[root] = value
        self._rt.barrier.wait()
        result = slot[root]
        self._rt.barrier.wait()
        return result

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        seq = self._next_seq()
        slot = self._rt.collective_slot(seq)
        slot[self.rank] = value
        self._rt.barrier.wait()
        result = (
            [slot[r] for r in range(self.size)]
            if self.rank == root
            else None
        )
        self._rt.barrier.wait()
        return result


class SpmdRuntime:
    """Run one function on N ranks (threads) with message passing.

    Usage::

        rt = SpmdRuntime(4)
        results = rt.run(lambda comm: comm.rank * 2)
        assert results == [0, 2, 4, 6]
    """

    def __init__(self, num_ranks: int) -> None:
        if num_ranks < 1:
            raise ConfigError("num_ranks must be >= 1")
        self.num_ranks = num_ranks
        self._channels: dict[tuple[int, int, int], queue.Queue] = {}
        self._channels_lock = threading.Lock()
        self._slots: dict[int, dict[int, Any]] = {}
        self._slots_lock = threading.Lock()
        self.barrier = threading.Barrier(num_ranks)

    def channel(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self._channels_lock:
            if key not in self._channels:
                self._channels[key] = queue.Queue()
            return self._channels[key]

    def collective_slot(self, seq: int) -> dict[int, Any]:
        with self._slots_lock:
            if seq not in self._slots:
                self._slots[seq] = {}
            return self._slots[seq]

    def run(self, fn: Callable[[Communicator], Any],
            timeout: float = 60.0) -> list[Any]:
        """Execute ``fn(comm)`` on every rank; returns per-rank results.

        Any rank raising propagates (the first exception wins) after all
        threads are joined or timed out.
        """
        results: list[Any] = [None] * self.num_ranks
        errors: list[BaseException] = []

        def worker(rank: int) -> None:
            comm = Communicator(rank, self.num_ranks, self)
            try:
                results[rank] = fn(comm)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
                self.barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(rank,), daemon=True)
            for rank in range(self.num_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout)
        if any(t.is_alive() for t in threads):
            raise ConfigError("SPMD run timed out (deadlock?)")
        if errors:
            raise errors[0]
        return results
