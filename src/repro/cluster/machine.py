"""Cluster model: N nodes of one CPU model joined by a fabric.

Composes the node-level performance model with the MPI cost functions to
predict distributed proto-app times — the study the paper proposes as
further work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.mpi import allreduce_time, halo_exchange_time
from repro.cluster.network import NetworkModel
from repro.compiler.vectorizer import analyze
from repro.kernels.registry import get_kernel
from repro.machine.cpu import CPUModel
from repro.machine.vector import DType
from repro.openmp.affinity import PlacementPolicy, assign_cores
from repro.perfmodel.execution import simulate_kernel
from repro.suite.config import RunConfig
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class ClusterModel:
    """A homogeneous cluster.

    Attributes:
        node: Per-node CPU model.
        num_nodes: Node count.
        network: Fabric model.
        threads_per_node: OpenMP threads per node (MPI+X style); default
            uses the node's paper-best configuration.
        placement: Thread placement within a node.
    """

    node: CPUModel
    num_nodes: int
    network: NetworkModel
    threads_per_node: int = 0  # 0 -> all cores
    placement: PlacementPolicy = PlacementPolicy.CLUSTER

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        if self.threads_per_node < 0:
            raise ConfigError("threads_per_node must be >= 0")
        if self.threads_per_node > self.node.num_cores:
            raise ConfigError("threads_per_node exceeds node cores")

    @property
    def threads(self) -> int:
        return self.threads_per_node or self.node.num_cores

    def describe(self) -> str:
        return (
            f"{self.num_nodes} x {self.node.name} "
            f"({self.threads} threads/node) over {self.network.name}"
        )

    # -- node-level compute times ----------------------------------------

    def _node_kernel_time(
        self, kernel_name: str, n: int, precision: DType
    ) -> float:
        """Predicted time of one kernel repetition on one node with the
        cluster's threading configuration."""
        kernel = get_kernel(kernel_name)
        config = RunConfig(threads=self.threads, precision=precision,
                          placement=self.placement)
        compiler = config.resolve_compiler(self.node)
        report = analyze(compiler, kernel, self.node.core.isa)
        cores = assign_cores(
            self.node.topology, self.threads, self.placement
        )
        result = simulate_kernel(
            kernel, self.node, cores, precision, report, n=n, reps=1
        )
        return result.seconds

    # -- distributed proto-app predictions --------------------------------

    def jacobi2d_step_time(
        self, global_points: int, precision: DType = DType.FP64
    ) -> float:
        """One distributed Jacobi-2D timestep: local stencil compute +
        halo exchange with up to 4 neighbours (1D row decomposition:
        2 neighbours)."""
        if global_points < self.num_nodes:
            raise ConfigError("fewer grid points than nodes")
        local_points = global_points // self.num_nodes
        compute = self._node_kernel_time(
            "JACOBI_2D", local_points, precision
        )
        # 1D row decomposition: two faces of sqrt(global_points) points.
        face_elems = int(round(global_points ** 0.5))
        face_bytes = face_elems * precision.bytes
        neighbours = 0 if self.num_nodes == 1 else 2
        comm = halo_exchange_time(self.network, face_bytes, neighbours)
        return compute + comm

    def dot_time(
        self, global_elems: int, precision: DType = DType.FP64
    ) -> float:
        """Distributed dot product: local DOT + allreduce of one scalar."""
        if global_elems < self.num_nodes:
            raise ConfigError("fewer elements than nodes")
        local = global_elems // self.num_nodes
        compute = self._node_kernel_time("DOT", local, precision)
        comm = allreduce_time(
            self.network, precision.bytes, self.num_nodes
        )
        return compute + comm

    def stream_triad_time(
        self, global_elems: int, precision: DType = DType.FP64
    ) -> float:
        """Embarrassingly parallel distributed TRIAD (no communication)."""
        if global_elems < self.num_nodes:
            raise ConfigError("fewer elements than nodes")
        local = global_elems // self.num_nodes
        return self._node_kernel_time("TRIAD", local, precision)

    def strong_scaling(
        self,
        app: str,
        global_size: int,
        node_counts: list[int],
        precision: DType = DType.FP64,
    ) -> dict[int, float]:
        """Strong-scaling sweep: same global problem, growing cluster.

        ``app`` is one of ``"jacobi2d"``, ``"dot"``, ``"triad"``.
        """
        from dataclasses import replace

        apps = {
            "jacobi2d": "jacobi2d_step_time",
            "dot": "dot_time",
            "triad": "stream_triad_time",
        }
        if app not in apps:
            raise ConfigError(f"unknown app {app!r}; known: {sorted(apps)}")
        times = {}
        for nodes in node_counts:
            cluster = replace(self, num_nodes=nodes)
            times[nodes] = getattr(cluster, apps[app])(
                global_size, precision
            )
        return times

    def weak_scaling(
        self,
        app: str,
        per_node_size: int,
        node_counts: list[int],
        precision: DType = DType.FP64,
    ) -> dict[int, float]:
        """Weak-scaling sweep: the global problem grows with the
        cluster (``per_node_size`` points per node). Flat times mean
        perfect weak scaling; growth exposes the communication terms.
        """
        from dataclasses import replace

        apps = {
            "jacobi2d": "jacobi2d_step_time",
            "dot": "dot_time",
            "triad": "stream_triad_time",
        }
        if app not in apps:
            raise ConfigError(f"unknown app {app!r}; known: {sorted(apps)}")
        if per_node_size < 1:
            raise ConfigError("per_node_size must be >= 1")
        times = {}
        for nodes in node_counts:
            cluster = replace(self, num_nodes=nodes)
            times[nodes] = getattr(cluster, apps[app])(
                per_node_size * nodes, precision
            )
        return times
