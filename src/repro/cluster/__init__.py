"""Distributed-memory extension: the paper's "further work".

Section 4 of the paper proposes exploring distributed-memory (MPI)
performance of clusters built from SG2042 nodes, noting that networking
performance will be driven by the adaptor coupled to the CPU. This
subpackage implements that study in the same two-faced style as the rest
of the reproduction:

* **Cost model** (:mod:`repro.cluster.network`, :mod:`repro.cluster.mpi`,
  :mod:`repro.cluster.machine`): network adaptor models (latency +
  bandwidth + per-message overhead), MPI collective cost functions
  (ring/tree algorithms) and a :class:`ClusterModel` composing node CPU
  models with a fabric.
* **Executable runtime** (:mod:`repro.cluster.runtime`): a real
  in-process SPMD message-passing runtime (threads + queues) with
  send/recv/allreduce, used to *run* the distributed proto-apps
  numerically and test their correctness.
* **Proto-apps** (:mod:`repro.cluster.apps`): distributed Jacobi-2D with
  halo exchange, distributed dot/allreduce, and embarrassingly parallel
  stream — the patterns whose scaling the paper wants measured.
"""

from repro.cluster.machine import ClusterModel
from repro.cluster.mpi import (
    allreduce_time,
    halo_exchange_time,
    point_to_point_time,
)
from repro.cluster.network import NetworkModel, ethernet_25g, ethernet_100g
from repro.cluster.runtime import SpmdRuntime

__all__ = [
    "NetworkModel",
    "ethernet_25g",
    "ethernet_100g",
    "ClusterModel",
    "point_to_point_time",
    "allreduce_time",
    "halo_exchange_time",
    "SpmdRuntime",
]
