"""Minimal HTTP/1.1 framing over asyncio streams.

The service speaks just enough HTTP for JSON request/response traffic
with keep-alive: request line + headers + ``Content-Length`` body in,
status line + headers + body out. No dependencies, no chunked encoding,
no pipelining — a malformed or oversized request turns into a
:class:`~repro.serve.errors.BadRequest` and the connection is closed.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

from repro.serve.errors import BadRequest

#: Hard cap on request bodies — predictions are small JSON documents.
MAX_BODY_BYTES = 1 << 20

#: Hard cap on one header line (also bounds the request line).
MAX_LINE_BYTES = 8 << 10

REASONS = {
    200: "OK",
    201: "Created",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> dict[str, Any]:
        """The body parsed as a JSON object (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise BadRequest("request body must be a JSON object")
        return data


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between requests
        raise BadRequest("connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise BadRequest("header line too long")
    if len(line) > MAX_LINE_BYTES:
        raise BadRequest("header line too long")
    return line


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> HttpRequest | None:
    """Read one request; ``None`` on clean EOF before a request line.

    Raises :class:`BadRequest` on framing violations (the caller
    responds 400 and closes the connection).
    """
    line = await _read_line(reader)
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line {line!r:.80}")
    method, path, _version = parts

    headers: dict[str, str] = {}
    while True:
        hline = await _read_line(reader)
        if hline in (b"\r\n", b"\n"):
            break
        if not hline:
            raise BadRequest("connection closed inside headers")
        name, sep, value = hline.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header line {hline!r:.80}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise BadRequest(
                f"invalid Content-Length {length_header!r}"
            )
        if length < 0 or length > max_body_bytes:
            raise BadRequest(
                f"Content-Length {length} outside [0, {max_body_bytes}]"
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise BadRequest("connection closed mid-body")
    elif headers.get("transfer-encoding"):
        raise BadRequest("chunked request bodies are not supported")
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def compose_head(
    status: int,
    body_length: int,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """The full response head (through the blank line) as bytes.

    Split out from :func:`write_response` so the response cache can
    precompute heads — Content-Length included — once per entry and
    serve a hit with a single ``writer.write``.
    """
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {body_length}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if extra_headers:
        lines.extend(f"{k}: {v}" for k, v in extra_headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> None:
    """Serialize one response onto ``writer`` (buffered; caller drains)."""
    head = compose_head(
        status,
        len(body),
        content_type=content_type,
        keep_alive=keep_alive,
        extra_headers=extra_headers,
    )
    writer.write(head + body)


def json_body(payload: Any) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")
