"""``repro.serve`` — the fault-tolerant prediction service.

A long-running asyncio HTTP/JSON server in front of the prediction
engine: request coalescing into batch engine calls, per-request
deadlines, admission control with load shedding, a circuit breaker
around the engine, structured error envelopes, graceful drain, and a
mountable chaos plan. See ``docs/SERVE.md`` for the full contract.

Usage::

    from repro.serve import PredictionServer, ServeConfig

    server = PredictionServer(ServeConfig(port=0))
    await server.start()          # inside an event loop
    ...
    await server.drain()

Or from the CLI::

    sg2042-repro serve --port 8642
"""

from repro.serve.admission import AdmissionController
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.coalescer import (
    AdaptiveWindow,
    Coalescer,
    CoalescerConfig,
    EngineState,
    PredictJob,
)
from repro.serve.errors import (
    BadRequest,
    DeadlineExceeded,
    EngineFault,
    NotFound,
    ServeError,
    Shed,
    Unavailable,
)
from repro.serve.respcache import (
    CachedResponse,
    RespCacheStats,
    ResponseCache,
    config_digest,
    explain_key,
    predict_key,
    sweep_key,
)
from repro.serve.server import (
    MAX_SWEEP_CELLS,
    PredictionServer,
    ServeConfig,
    serve_forever,
)
from repro.serve.singleflight import Flight, SingleFlight

__all__ = [
    "AdaptiveWindow",
    "AdmissionController",
    "BadRequest",
    "BreakerState",
    "CachedResponse",
    "CircuitBreaker",
    "Coalescer",
    "CoalescerConfig",
    "DeadlineExceeded",
    "EngineFault",
    "EngineState",
    "Flight",
    "MAX_SWEEP_CELLS",
    "NotFound",
    "PredictJob",
    "PredictionServer",
    "RespCacheStats",
    "ResponseCache",
    "ServeConfig",
    "ServeError",
    "Shed",
    "SingleFlight",
    "Unavailable",
    "config_digest",
    "explain_key",
    "predict_key",
    "serve_forever",
    "sweep_key",
]
