"""``repro.serve`` — the fault-tolerant prediction service.

A long-running asyncio HTTP/JSON server in front of the prediction
engine: request coalescing into batch engine calls, per-request
deadlines, admission control with load shedding, a circuit breaker
around the engine, structured error envelopes, graceful drain, and a
mountable chaos plan. See ``docs/SERVE.md`` for the full contract.

Usage::

    from repro.serve import PredictionServer, ServeConfig

    server = PredictionServer(ServeConfig(port=0))
    await server.start()          # inside an event loop
    ...
    await server.drain()

Or from the CLI::

    sg2042-repro serve --port 8642
"""

from repro.serve.admission import AdmissionController
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.coalescer import (
    Coalescer,
    CoalescerConfig,
    EngineState,
    PredictJob,
)
from repro.serve.errors import (
    BadRequest,
    DeadlineExceeded,
    EngineFault,
    NotFound,
    ServeError,
    Shed,
    Unavailable,
)
from repro.serve.server import (
    MAX_SWEEP_CELLS,
    PredictionServer,
    ServeConfig,
    serve_forever,
)

__all__ = [
    "AdmissionController",
    "BadRequest",
    "BreakerState",
    "CircuitBreaker",
    "Coalescer",
    "CoalescerConfig",
    "DeadlineExceeded",
    "EngineFault",
    "EngineState",
    "MAX_SWEEP_CELLS",
    "NotFound",
    "PredictJob",
    "PredictionServer",
    "ServeConfig",
    "ServeError",
    "Shed",
    "Unavailable",
    "serve_forever",
]
