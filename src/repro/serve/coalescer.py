"""Request coalescing: many concurrent predictions, one engine batch.

The batch engine (:mod:`repro.perfmodel.batch`) was built for exactly
this shape: N kernels under one configuration evaluated in a single
vectorized pass. The coalescer gathers concurrent ``/predict`` requests
over a short window, groups them by (machine, configuration), deduplicates
kernels, and runs each group through one :func:`run_suite` call on a
worker thread — sharing one process-wide :class:`SuiteCaches` per
machine digest, so repeat traffic is served from the prediction memo.

Robustness is owned here too: jobs whose deadline expired while queued
are dropped without touching the engine, per-kernel engine faults come
back as structured :class:`EngineFault` results (retried inside
``run_suite`` under the server's retry policy first), and every outcome
feeds the circuit breaker.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import telemetry
from repro.kernels.base import Kernel
from repro.machine.cpu import CPUModel
from repro.resilience.retry import FailurePolicy, RetrySpec
from repro.serve.breaker import CircuitBreaker
from repro.serve.errors import DeadlineExceeded, EngineFault, Unavailable
from repro.suite.config import RunConfig
from repro.suite.memo import PredictionMemo, SuiteCaches, machine_digest
from repro.suite.runner import KernelRun, run_suite

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import ArtifactStore


class EngineState:
    """Process-wide cache layers, one :class:`SuiteCaches` per machine.

    Keyed by :func:`machine_digest`, so two requests naming equal
    machines (even via different objects) share compile cache and
    prediction memo entries, while any re-tuned parameter isolates them.

    With ``store`` set, every machine's cache bundle is persistent
    (:meth:`SuiteCaches.persistent` over the one shared store), so
    restarts pick up compile reports and prediction pages from disk;
    ``memo_cap`` bounds each memo's in-memory tier (LRU).
    """

    def __init__(
        self,
        store: "ArtifactStore | None" = None,
        memo_cap: int | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._caches: dict[int, SuiteCaches] = {}
        self._store = store
        self._memo_cap = memo_cap

    @property
    def store(self) -> "ArtifactStore | None":
        return self._store

    def _build_caches(self) -> SuiteCaches:
        if self._store is not None:
            return SuiteCaches.persistent(
                self._store, memo_entry_cap=self._memo_cap
            )
        if self._memo_cap is not None:
            return SuiteCaches(
                predict=PredictionMemo(max_entries=self._memo_cap)
            )
        return SuiteCaches()

    def caches_for(self, cpu: CPUModel) -> SuiteCaches:
        digest = machine_digest(cpu)
        with self._lock:
            caches = self._caches.get(digest)
            if caches is None:
                caches = self._build_caches()
                self._caches[digest] = caches
            return caches

    def stats(self) -> dict[int, "object"]:
        """``{digest: CacheCounters}`` for every machine served."""
        with self._lock:
            items = list(self._caches.items())
        return {digest: caches.stats() for digest, caches in items}

    def aggregate_hit_rate(self) -> float | None:
        """Prediction-memo hit rate across all machines (``None`` before
        any lookup happened)."""
        hits = misses = 0
        for counters in self.stats().values():
            hits += counters.predict_hits
            misses += counters.predict_misses
        total = hits + misses
        return (hits / total) if total else None


@dataclass
class PredictJob:
    """One in-flight ``/predict`` request inside the coalescer."""

    kernel: Kernel
    cpu: CPUModel
    config: RunConfig
    future: asyncio.Future
    #: Absolute ``loop.time()`` deadline, or ``None`` for unbounded.
    deadline: float | None = None

    def fail(self, exc: Exception) -> None:
        if not self.future.done():
            self.future.set_exception(exc)

    def resolve(self, run: KernelRun) -> None:
        if not self.future.done():
            self.future.set_result(run)


@dataclass
class CoalescerConfig:
    """Batching and engine-policy knobs (see ``docs/SERVE.md``)."""

    max_batch: int = 64
    window_s: float = 0.002
    policy: FailurePolicy = FailurePolicy.RETRY
    retry: RetrySpec = field(default_factory=lambda: RetrySpec(max_retries=2))
    engine: str = "batch"
    #: Adapt the window to load (``window_s`` becomes the cap); off by
    #: default so the raw coalescer keeps fixed-window semantics.
    adaptive: bool = False
    #: Floor the adaptive window never goes below.
    min_window_s: float = 0.0
    #: Expected arrivals per full window at which the window saturates
    #: at its cap.
    target_batch: int = 8
    #: EWMA smoothing factor for inter-arrival gaps.
    ewma_alpha: float = 0.2
    #: Observed p99 latency (seconds) beyond which the window is scaled
    #: back down even under pressure; ``None`` disables the guardrail.
    guardrail_p99_s: float | None = None


class AdaptiveWindow:
    """Load-adaptive batch window: latency-optimal when idle,
    throughput-optimal under pressure.

    The controller tracks an EWMA of inter-arrival gaps (updated on
    every ``submit``). The window is::

        expected = cap / gap          # arrivals expected per full window
        pressure = clamp((expected - 1) / (target_batch - 1), 0, 1)
        window   = floor + pressure * (cap - floor)

    so a lone request (expected <= 1) waits ``min_window_s`` — zero by
    default, the latency-optimal choice — while a sustained stream that
    would fill ``target_batch`` slots per window gets the full cap, the
    throughput-optimal choice. The gap estimate is decayed by the time
    since the last arrival (``max(ewma, now - last)``), so a burst
    followed by silence drops back to the floor instead of remembering
    its peak rate forever.

    A p99-latency guardrail bounds the failure mode where batching
    itself is the latency problem: when the observed request p99
    exceeds ``guardrail_p99_s``, the window is scaled by
    ``guardrail / p99`` regardless of arrival pressure.
    """

    def __init__(
        self,
        cap_s: float,
        min_s: float = 0.0,
        target_batch: int = 8,
        ewma_alpha: float = 0.2,
        guardrail_p99_s: float | None = None,
        latency: "telemetry.LatencyWindow | None" = None,
    ) -> None:
        self.cap_s = max(cap_s, 0.0)
        self.min_s = min(max(min_s, 0.0), self.cap_s)
        self.target_batch = max(target_batch, 1)
        self.ewma_alpha = min(max(ewma_alpha, 0.0), 1.0)
        self.guardrail_p99_s = guardrail_p99_s
        self.latency = latency
        self._gap_ewma: float | None = None
        self._last_arrival: float | None = None

    def observe_arrival(self, now: float) -> None:
        last = self._last_arrival
        self._last_arrival = now
        if last is None:
            return
        gap = max(now - last, 1e-9)
        if self._gap_ewma is None:
            self._gap_ewma = gap
        else:
            self._gap_ewma += self.ewma_alpha * (gap - self._gap_ewma)

    def window_s(self, now: float) -> float:
        cap = self.cap_s
        floor = self.min_s
        if self._gap_ewma is None or self._last_arrival is None:
            return floor
        gap = max(self._gap_ewma, now - self._last_arrival, 1e-9)
        expected = cap / gap
        if self.target_batch > 1:
            pressure = (expected - 1.0) / (self.target_batch - 1.0)
        else:
            pressure = 1.0 if expected > 1.0 else 0.0
        pressure = min(max(pressure, 0.0), 1.0)
        window = floor + pressure * (cap - floor)
        if self.guardrail_p99_s is not None and self.latency is not None:
            p99 = self.latency.percentile(99)
            if p99 is not None and p99 > self.guardrail_p99_s:
                window *= self.guardrail_p99_s / p99
        return min(max(window, floor), cap)


class Coalescer:
    """The batching loop between the HTTP handlers and the engine."""

    def __init__(
        self,
        state: EngineState,
        executor: Executor,
        config: CoalescerConfig | None = None,
        breaker: CircuitBreaker | None = None,
        latency: "telemetry.LatencyWindow | None" = None,
    ) -> None:
        self.state = state
        self.executor = executor
        self.config = config or CoalescerConfig()
        self.breaker = breaker
        self._adaptive: AdaptiveWindow | None = None
        if self.config.adaptive:
            self._adaptive = AdaptiveWindow(
                cap_s=self.config.window_s,
                min_s=self.config.min_window_s,
                target_batch=self.config.target_batch,
                ewma_alpha=self.config.ewma_alpha,
                guardrail_p99_s=self.config.guardrail_p99_s,
                latency=latency,
            )
        self._queue: asyncio.Queue[PredictJob] = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self._groups: set[asyncio.Task] = set()
        self._stopping = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("coalescer already started")
        self._stopping = False
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self, drain: bool = True) -> None:
        """Stop the batching loop.

        With ``drain=True`` (graceful shutdown) queued jobs are flushed
        into one final dispatch and in-flight group tasks are awaited;
        otherwise everything pending fails with ``unavailable``.
        """
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        pending: list[PredictJob] = []
        while not self._queue.empty():
            pending.append(self._queue.get_nowait())
        if drain and pending:
            self._dispatch(pending)
        else:
            for job in pending:
                job.fail(Unavailable("service is shutting down"))
        if self._groups:
            await asyncio.gather(*tuple(self._groups),
                                 return_exceptions=True)

    async def submit(self, job: PredictJob) -> None:
        if self._stopping:
            job.fail(Unavailable("service is shutting down"))
            return
        if self._adaptive is not None:
            self._adaptive.observe_arrival(
                asyncio.get_running_loop().time()
            )
        await self._queue.put(job)

    def queued(self) -> int:
        return self._queue.qsize()

    # -- batching loop ----------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            # Backlog that built up while the previous batch dispatched
            # joins immediately — bursts coalesce even at window zero.
            while (
                len(batch) < self.config.max_batch
                and not self._queue.empty()
            ):
                batch.append(self._queue.get_nowait())
            window = self.window_s(loop.time())
            if window > 0:
                window_ends = loop.time() + window
                while len(batch) < self.config.max_batch:
                    remaining = window_ends - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(
                                self._queue.get(), timeout=remaining
                            )
                        )
                    except asyncio.TimeoutError:
                        break
            self._dispatch(batch)

    def window_s(self, now: float) -> float:
        """This batch's window (fixed, or adaptive under load), also
        published as the ``serve.coalesce.window_ms`` gauge."""
        if self._adaptive is None:
            window = self.config.window_s
        else:
            window = self._adaptive.window_s(now)
        telemetry.metrics().gauge("serve.coalesce.window_ms").set(
            round(window * 1e3, 3)
        )
        return window

    def _dispatch(self, batch: list[PredictJob]) -> None:
        """Group one window's jobs and launch an engine task per group."""
        loop = asyncio.get_event_loop()
        now = loop.time()
        groups: dict[tuple, list[PredictJob]] = {}
        for job in batch:
            if job.future.done():
                continue  # client already gone (cancelled / timed out)
            if job.deadline is not None and now >= job.deadline:
                job.fail(DeadlineExceeded(
                    f"{job.kernel.name}: deadline elapsed while queued"
                ))
                telemetry.metrics().counter(
                    "serve.deadline_exceeded"
                ).inc()
                continue
            groups.setdefault(
                (job.cpu.name, job.config), []
            ).append(job)
        reg = telemetry.metrics()
        for jobs in groups.values():
            reg.counter("serve.batches").inc()
            reg.histogram("serve.batch_width").observe(len(jobs))
            if len(jobs) > 1:
                reg.counter("serve.coalesced").inc(len(jobs) - 1)
            task = loop.create_task(self._run_group(jobs))
            self._groups.add(task)
            task.add_done_callback(self._groups.discard)

    async def _run_group(self, jobs: list[PredictJob]) -> None:
        """Evaluate one (machine, configuration) group in the engine."""
        cpu, config = jobs[0].cpu, jobs[0].config
        kernels: list[Kernel] = []
        seen: set[str] = set()
        for job in jobs:
            if job.kernel.name not in seen:
                seen.add(job.kernel.name)
                kernels.append(job.kernel)
        loop = asyncio.get_running_loop()
        try:
            caches = self.state.caches_for(cpu)
            result = await loop.run_in_executor(
                self.executor,
                lambda: run_suite(
                    cpu,
                    config,
                    kernels=kernels,
                    policy=self.config.policy,
                    retry=self.config.retry,
                    caches=caches,
                    engine=self.config.engine,
                ),
            )
        except Exception as exc:
            # Whole-group failure (corrupted machine description, an
            # ABORT policy, an engine bug): every job gets the same
            # structured fault and the breaker hears about each one.
            fault = EngineFault.from_exception(exc)
            for job in jobs:
                self._record(False)
                job.fail(fault)
            telemetry.metrics().counter("serve.engine_faults").inc(
                len(jobs)
            )
            return
        failed = result.failed_kernels()
        faults = 0
        for job in jobs:
            run = result.runs.get(job.kernel.name)
            if run is not None:
                self._record(True)
                job.resolve(run)
                continue
            self._record(False)
            faults += 1
            record = failed.get(job.kernel.name.upper())
            if record is not None:
                job.fail(EngineFault.from_failure(record))
            else:
                job.fail(EngineFault(
                    f"{job.kernel.name}: engine produced no result"
                ))
        if faults:
            telemetry.metrics().counter("serve.engine_faults").inc(faults)

    def _record(self, success: bool) -> None:
        if self.breaker is None:
            return
        if success:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()
