"""Admission control: a bounded in-flight budget with load shedding.

The service accepts at most ``max_inflight`` requests at once (queued in
the coalescer or executing in the engine). Beyond that watermark it
*sheds*: the client gets an immediate 429-style envelope with a
``Retry-After`` hint instead of queueing into a latency collapse.

Shedding early is the graceful-degradation half of the deadline story —
a request that would only time out in the queue is cheaper to reject at
the door.
"""

from __future__ import annotations

import threading

from repro.util.errors import ConfigError


class AdmissionController:
    """Thread-safe bounded in-flight counter.

    ``try_acquire``/``release`` bracket one request's residency in the
    service; a failed acquire is the signal to shed. ``retry_after_ms``
    grows with the consecutive-shed streak, so clients back off harder
    the longer the overload persists (and the hint resets as soon as a
    request is admitted again).
    """

    def __init__(
        self, max_inflight: int = 64, base_retry_after_ms: int = 100
    ) -> None:
        if max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if base_retry_after_ms < 1:
            raise ConfigError(
                f"base_retry_after_ms must be >= 1, "
                f"got {base_retry_after_ms}"
            )
        self.max_inflight = max_inflight
        self.base_retry_after_ms = base_retry_after_ms
        self._lock = threading.Lock()
        self._depth = 0
        self._shed = 0
        self._shed_streak = 0
        self._admitted = 0

    def try_acquire(self) -> bool:
        """Admit one request, or refuse at the watermark."""
        with self._lock:
            if self._depth >= self.max_inflight:
                self._shed += 1
                self._shed_streak += 1
                return False
            self._depth += 1
            self._admitted += 1
            self._shed_streak = 0
            return True

    def release(self) -> None:
        with self._lock:
            if self._depth == 0:
                raise ConfigError("release() without matching acquire")
            self._depth -= 1

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    @property
    def shed_count(self) -> int:
        with self._lock:
            return self._shed

    @property
    def admitted_count(self) -> int:
        with self._lock:
            return self._admitted

    def retry_after_ms(self) -> int:
        """Suggested client pause, scaled by the shed streak."""
        with self._lock:
            overload = 1.0 + self._shed_streak / self.max_inflight
        return int(self.base_retry_after_ms * overload)

    def idle(self) -> bool:
        return self.depth == 0
