"""Structured error envelopes for the prediction service.

Every failure a client can observe maps to one :class:`ServeError`
subclass with a stable machine-readable ``code``, an HTTP status, a
``retryable`` hint and (for backpressure responses) a ``Retry-After``
suggestion. Envelopes are the *only* error shape the service emits:
handlers convert exceptions into envelopes at the boundary, so internal
tracebacks never reach the wire.
"""

from __future__ import annotations

from typing import Any

from repro.util.errors import ReproError

#: ``code -> HTTP status`` for every envelope the service can emit.
STATUS_BY_CODE = {
    "bad_request": 400,
    "not_found": 404,
    "shed": 429,
    "engine_fault": 500,
    "unavailable": 503,
    "deadline_exceeded": 504,
}


class ServeError(ReproError):
    """Base class of every client-visible service failure.

    Attributes:
        code: Stable machine-readable error code (keys of
            :data:`STATUS_BY_CODE`).
        retryable: Whether an identical retry can succeed.
        retry_after_ms: Suggested client backoff (sent as a
            ``Retry-After`` header too); ``None`` when retrying sooner
            is fine.
        details: Extra structured context (attempt counts, fault sites);
            must already be JSON-serializable.
    """

    code = "engine_fault"
    retryable = False

    def __init__(
        self,
        message: str,
        *,
        retry_after_ms: int | None = None,
        details: dict[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms
        self.details = details

    @property
    def status(self) -> int:
        return STATUS_BY_CODE[self.code]

    def envelope(self) -> dict[str, Any]:
        """The JSON body for this error — and nothing else: no
        traceback, no internal type names beyond ``details``."""
        error: dict[str, Any] = {
            "code": self.code,
            "message": str(self),
            "retryable": self.retryable,
        }
        if self.retry_after_ms is not None:
            error["retry_after_ms"] = int(self.retry_after_ms)
        if self.details:
            error["details"] = self.details
        return {"error": error}


class BadRequest(ServeError):
    """Malformed HTTP, unparsable JSON, or invalid parameters."""

    code = "bad_request"
    retryable = False


class NotFound(ServeError):
    """Unknown route, kernel, or machine name."""

    code = "not_found"
    retryable = False


class Shed(ServeError):
    """Load-shed by admission control: the in-flight queue is over its
    watermark. Retry after the suggested pause."""

    code = "shed"
    retryable = True


class Unavailable(ServeError):
    """The service cannot take the request right now — draining for
    shutdown, or the engine circuit breaker is open."""

    code = "unavailable"
    retryable = True


class DeadlineExceeded(ServeError):
    """The request's deadline elapsed before a result was produced."""

    code = "deadline_exceeded"
    retryable = True


class EngineFault(ServeError):
    """The prediction engine failed for this request (possibly after
    retries). Carries the failure's type/attempt/site summary in
    ``details`` — never a traceback."""

    code = "engine_fault"
    retryable = True

    @classmethod
    def from_failure(cls, record) -> "EngineFault":
        """Envelope for one kernel's terminal
        :class:`~repro.resilience.retry.FailureRecord`."""
        details = {
            "error_type": record.error_type,
            "attempts": record.attempts,
        }
        if record.site is not None:
            details["fault_site"] = record.site
        return cls(
            f"{record.kernel}: {record.message}",
            details=details,
        )

    @classmethod
    def from_exception(cls, exc: BaseException) -> "EngineFault":
        details = {"error_type": type(exc).__name__, "attempts": 1}
        site = getattr(exc, "fault_site", None)
        if site is not None:
            details["fault_site"] = site
        return cls(str(exc), details=details)


def internal_error() -> EngineFault:
    """The generic envelope for an *unexpected* exception. Deliberately
    message-free: unhandled errors must not leak internals."""
    return EngineFault("internal error", details={"error_type": "internal"})
