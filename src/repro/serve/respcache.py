"""Tiered response cache: repeated predictions for one dict lookup.

The engine-side caches (compile cache, prediction memo) make a repeated
request *cheap*; this cache makes it *free*. Successful responses are
stored fully pre-serialized — body bytes plus a precomputed HTTP head —
keyed on the full identity of the request: endpoint, machine digest,
configuration digest and the kernel names. A hot-key hit costs one dict
lookup and one socket write; no JSON is rendered, no coalescing window
is waited out, no engine thread is touched, and no admission slot is
consumed.

Two tiers:

* **Memory** — an LRU dict bounded by entry count *and* total body
  bytes, so a long-lived server stays bounded no matter how diverse its
  traffic gets.
* **Disk (optional)** — the ``"responses"`` namespace of a
  :class:`repro.store.ArtifactStore`. Responses written by one process
  are readable by the next, so a restarted server answers hot keys
  sub-millisecond before the engine is even warm. All the store's
  degradation rules apply: a torn or stale artifact is a miss, never an
  error.

Correctness rules, in priority order:

1. **Byte-identical or absent.** Only deterministic 200 responses are
   cached, and only when the engine produced them first-try
   (``attempts == 1``): a response that embeds retry state would not
   match what an uncached request renders. Engine faults, shed
   responses and every other envelope are never cached.
2. **Keys are content-addressed and cross-process stable.** Digests are
   built from canonical JSON (:func:`repro.store.stable_digest` over
   sorted-key dicts), never ``hash()``, so two processes — or one
   process before and after a restart — address the same entries.
"""

from __future__ import annotations

import hashlib
import threading
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro import telemetry
from repro.machine.cpu import CPUModel
from repro.serve import http
from repro.suite.config import RunConfig
from repro.suite.memo import machine_digest
from repro.util.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import ArtifactStore

#: A response's identity: JSON-scalar/tuple parts only, so the same
#: value is both the in-memory dict key and the on-disk artifact key.
ResponseKey = tuple

#: Store namespace holding persisted responses.
RESPONSES_NAMESPACE = "responses"

#: Version of the persisted response payload shape.
RESPONSE_PAYLOAD_VERSION = 1


def config_digest(config: RunConfig) -> str:
    """Stable hex digest of everything a ``RunConfig`` pins.

    Canonical JSON over every field (enums lowered to their labels), so
    equal configurations digest equally across processes while any
    changed knob — thread count, flavor, noise — changes the key.
    """
    from repro.store import stable_digest

    return stable_digest({
        "threads": config.threads,
        "precision": config.precision.label,
        "placement": config.placement.value,
        "vectorize": config.vectorize,
        "compiler": config.compiler,
        "flavor": config.flavor.value,
        "rollback": config.rollback,
        "runs": config.runs,
        "noise_sigma": config.noise_sigma,
        "size_scale": config.size_scale,
    })


def predict_key(
    cpu: CPUModel, config: RunConfig, kernel_name: str
) -> ResponseKey:
    """The response key of one ``/predict`` request."""
    return (
        "predict",
        str(machine_digest(cpu)),
        config_digest(config),
        (kernel_name,),
    )


def sweep_key(
    cpu: CPUModel,
    kernel_names: Iterable[str],
    threads: Iterable[int],
    placements: Iterable,
    precisions: Iterable,
) -> ResponseKey:
    """The response key of one ``/sweep`` request.

    Kernel and axis order is part of the key (not sorted away): the
    response body lists points in request order, so two orderings are
    two distinct — both byte-exact — cache entries.
    """
    from repro.store import stable_digest

    axes = stable_digest({
        "threads": list(threads),
        "placements": [p.value for p in placements],
        "precisions": [p.label for p in precisions],
    })
    return (
        "sweep",
        str(machine_digest(cpu)),
        axes,
        tuple(kernel_names),
    )


def explain_key(cpu: CPUModel, kernel_name: str) -> ResponseKey:
    """The response key of one ``/explain`` request."""
    return ("explain", str(machine_digest(cpu)), "-", (kernel_name,))


def response_etag(body: bytes) -> str:
    """The strong ``ETag`` of one response body.

    A content digest, so the same body — rendered fresh, served from
    memory, or recomposed from the disk tier — always validates against
    a client's ``If-None-Match``.
    """
    return f'"{hashlib.sha256(body).hexdigest()[:16]}"'


def etag_matches(if_none_match: str | None, etag: str) -> bool:
    """Does an ``If-None-Match`` header value revalidate ``etag``?"""
    if not if_none_match or not etag:
        return False
    candidates = [v.strip() for v in if_none_match.split(",")]
    return "*" in candidates or etag in candidates


@dataclass(frozen=True)
class CachedResponse:
    """One fully pre-serialized 200 response.

    The HTTP head (status line, Content-Type, precomputed
    Content-Length, Connection) is composed once at insert time in both
    keep-alive and close variants, so serving a hit is a single
    ``writer.write(head + body)`` — no rendering on the hot path.
    """

    body: bytes
    head_keep: bytes
    head_close: bytes
    content_type: str = "application/json"
    status: int = 200
    etag: str = ""

    @classmethod
    def for_body(
        cls,
        body: bytes,
        content_type: str = "application/json",
        status: int = 200,
    ) -> "CachedResponse":
        etag = response_etag(body)
        extra = {"ETag": etag}
        return cls(
            body=body,
            head_keep=http.compose_head(
                status, len(body), content_type=content_type,
                keep_alive=True, extra_headers=extra,
            ),
            head_close=http.compose_head(
                status, len(body), content_type=content_type,
                keep_alive=False, extra_headers=extra,
            ),
            content_type=content_type,
            status=status,
            etag=etag,
        )

    def head(self, keep_alive: bool) -> bytes:
        return self.head_keep if keep_alive else self.head_close

    def __len__(self) -> int:
        return len(self.body)


@dataclass(frozen=True)
class RespCacheStats:
    """Point-in-time counters of one :class:`ResponseCache`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stores: int = 0
    evictions: int = 0
    entries: int = 0
    bytes: int = 0

    @property
    def hit_rate(self) -> float | None:
        """Combined (memory + disk) hit rate; ``None`` before any
        lookup."""
        total = self.hits + self.disk_hits + self.misses
        if not total:
            return None
        return (self.hits + self.disk_hits) / total


class ResponseCache:
    """LRU-bounded, optionally store-backed map of pre-serialized
    responses.

    Thread-safe (the serving loop is single-threaded today, but store
    I/O degradation warnings can surface from engine threads and the
    lock keeps the counters honest either way). ``max_entries=0``
    disables the cache entirely: every lookup misses, nothing is
    stored — the historical always-render behaviour.
    """

    def __init__(
        self,
        store: "ArtifactStore | None" = None,
        max_entries: int = 2048,
        max_bytes: int = 64 << 20,
    ) -> None:
        if max_entries < 0:
            raise ConfigError(
                f"max_entries must be >= 0, got {max_entries}"
            )
        if max_bytes < 1:
            raise ConfigError(f"max_bytes must be >= 1, got {max_bytes}")
        self._store = store
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: dict[ResponseKey, CachedResponse] = {}
        #: Machine digests whose persisted responses must not be
        #: served this process (see :meth:`invalidate`).
        self._invalidated: set[str] = set()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._stores = 0
        self._evictions = 0

    @property
    def enabled(self) -> bool:
        return self._max_entries > 0

    @property
    def store(self) -> "ArtifactStore | None":
        return self._store

    # -- lookups -----------------------------------------------------------

    def get(self, key: ResponseKey) -> CachedResponse | None:
        """The cached response for ``key``, or ``None``.

        Memory first (LRU touch), then the persistent tier; a disk hit
        is promoted into memory so the recompose cost is paid once per
        process.
        """
        if not self.enabled:
            return None
        reg = telemetry.metrics()
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                # LRU touch: move to the insertion-order tail.
                del self._entries[key]
                self._entries[key] = cached
                self._hits += 1
                reg.counter("serve.respcache.hits").inc()
                return cached
        cached = self._disk_get(key)
        if cached is not None:
            with self._lock:
                self._disk_hits += 1
                self._insert(key, cached)
            reg.counter("serve.respcache.disk_hits").inc()
            return cached
        with self._lock:
            self._misses += 1
        reg.counter("serve.respcache.misses").inc()
        return None

    def put(
        self,
        key: ResponseKey,
        body: bytes,
        content_type: str = "application/json",
    ) -> None:
        """Cache one successful response body (idempotent per key).

        Oversized bodies (larger than the whole byte budget) are never
        cached; everything else is written through to the persistent
        tier when one is attached.
        """
        if not self.enabled or len(body) > self._max_bytes:
            return
        cached = CachedResponse.for_body(body, content_type=content_type)
        with self._lock:
            if key in self._entries:
                return  # a concurrent waiter already stored it
            self._stores += 1
            self._insert(key, cached)
        telemetry.metrics().counter("serve.respcache.stores").inc()
        if self._store is not None:
            from repro.store import jsonable_parts

            self._store.put(
                RESPONSES_NAMESPACE,
                tuple(jsonable_parts(key)),
                {
                    "payload_version": RESPONSE_PAYLOAD_VERSION,
                    "status": cached.status,
                    "content_type": cached.content_type,
                    "body": body.decode("utf-8"),
                },
            )

    def invalidate(self, machine_digest_str: str) -> int:
        """Drop every cached response keyed on one machine digest.

        The ``POST /machines`` registration hook: the moment a machine
        document is (re-)registered, responses addressed by its digest
        are evicted from the memory tier and the digest is blocked from
        the disk tier for the rest of the process — a stale artifact
        persisted by an earlier run can never shadow the freshly
        registered machine. Returns the number of memory entries
        dropped; counted under ``serve.respcache.invalidated``.
        """
        with self._lock:
            victims = [
                key for key in self._entries
                if key[1] == machine_digest_str
            ]
            for key in victims:
                self._bytes -= len(self._entries.pop(key))
            self._invalidated.add(machine_digest_str)
        telemetry.metrics().counter(
            "serve.respcache.invalidated"
        ).inc(len(victims))
        return len(victims)

    # -- internals ---------------------------------------------------------

    def _insert(self, key: ResponseKey, cached: CachedResponse) -> None:
        # Caller holds the lock.
        entries = self._entries
        previous = entries.pop(key, None)
        if previous is not None:
            self._bytes -= len(previous)
        entries[key] = cached
        self._bytes += len(cached)
        evicted = 0
        while entries and (
            len(entries) > self._max_entries
            or self._bytes > self._max_bytes
        ):
            victim_key = next(iter(entries))
            if victim_key == key and len(entries) == 1:
                break  # never evict the entry just inserted
            self._bytes -= len(entries.pop(victim_key))
            evicted += 1
        if evicted:
            self._evictions += evicted
            telemetry.metrics().counter(
                "serve.respcache.evictions"
            ).inc(evicted)

    def _disk_get(self, key: ResponseKey) -> CachedResponse | None:
        if self._store is None:
            return None
        with self._lock:
            if len(key) > 1 and key[1] in self._invalidated:
                return None
        from repro.store import CodecError, StoreWarning, jsonable_parts

        try:
            payload = self._store.get(
                RESPONSES_NAMESPACE, tuple(jsonable_parts(key))
            )
        except CodecError:
            return None  # unstorable key shape: purely in-memory
        if payload is None:
            return None
        if payload.get("payload_version") != RESPONSE_PAYLOAD_VERSION:
            warnings.warn(
                f"stored response has payload_version "
                f"{payload.get('payload_version')!r}; this build reads "
                f"{RESPONSE_PAYLOAD_VERSION}; recomputing",
                StoreWarning, stacklevel=3,
            )
            return None
        body = payload.get("body")
        status = payload.get("status")
        content_type = payload.get("content_type")
        if (
            not isinstance(body, str)
            or status != 200
            or not isinstance(content_type, str)
        ):
            warnings.warn(
                "stored response payload is malformed; recomputing",
                StoreWarning, stacklevel=3,
            )
            return None
        return CachedResponse.for_body(
            body.encode("utf-8"), content_type=content_type
        )

    # -- reporting ---------------------------------------------------------

    def stats(self) -> RespCacheStats:
        with self._lock:
            return RespCacheStats(
                hits=self._hits,
                misses=self._misses,
                disk_hits=self._disk_hits,
                stores=self._stores,
                evictions=self._evictions,
                entries=len(self._entries),
                bytes=self._bytes,
            )

    def clear(self) -> None:
        """Drop the memory tier (disk artifacts are untouched)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
