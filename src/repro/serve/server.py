"""The fault-tolerant prediction service: ``repro.serve``.

An asyncio HTTP/JSON server (stdlib streams only) in front of the
prediction engine. Endpoints:

* ``POST /predict`` — one kernel under one configuration; concurrent
  requests are coalesced into batch engine calls.
* ``POST /sweep`` — a bounded configuration grid, returned long-format.
* ``POST /explain`` — the full model story for one kernel.
* ``GET /machines`` — every registered machine with its digest.
* ``POST /machines`` — register a user-submitted machine document
  (validated, digest-invalidated in the response cache, pre-warmed).
* ``GET /healthz`` — liveness (200 while the process runs).
* ``GET /readyz`` — readiness (503 while draining, while the engine
  circuit breaker is open, or while the startup pre-warm from a
  configured artifact store is still running).
* ``GET /metrics`` — the telemetry registry as a flat text dump.

The robustness contract (see ``docs/SERVE.md``): every request has a
deadline; overload sheds with 429 + ``Retry-After`` instead of queueing;
engine faults surface as structured error envelopes (never tracebacks)
and feed a circuit breaker; SIGTERM/SIGINT drain in-flight work before
exit; and a chaos :class:`FaultPlan` can be mounted inside the server so
all of it is provable end-to-end.
"""

from __future__ import annotations

import asyncio
import sys
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro import telemetry
from repro.kernels.registry import get_kernel
from repro.resilience import chaos
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import FailurePolicy, RetrySpec
from repro.serve import http
from repro.serve.admission import AdmissionController
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.coalescer import (
    Coalescer,
    CoalescerConfig,
    EngineState,
    PredictJob,
)
from repro.serve.errors import (
    BadRequest,
    DeadlineExceeded,
    NotFound,
    ServeError,
    Shed,
    Unavailable,
    internal_error,
)
from repro.serve.respcache import (
    CachedResponse,
    ResponseCache,
    etag_matches,
    explain_key,
    predict_key,
    response_etag,
    sweep_key,
)
from repro.serve.singleflight import Flight, SingleFlight
from repro.suite.config import Placement, Precision, RunConfig
from repro.util.errors import ConfigError, ReproError

#: Upper bound on one ``/sweep`` request's grid (points x kernels).
MAX_SWEEP_CELLS = 512


@dataclass
class ServeConfig:
    """Everything the service can be tuned with (CLI ``repro serve``)."""

    host: str = "127.0.0.1"
    port: int = 8642
    #: Admission watermark: in-flight requests beyond this are shed.
    max_inflight: int = 64
    base_retry_after_ms: int = 100
    #: Applied when a request carries no ``deadline_ms`` of its own.
    default_deadline_ms: float = 2000.0
    max_deadline_ms: float = 60_000.0
    #: Coalescing window and batch cap for ``/predict``.
    batch_window_ms: float = 2.0
    max_batch: int = 64
    #: Circuit breaker tuning.
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 1.0
    half_open_probes: int = 1
    #: Engine-side failure policy for coalesced batches.
    on_failure: str = "retry"
    retries: int = 2
    backoff_base_s: float = 0.0
    jitter: float = 1.0
    #: Worker threads running the (NumPy-heavy, GIL-releasing) engine.
    engine_workers: int = 2
    drain_timeout_s: float = 10.0
    idle_timeout_s: float = 30.0
    #: Chaos plan mounted for the server's lifetime (CI smoke tests).
    fault_plan: FaultPlan | None = None
    #: Artifact-store directory backing the engine caches (persistent
    #: compile reports + prediction pages). ``None`` keeps the caches
    #: memory-only, exactly the historical behaviour.
    store_path: str | None = None
    #: LRU entry cap on each machine's in-memory prediction memo.
    memo_cap: int | None = None
    #: With a store configured, pre-warm the engine caches from disk at
    #: startup; ``/readyz`` reports 503 until the pre-warm finishes.
    prewarm: bool = True
    #: Machines to pre-warm (catalog names).
    prewarm_cpus: tuple[str, ...] = ("sg2042",)
    #: Extra vector flavors ("vla") the pre-warm also resolves, so
    #: flavored requests hit warm compile caches / the disk tier.
    prewarm_flavors: tuple[str, ...] = ()
    #: Also pre-warm the RVV-rollback combo for each warmed flavor.
    prewarm_rollback: bool = False
    #: Response cache: entry cap (0 disables it entirely) and total
    #: body-byte budget for the in-memory tier.
    respcache_entries: int = 2048
    respcache_bytes: int = 64 << 20
    #: Adapt the coalescing window to load (``batch_window_ms`` becomes
    #: the cap; the window shrinks toward ``min_window_ms`` when idle).
    adaptive_window: bool = True
    min_window_ms: float = 0.0
    #: Extra registry roots layered over the shipped data; the server's
    #: machine map is built from the resulting registry at startup.
    registry_paths: tuple[str, ...] = ()

    def retry_spec(self) -> RetrySpec:
        return RetrySpec(
            max_retries=self.retries,
            backoff_base_s=self.backoff_base_s,
            jitter=self.jitter,
        )


@dataclass
class _RequestOutcome:
    """One handler's response triple.

    When ``cached`` is set the connection loop writes the
    pre-serialized bytes (head included) directly instead of
    re-rendering a response — ``status``/``body`` stay populated so the
    accounting and test surfaces are identical either way.
    """

    status: int
    body: bytes
    headers: dict[str, str] = field(default_factory=dict)
    content_type: str = "application/json"
    cached: CachedResponse | None = None


def _error_outcome(exc: ServeError) -> _RequestOutcome:
    headers = {}
    if exc.retry_after_ms is not None:
        # Retry-After is whole seconds in HTTP; round up so "50 ms"
        # never becomes "0".
        headers["Retry-After"] = str(max(1, -(-exc.retry_after_ms // 1000)))
    return _RequestOutcome(
        status=exc.status,
        body=http.json_body(exc.envelope()),
        headers=headers,
    )


class PredictionServer:
    """One serving process: sockets, queues, breaker, caches, drain."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.store = None
        if self.config.store_path is not None:
            from repro.store import ArtifactStore

            self.store = ArtifactStore(self.config.store_path)
        self.state = EngineState(
            store=self.store, memo_cap=self.config.memo_cap
        )
        # No store (or pre-warm disabled) means nothing to wait for:
        # the server is ready the moment the socket binds, exactly the
        # historical behaviour.
        self._prewarm_pending = (
            self.store is not None and self.config.prewarm
        )
        self._previous_store: tuple | None = None
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            base_retry_after_ms=self.config.base_retry_after_ms,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
            half_open_probes=self.config.half_open_probes,
            on_transition=self._on_breaker_transition,
        )
        self.latency = telemetry.LatencyWindow()
        self.respcache = ResponseCache(
            store=self.store,
            max_entries=self.config.respcache_entries,
            max_bytes=self.config.respcache_bytes,
        )
        self.singleflight = SingleFlight()
        # The machine map starts as the registry's view (shipped data
        # plus any --registry-path roots) and grows at runtime through
        # POST /machines registrations.
        from repro.registry import registry_with_paths

        self._cpus = registry_with_paths(
            self.config.registry_paths
        ).machines()
        self._server: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._coalescer: Coalescer | None = None
        self._draining = False
        self._started = False
        self._chaos_cm = None
        self._previous_telemetry: tuple | None = None
        self._connections: set[asyncio.Task] = set()
        self.port: int | None = None
        self.final_summary: telemetry.TelemetrySummary | None = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the batching loop."""
        if self._started:
            raise ConfigError("server already started")
        self._started = True
        self._draining = False
        # The server owns a telemetry session for its whole lifetime:
        # the metrics registry *is* the ops surface (/metrics).
        self._previous_telemetry = telemetry.install(
            telemetry.TraceRecorder(), telemetry.MetricsRegistry()
        )
        if self.config.fault_plan is not None:
            self._chaos_cm = chaos.inject_faults(self.config.fault_plan)
            self._chaos_cm.__enter__()
        # The chaos module's attempt counters are shared global state;
        # a single engine worker keeps fault injection deterministic,
        # mirroring the sweep's forced-serial rule.
        workers = (
            1 if self.config.fault_plan is not None
            else max(1, self.config.engine_workers)
        )
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._coalescer = Coalescer(
            self.state,
            self._executor,
            CoalescerConfig(
                max_batch=self.config.max_batch,
                window_s=self.config.batch_window_ms / 1000.0,
                policy=FailurePolicy.from_label(self.config.on_failure),
                retry=self.config.retry_spec(),
                adaptive=self.config.adaptive_window,
                min_window_s=self.config.min_window_ms / 1000.0,
                # If p99 climbs past a quarter of the default deadline,
                # batching delay is hurting, not helping — back off.
                guardrail_p99_s=(
                    self.config.default_deadline_ms / 1000.0 / 4.0
                ),
            ),
            breaker=self.breaker,
            latency=self.latency,
        )
        self._coalescer.start()
        if self.store is not None:
            # Route module-level artifacts (the suite SoA lowering)
            # through the server's store for the process lifetime.
            from repro.store import set_default_store

            self._previous_store = (set_default_store(self.store),)
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        reg = telemetry.metrics()
        reg.gauge("serve.breaker_state").set(self.breaker.state.code)
        reg.gauge("serve.draining").set(0)
        if self._prewarm_pending:
            reg.gauge("serve.ready").set(0)
            future = asyncio.get_running_loop().run_in_executor(
                self._executor, self._prewarm_worker
            )
            future.add_done_callback(self._prewarm_finished)
        else:
            reg.gauge("serve.ready").set(1)

    def _prewarm_worker(self) -> None:
        """Warm every configured machine's caches from the store.

        Runs on an engine worker thread before the server reports
        ready. Failure is never fatal: a machine that cannot warm is
        logged (``serve.prewarm_errors``) and the server becomes ready
        anyway — the request path recomputes on demand, bit-identically.
        """
        from repro.compiler.model import VectorFlavor
        from repro.store.warm import warm_caches

        started = time.monotonic()
        reg = telemetry.metrics()
        combos: list[tuple[VectorFlavor, bool]] | None = None
        if self.config.prewarm_flavors or self.config.prewarm_rollback:
            flavors = [VectorFlavor.VLS]
            for label in self.config.prewarm_flavors:
                try:
                    flavor = VectorFlavor(label.lower())
                except ValueError:
                    reg.counter("serve.prewarm_errors").inc()
                    warnings.warn(
                        f"prewarm: unknown vector flavor {label!r}",
                        stacklevel=2,
                    )
                    continue
                if flavor not in flavors:
                    flavors.append(flavor)
            combos = [(flavor, False) for flavor in flavors]
            if self.config.prewarm_rollback:
                combos.extend((flavor, True) for flavor in flavors)
        for name in self.config.prewarm_cpus:
            cpu = self._cpus.get(name)
            if cpu is None:
                reg.counter("serve.prewarm_errors").inc()
                warnings.warn(
                    f"prewarm: unknown machine {name!r}; known: "
                    f"{sorted(self._cpus)}",
                    stacklevel=2,
                )
                continue
            try:
                resolved = warm_caches(
                    self.state.caches_for(cpu), cpu, combos=combos
                )
                reg.counter("serve.prewarm_kernels").inc(resolved)
            except Exception as exc:
                reg.counter("serve.prewarm_errors").inc()
                warnings.warn(
                    f"prewarm failed for {name!r}: {exc} "
                    f"(serving cold; requests recompute on demand)",
                    stacklevel=2,
                )
        reg.gauge("serve.prewarm_seconds").set(
            round(time.monotonic() - started, 6)
        )

    def _prewarm_finished(self, future) -> None:
        self._prewarm_pending = False
        exc = future.exception() if not future.cancelled() else None
        if exc is not None:  # pragma: no cover - worker catches its own
            telemetry.metrics().counter("serve.prewarm_errors").inc()
        if self._started:
            telemetry.metrics().gauge("serve.ready").set(1)

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, flush in-flight batches,
        emit final telemetry. Idempotent."""
        if not self._started:
            return
        self._draining = True
        telemetry.metrics().gauge("serve.draining").set(1)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let in-flight requests finish inside the drain budget.
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout_s
        while not self.admission.idle() and loop.time() < deadline:
            await asyncio.sleep(0.01)
        if self._coalescer is not None:
            await self._coalescer.stop(drain=True)
        for task in tuple(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*tuple(self._connections),
                                 return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self._refresh_gauges()
        self.final_summary = telemetry.TelemetrySummary.capture(
            telemetry.recorder(), telemetry.metrics()
        )
        if self._chaos_cm is not None:
            self._chaos_cm.__exit__(None, None, None)
            self._chaos_cm = None
        if self._previous_telemetry is not None:
            telemetry.install(*self._previous_telemetry)
            self._previous_telemetry = None
        if self._previous_store is not None:
            from repro.store import set_default_store

            set_default_store(self._previous_store[0])
            self._previous_store = None
        self._started = False

    @property
    def draining(self) -> bool:
        return self._draining

    def _on_breaker_transition(
        self, frm: BreakerState, to: BreakerState
    ) -> None:
        reg = telemetry.metrics()
        reg.gauge("serve.breaker_state").set(to.code)
        reg.counter("serve.breaker_transitions").inc()

    def _refresh_gauges(self) -> None:
        """Publish the point-in-time gauges (queue depth, breaker state,
        latency percentiles, cache hit rate) — called on /metrics and at
        drain so exports are current."""
        reg = telemetry.metrics()
        reg.gauge("serve.queue_depth").set(self.admission.depth)
        reg.gauge("serve.breaker_state").set(self.breaker.state.code)
        reg.gauge("serve.draining").set(1 if self._draining else 0)
        p50 = self.latency.percentile(50)
        p99 = self.latency.percentile(99)
        if p50 is not None:
            reg.gauge("serve.latency_p50_ms").set(round(p50 * 1e3, 3))
        if p99 is not None:
            reg.gauge("serve.latency_p99_ms").set(round(p99 * 1e3, 3))
        hit_rate = self.state.aggregate_hit_rate()
        if hit_rate is not None:
            reg.gauge("serve.cache_hit_rate").set(round(hit_rate, 6))
        rc = self.respcache.stats()
        reg.gauge("serve.respcache.entries").set(rc.entries)
        reg.gauge("serve.respcache.bytes").set(rc.bytes)
        if rc.hit_rate is not None:
            reg.gauge("serve.respcache.hit_rate").set(
                round(rc.hit_rate, 6)
            )

    # -- connection handling ----------------------------------------------

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            await self._serve_connection(reader, writer)
        except (asyncio.CancelledError, ConnectionError):
            pass
        except Exception:
            # Connection-level surprises must never escape the task
            # (an unhandled exception here is exactly what the CI smoke
            # asserts cannot happen).
            telemetry.metrics().counter("serve.unhandled_errors").inc()
        finally:
            # Swallow CancelledError too: a drain cancels connection
            # tasks, and a task that *ends* cancelled makes asyncio's
            # streams callback re-raise into the event loop's exception
            # handler — exactly the unhandled-error noise the smoke
            # test asserts cannot happen.
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _serve_connection(self, reader, writer) -> None:
        while True:
            try:
                request = await asyncio.wait_for(
                    http.read_request(reader),
                    timeout=self.config.idle_timeout_s,
                )
            except asyncio.TimeoutError:
                return
            except BadRequest as exc:
                outcome = _error_outcome(exc)
                http.write_response(
                    writer, outcome.status, outcome.body, keep_alive=False
                )
                await writer.drain()
                return
            if request is None:
                return
            outcome = await self._dispatch(request)
            keep_alive = request.keep_alive and not self._draining
            if outcome.cached is not None:
                # Hot path: head (Content-Length precomputed) and body
                # in one write, nothing re-rendered.
                cached = outcome.cached
                writer.write(cached.head(keep_alive) + cached.body)
            else:
                http.write_response(
                    writer,
                    outcome.status,
                    outcome.body,
                    content_type=outcome.content_type,
                    keep_alive=keep_alive,
                    extra_headers=outcome.headers,
                )
            await writer.drain()
            if not keep_alive:
                return

    async def _dispatch(self, request: http.HttpRequest) -> _RequestOutcome:
        reg = telemetry.metrics()
        reg.counter("serve.requests").inc()
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            outcome = await self._route(request)
            if outcome.cached is not None:
                etag = outcome.cached.etag
            elif outcome.status == 200:
                etag = outcome.headers.get("ETag", "")
            else:
                etag = ""
            if etag_matches(
                request.headers.get("if-none-match"), etag
            ):
                # Conditional hit: the client already holds these
                # bytes — revalidate with a body-less 304.
                reg.counter("serve.respcache.not_modified").inc()
                outcome = _RequestOutcome(
                    status=304, body=b"", headers={"ETag": etag}
                )
        except ServeError as exc:
            reg.counter(f"serve.errors.{exc.code}").inc()
            outcome = _error_outcome(exc)
        except ReproError as exc:
            # Engine/config errors that slipped past a handler still
            # become structured envelopes, never tracebacks.
            reg.counter("serve.errors.engine_fault").inc()
            outcome = _error_outcome(BadRequest(str(exc)))
        except Exception:
            reg.counter("serve.unhandled_errors").inc()
            outcome = _error_outcome(internal_error())
        self.latency.observe(loop.time() - started)
        reg.counter(f"serve.responses.{outcome.status // 100}xx").inc()
        return outcome

    async def _route(self, request: http.HttpRequest) -> _RequestOutcome:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return _RequestOutcome(200, http.json_body({"status": "ok"}))
        if route == ("GET", "/readyz"):
            return self._readyz()
        if route == ("GET", "/metrics"):
            self._refresh_gauges()
            dump = telemetry.metrics().snapshot().render()
            return _RequestOutcome(
                200, dump.encode("utf-8") + b"\n",
                content_type="text/plain; charset=utf-8",
            )
        if route == ("POST", "/predict"):
            return await self._predict(request.json())
        if route == ("POST", "/sweep"):
            return await self._sweep(request.json())
        if route == ("POST", "/explain"):
            return await self._explain(request.json())
        if route == ("GET", "/machines"):
            return self._machines()
        if route == ("POST", "/machines"):
            return self._register_machine(request.json())
        if request.path in (
            "/predict", "/sweep", "/explain", "/machines", "/healthz",
            "/readyz", "/metrics",
        ):
            raise BadRequest(
                f"method {request.method} not supported on {request.path}"
            )
        raise NotFound(f"no route {request.path!r}")

    def _readyz(self) -> _RequestOutcome:
        if self._draining:
            raise Unavailable(
                "draining for shutdown",
                retry_after_ms=int(self.config.drain_timeout_s * 1000),
            )
        state = self.breaker.state
        if state is BreakerState.OPEN:
            raise Unavailable(
                "engine circuit breaker is open",
                retry_after_ms=self.breaker.retry_after_ms(),
                details={"breaker_state": state.value},
            )
        if self._prewarm_pending:
            raise Unavailable(
                "pre-warming engine caches from the artifact store",
                retry_after_ms=1000,
            )
        return _RequestOutcome(
            200,
            http.json_body(
                {"status": "ready", "breaker": state.value}
            ),
        )

    def _machines(self) -> _RequestOutcome:
        """``GET /machines``: every registered machine + its digest."""
        from repro.suite.memo import machine_digest

        payload = {
            "machines": [
                {
                    "name": name,
                    "cpu": cpu.name,
                    "digest": str(machine_digest(cpu)),
                }
                for name, cpu in sorted(self._cpus.items())
            ]
        }
        body = http.json_body(payload)
        return _RequestOutcome(
            200, body, headers={"ETag": response_etag(body)}
        )

    def _register_machine(
        self, body: dict[str, Any]
    ) -> _RequestOutcome:
        """``POST /machines``: validate + register a machine document.

        The body is a full registry envelope (``schema``/``name``/
        ``doc``). Registration is idempotent on the machine digest; a
        changed document under a known name replaces it. Every
        registration invalidates the response cache for the digests
        involved and pre-warms the new machine's engine caches in the
        background.
        """
        from repro.registry import parse_document, validate_document
        from repro.suite.memo import machine_digest

        try:
            rdoc = parse_document(
                body, source="POST /machines body", kind="machines"
            )
            cpu = validate_document(rdoc)
        except ReproError as exc:
            raise BadRequest(str(exc))
        digest = str(machine_digest(cpu))
        existing = self._cpus.get(rdoc.name)
        if (
            existing is not None
            and str(machine_digest(existing)) == digest
        ):
            payload = {
                "name": rdoc.name,
                "cpu": cpu.name,
                "digest": digest,
                "status": "unchanged",
            }
            return _RequestOutcome(200, http.json_body(payload))
        self._cpus[rdoc.name] = cpu
        invalidated = self.respcache.invalidate(digest)
        if existing is not None:
            # The name changed identity: stale responses for the old
            # document must not outlive it either.
            invalidated += self.respcache.invalidate(
                str(machine_digest(existing))
            )
        telemetry.metrics().counter("serve.machines_registered").inc()
        if self._executor is not None and not self._draining:
            asyncio.get_running_loop().run_in_executor(
                self._executor, self._warm_machine, cpu
            )
        payload = {
            "name": rdoc.name,
            "cpu": cpu.name,
            "digest": digest,
            "status": "registered",
            "invalidated_responses": invalidated,
        }
        return _RequestOutcome(201, http.json_body(payload))

    def _warm_machine(self, cpu) -> None:
        """Background pre-warm of one just-registered machine."""
        from repro.store.warm import warm_caches

        reg = telemetry.metrics()
        try:
            resolved = warm_caches(self.state.caches_for(cpu), cpu)
            reg.counter("serve.prewarm_kernels").inc(resolved)
        except Exception as exc:
            reg.counter("serve.prewarm_errors").inc()
            warnings.warn(
                f"pre-warm failed for registered machine "
                f"{cpu.name!r}: {exc} (serving cold)",
                stacklevel=2,
            )

    # -- request parsing ---------------------------------------------------

    def _resolve_cpu(self, body: dict[str, Any]):
        name = body.get("cpu", "sg2042")
        if not isinstance(name, str):
            raise BadRequest("'cpu' must be a machine name string")
        cpu = self._cpus.get(name)
        if cpu is None:
            raise NotFound(
                f"unknown machine {name!r}; known: {sorted(self._cpus)}"
            )
        return cpu

    def _resolve_kernel(self, name: Any):
        if not isinstance(name, str) or not name:
            raise BadRequest("'kernel' must be a kernel name string")
        try:
            return get_kernel(name)
        except ReproError as exc:
            raise NotFound(str(exc))

    def _resolve_config(self, body: dict[str, Any]) -> RunConfig:
        try:
            return RunConfig(
                threads=int(body.get("threads", 1)),
                placement=str(body.get("placement", "block")),
                precision=str(body.get("precision", "fp64")),
                vectorize=bool(body.get("vectorize", True)),
                compiler=body.get("compiler"),
                flavor=str(body.get("flavor", "vls")),
                rollback=bool(body.get("rollback", False)),
                # Serving is deterministic: one run, exact model output.
                runs=1,
                noise_sigma=0.0,
            )
        except (ConfigError, ValueError, TypeError) as exc:
            raise BadRequest(f"invalid configuration: {exc}")

    def _deadline_s(self, body: dict[str, Any]) -> float:
        raw = body.get("deadline_ms", self.config.default_deadline_ms)
        try:
            deadline_ms = float(raw)
        except (TypeError, ValueError):
            raise BadRequest(f"'deadline_ms' must be a number, got {raw!r}")
        if deadline_ms <= 0:
            raise BadRequest("'deadline_ms' must be positive")
        return min(deadline_ms, self.config.max_deadline_ms) / 1000.0

    def _admit(self) -> None:
        """Common gate: drain state, breaker, admission watermark."""
        if self._draining:
            raise Unavailable("draining for shutdown")
        if not self.breaker.allow():
            raise Unavailable(
                "engine circuit breaker is open",
                retry_after_ms=self.breaker.retry_after_ms(),
                details={"breaker_state": self.breaker.state.value},
            )
        if not self.admission.try_acquire():
            telemetry.metrics().counter("serve.shed").inc()
            raise Shed(
                f"service is over its in-flight watermark "
                f"({self.admission.max_inflight})",
                retry_after_ms=self.admission.retry_after_ms(),
            )
        telemetry.metrics().gauge("serve.queue_depth").set(
            self.admission.depth
        )

    # -- endpoints ---------------------------------------------------------

    async def _predict(self, body: dict[str, Any]) -> _RequestOutcome:
        kernel = self._resolve_kernel(body.get("kernel"))
        cpu = self._resolve_cpu(body)
        config = self._resolve_config(body)
        deadline_s = self._deadline_s(body)
        key = predict_key(cpu, config, kernel.name)
        cached = self.respcache.get(key)
        if cached is not None:
            # Hot path: pre-serialized bytes. No admission slot, no
            # engine work, no JSON rendering, no coalescing wait.
            return _RequestOutcome(200, cached.body, cached=cached)
        loop = asyncio.get_running_loop()
        flight, leads = self.singleflight.join(key)
        if leads:
            try:
                self._admit()
            except ServeError as exc:
                # Leader failure (shed, breaker open, drain) fans out
                # to every waiter as the same structured envelope.
                self.singleflight.abort(flight, exc)
                raise
            try:
                job = PredictJob(
                    kernel=kernel,
                    cpu=cpu,
                    config=config,
                    future=loop.create_future(),
                    deadline=loop.time() + deadline_s,
                )
                self.singleflight.launch(flight, job)
                await self._coalescer.submit(job)
                run = await self._await_flight(flight, deadline_s, kernel)
            finally:
                self.admission.release()
        else:
            # Waiter: no admission slot, no engine job — ride the
            # in-flight computation under this request's own deadline
            # (which also extends the shared job's parked expiry).
            flight.extend_deadline(loop.time() + deadline_s)
            run = await self._await_flight(flight, deadline_s, kernel)
        payload = {
            "kernel": run.kernel_name,
            "cpu": cpu.name,
            "threads": config.threads,
            "placement": config.placement.value,
            "precision": config.precision.label,
            "seconds": run.seconds,
            "serving_level": run.prediction.serving_level,
            "bound": run.prediction.bound,
            "vector_executed": run.prediction.vector_executed,
            "attempts": run.attempts,
        }
        response = http.json_body(payload)
        if run.attempts == 1:
            # First-try successes only: a retried run embeds attempt
            # state an uncached request would not reproduce byte-for-
            # byte, and faults never reach this line at all.
            self.respcache.put(key, response)
        return _RequestOutcome(
            200, response, headers={"ETag": response_etag(response)}
        )

    async def _await_flight(
        self, flight: Flight, deadline_s: float, kernel
    ):
        """Await a shared flight under *this* member's deadline.

        The shield keeps one member's timeout from cancelling the
        shared future: the job keeps running for other members (and
        warms the caches either way). The last member to give up
        cancels a still-parked job so it never consumes an engine slot.
        """
        try:
            return await asyncio.wait_for(
                asyncio.shield(flight.future), timeout=deadline_s
            )
        except asyncio.TimeoutError:
            self.singleflight.leave(flight)
            telemetry.metrics().counter("serve.deadline_exceeded").inc()
            raise DeadlineExceeded(
                f"{kernel.name}: no result within "
                f"{deadline_s * 1000:.0f} ms"
            )

    async def _sweep(self, body: dict[str, Any]) -> _RequestOutcome:
        from repro.suite.sweep import sweep

        cpu = self._resolve_cpu(body)
        kernels = [
            self._resolve_kernel(name)
            for name in self._str_list(body, "kernels", ["TRIAD"])
        ]
        try:
            threads = [int(t) for t in body.get("threads", [1])]
            placements = [
                Placement.from_label(p)
                for p in self._str_list(body, "placements", ["block"])
            ]
            precisions = [
                Precision.from_label(p)
                for p in self._str_list(body, "precisions", ["fp64"])
            ]
        except (ConfigError, ValueError, TypeError) as exc:
            raise BadRequest(f"invalid sweep axes: {exc}")
        cells = (
            len(threads) * len(placements) * len(precisions) * len(kernels)
        )
        if cells > MAX_SWEEP_CELLS:
            raise BadRequest(
                f"sweep grid has {cells} cells; the service caps at "
                f"{MAX_SWEEP_CELLS}"
            )
        deadline_s = self._deadline_s(body)
        key = sweep_key(
            cpu, [k.name for k in kernels], threads, placements,
            precisions,
        )
        cached = self.respcache.get(key)
        if cached is not None:
            return _RequestOutcome(200, cached.body, cached=cached)
        self._admit()
        loop = asyncio.get_running_loop()
        try:
            work = loop.run_in_executor(
                self._executor,
                lambda: sweep(
                    cpu, kernels, threads, placements, precisions,
                    runs=1, noise_sigma=0.0,
                    policy=FailurePolicy.from_label(self.config.on_failure),
                    retry=self.config.retry_spec(),
                    caches=self.state.caches_for(cpu),
                ),
            )
            try:
                result = await asyncio.wait_for(work, timeout=deadline_s)
            except asyncio.TimeoutError:
                telemetry.metrics().counter("serve.deadline_exceeded").inc()
                raise DeadlineExceeded(
                    f"sweep did not finish within "
                    f"{deadline_s * 1000:.0f} ms"
                )
            except ReproError as exc:
                self.breaker.record_failure()
                telemetry.metrics().counter("serve.engine_faults").inc()
                from repro.serve.errors import EngineFault

                raise EngineFault.from_exception(exc)
            self.breaker.record_success()
        finally:
            self.admission.release()
        payload = {
            "cpu": cpu.name,
            "points": [
                {
                    "kernel": p.kernel,
                    "threads": p.threads,
                    "placement": p.placement.value,
                    "precision": p.precision.label,
                    "seconds": p.seconds,
                }
                for p in result.points
            ],
            "failures": [
                {
                    "kernel": f.kernel,
                    "threads": f.threads,
                    "placement": f.placement.value,
                    "precision": f.precision.label,
                    "error_type": f.error_type,
                    "message": f.message,
                    "attempts": f.attempts,
                }
                for f in result.failures
            ],
        }
        response = http.json_body(payload)
        if not result.failures:
            # Grids with failures are never cached: a retry might
            # succeed, and failure envelopes must stay live.
            self.respcache.put(key, response)
        return _RequestOutcome(
            200, response, headers={"ETag": response_etag(response)}
        )

    async def _explain(self, body: dict[str, Any]) -> _RequestOutcome:
        from repro.suite.explain import explain_kernel

        kernel = self._resolve_kernel(body.get("kernel"))
        cpu = self._resolve_cpu(body)
        deadline_s = self._deadline_s(body)
        key = explain_key(cpu, kernel.name)
        cached = self.respcache.get(key)
        if cached is not None:
            return _RequestOutcome(200, cached.body, cached=cached)
        self._admit()
        loop = asyncio.get_running_loop()
        try:
            work = loop.run_in_executor(
                self._executor,
                lambda: explain_kernel(kernel.name, cpu),
            )
            try:
                text = await asyncio.wait_for(work, timeout=deadline_s)
            except asyncio.TimeoutError:
                telemetry.metrics().counter("serve.deadline_exceeded").inc()
                raise DeadlineExceeded(
                    f"explain did not finish within "
                    f"{deadline_s * 1000:.0f} ms"
                )
        finally:
            self.admission.release()
        response = http.json_body(
            {"kernel": kernel.name, "explanation": text}
        )
        self.respcache.put(key, response)
        return _RequestOutcome(
            200, response, headers={"ETag": response_etag(response)}
        )

    @staticmethod
    def _str_list(
        body: dict[str, Any], key: str, default: list[str]
    ) -> list[str]:
        value = body.get(key, default)
        if not isinstance(value, list) or not all(
            isinstance(v, str) for v in value
        ):
            raise BadRequest(f"{key!r} must be a list of strings")
        if not value:
            raise BadRequest(f"{key!r} must be non-empty")
        return value


async def serve_forever(config: ServeConfig | None = None) -> int:
    """Run a :class:`PredictionServer` until SIGINT/SIGTERM, then drain.

    The CLI entry point. Prints the bound address on stderr (so scripts
    and the smoke tests can discover an ephemeral port) and the final
    telemetry summary after a clean drain.
    """
    import signal

    server = PredictionServer(config)
    await server.start()
    print(
        f"serving on http://{server.config.host}:{server.port}",
        file=sys.stderr,
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            pass
    try:
        await stop.wait()
    finally:
        print("draining...", file=sys.stderr, flush=True)
        await server.drain()
        if server.final_summary is not None:
            print(server.final_summary.render(), file=sys.stderr,
                  flush=True)
        print("drain complete", file=sys.stderr, flush=True)
    return 0
