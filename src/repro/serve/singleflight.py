"""Singleflight: concurrent identical misses share one engine job.

The coalescer already dedupes identical kernels *within* one batch
window; singleflight extends the collapse *across* windows. The first
request for a key becomes the **leader**: it passes admission control,
submits the engine job, and owns the engine slot. Every concurrent
identical request that arrives while that job is in flight becomes a
**waiter**: it consumes no admission slot and submits nothing — it just
awaits the leader's future.

Rules the server relies on:

* **Waiter deadlines are independent.** Each member (leader included)
  awaits the shared future under *its own* deadline via
  ``asyncio.wait_for(asyncio.shield(...))`` — the shield means one
  member timing out returns 504 to that client only, while the shared
  job keeps running for the others (and warms the caches either way,
  the documented deadline semantics).
* **A waiter can outlive its leader.** Joining a flight extends the
  engine job's deadline to the latest member's, so a short-deadline
  leader expiring in the batch window cannot 504 a long-deadline
  waiter.
* **Leader failure propagates.** If the leader is shed or the breaker
  is open, the structured :class:`~repro.serve.errors.ServeError` is
  fanned out to every waiter — the same envelope each would have
  received had it led.
* **No result caching here.** A flight lives exactly as long as its
  engine job; the next request after completion starts a fresh flight
  (or, for successes, hits the response cache first). Faults are
  therefore shared only by *concurrent* requests, never replayed to
  later ones.
"""

from __future__ import annotations

import asyncio
from typing import Hashable

from repro import telemetry
from repro.serve.coalescer import PredictJob
from repro.serve.errors import Unavailable


def _observe(future: asyncio.Future) -> None:
    # Retrieve the exception (if any) so asyncio never logs "exception
    # was never retrieved" when every member timed out before it landed.
    if not future.cancelled():
        future.exception()


class Flight:
    """One shared in-progress computation: a future plus its engine job."""

    __slots__ = (
        "key", "future", "job", "waiters", "members", "pending_deadline",
    )

    def __init__(self, key: Hashable, future: asyncio.Future) -> None:
        self.key = key
        self.future = future
        #: The leader's coalescer job, once launched.
        self.job: PredictJob | None = None
        #: Members beyond the leader.
        self.waiters = 0
        #: Members still awaiting the result (leader included).
        self.members = 1
        #: Latest member deadline seen before the job existed.
        self.pending_deadline: float | None = None

    def extend_deadline(self, deadline: float | None) -> None:
        """Push the engine job's parked-expiry deadline out to cover a
        newly joined member."""
        if deadline is None:
            return
        job = self.job
        if job is None:
            if (
                self.pending_deadline is None
                or deadline > self.pending_deadline
            ):
                self.pending_deadline = deadline
        elif job.deadline is not None and deadline > job.deadline:
            job.deadline = deadline


class SingleFlight:
    """Registry of in-flight keys (single event-loop thread only)."""

    def __init__(self) -> None:
        self._flights: dict[Hashable, Flight] = {}

    def __len__(self) -> int:
        return len(self._flights)

    def join(self, key: Hashable) -> tuple[Flight, bool]:
        """The flight for ``key`` and whether this caller leads it.

        A completed flight is never joined — its key is stale and a
        fresh flight replaces it (results are shared through the
        response cache, not here).
        """
        flight = self._flights.get(key)
        if flight is not None and not flight.future.done():
            flight.waiters += 1
            flight.members += 1
            telemetry.metrics().counter("serve.singleflight.merged").inc()
            return flight, False
        future = asyncio.get_running_loop().create_future()
        future.add_done_callback(_observe)
        flight = Flight(key, future)
        self._flights[key] = flight
        return flight, True

    def launch(self, flight: Flight, job: PredictJob) -> None:
        """Leader attached its engine job: link outcomes and apply any
        deadline extensions that arrived before the job existed."""
        flight.job = job
        if flight.pending_deadline is not None:
            flight.extend_deadline(flight.pending_deadline)
        job.future.add_done_callback(
            lambda done: self._transfer(flight, done)
        )

    def leave(self, flight: Flight) -> None:
        """A member timed out and stopped waiting.

        When the *last* member leaves, a job that is still pending is
        cancelled: if it is parked in the coalescer it never reaches
        the engine (and never consumes an engine slot); if the engine
        already has it, the result still lands and warms the caches for
        the next caller — the documented deadline semantics.
        """
        flight.members -= 1
        if (
            flight.members <= 0
            and flight.job is not None
            and not flight.job.future.done()
        ):
            flight.job.future.cancel()

    def abort(self, flight: Flight, exc: Exception) -> None:
        """Leader failed before launching (shed, breaker open, drain):
        fan the structured error out to every member."""
        self._forget(flight)
        if not flight.future.done():
            flight.future.set_exception(exc)

    # -- internals ---------------------------------------------------------

    def _transfer(self, flight: Flight, done: asyncio.Future) -> None:
        self._forget(flight)
        target = flight.future
        if target.done():
            return
        if done.cancelled():
            target.set_exception(
                Unavailable("engine job was cancelled")
            )
            return
        exc = done.exception()
        if exc is not None:
            target.set_exception(exc)
        else:
            target.set_result(done.result())

    def _forget(self, flight: Flight) -> None:
        if self._flights.get(flight.key) is flight:
            del self._flights[flight.key]
