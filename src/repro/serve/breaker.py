"""Circuit breaker around the prediction engine.

Trips OPEN after ``failure_threshold`` *consecutive* engine faults, so a
persistently failing engine (corrupted machine description, a chaos
campaign gone hot) sheds work instantly instead of burning the executor
on doomed requests. After ``cooldown_s`` the breaker HALF-OPENs and lets
``half_open_probes`` trial requests through: one success closes it, one
failure re-opens it for another cooldown.

The clock is injectable so tests drive the timed transitions without
sleeping. Probe accounting self-heals: a probe whose outcome is never
reported (client gave up, request shed downstream) frees its slot after
another cooldown period, so an abandoned probe cannot wedge the breaker
in HALF_OPEN forever.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable

from repro.util.errors import ConfigError


class BreakerState(enum.Enum):
    CLOSED = "closed"
    HALF_OPEN = "half_open"
    OPEN = "open"

    @property
    def code(self) -> int:
        """Numeric encoding for the ``serve.breaker_state`` gauge."""
        return {"closed": 0, "half_open": 1, "open": 2}[self.value]


class CircuitBreaker:
    """Thread-safe consecutive-failure circuit breaker."""

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[BreakerState, BreakerState], None]
        | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ConfigError("cooldown_s must be positive")
        if half_open_probes < 1:
            raise ConfigError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_started = 0
        self._probes_started_at = 0.0
        self._transitions: list[tuple[str, str]] = []

    # -- state ------------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def transitions(self) -> tuple[tuple[str, str], ...]:
        """Every ``(from, to)`` transition so far, oldest first."""
        with self._lock:
            return tuple(self._transitions)

    def retry_after_ms(self) -> int:
        """Suggested client pause while not CLOSED: the remaining
        cooldown (at least 1 ms)."""
        with self._lock:
            remaining = self.cooldown_s - (self._clock() - self._opened_at)
        return max(1, int(remaining * 1000))

    def _transition(self, to: BreakerState) -> None:
        # Caller holds the lock.
        if to is self._state:
            return
        frm = self._state
        self._transitions.append((frm.value, to.value))
        self._state = to
        if self._on_transition is not None:
            self._on_transition(frm, to)

    def _maybe_half_open(self) -> None:
        # Caller holds the lock.
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._transition(BreakerState.HALF_OPEN)
            self._probes_started = 0

    # -- the request-path API ---------------------------------------------

    def allow(self) -> bool:
        """Whether one request may proceed to the engine right now.

        In HALF_OPEN this *consumes a probe slot*; the caller should
        eventually call :meth:`record_success` or
        :meth:`record_failure`. Unreported probes are reclaimed after
        ``cooldown_s``.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                return False
            now = self._clock()
            if self._probes_started >= self.half_open_probes:
                if now - self._probes_started_at < self.cooldown_s:
                    return False
                # Probe outcomes never arrived; reclaim the slots.
                self._probes_started = 0
            if self._probes_started == 0:
                self._probes_started_at = now
            self._probes_started += 1
            return True

    def record_success(self) -> None:
        with self._lock:
            self._maybe_half_open()
            self._consecutive_failures = 0
            if self._state is BreakerState.HALF_OPEN:
                self._transition(BreakerState.CLOSED)
                self._probes_started = 0

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            self._consecutive_failures += 1
            if self._state is BreakerState.HALF_OPEN:
                self._open()
            elif (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._open()

    def _open(self) -> None:
        # Caller holds the lock.
        self._transition(BreakerState.OPEN)
        self._opened_at = self._clock()
        self._probes_started = 0
        self._consecutive_failures = 0
