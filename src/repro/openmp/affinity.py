"""Thread placement policies and OMP environment parsing.

Section 3.2 of the paper evaluates three ways of pinning OpenMP threads
onto the SG2042's cores (with ``OMP_PROC_BIND=true`` so threads never
migrate):

* **block** — thread *t* on core *t* (Table 1);
* **cyclic** — threads cycle round the NUMA regions, contiguously within
  a region: 4 threads -> cores 0, 8, 32, 40; 8 threads -> 0, 8, 32, 40,
  1, 9, 33, 41 (Table 2);
* **cluster** — additionally cycle round the four-core L2 clusters inside
  each region: 8 threads -> 0, 8, 32, 40, 16, 24, 48, 56 (Table 3).

``assign_cores`` reproduces those exact sequences against the SG2042's
interleaved NUMA map.
"""

from __future__ import annotations

import enum
from functools import lru_cache

from repro.machine.topology import NumaTopology
from repro.util.errors import ConfigError


class PlacementPolicy(enum.Enum):
    """The three placements evaluated by the paper."""

    BLOCK = "block"
    CYCLIC = "cyclic"
    CLUSTER = "cluster"

    @classmethod
    def from_label(cls, label: str) -> "PlacementPolicy":
        for member in cls:
            if member.value == label.lower():
                return member
        raise ConfigError(f"unknown placement policy {label!r}")


def _region_order_contiguous(
    topo: NumaTopology, region: int
) -> list[int]:
    """Cores of a region in ascending id order (the cyclic policy's
    within-region order)."""
    return sorted(topo.numa_nodes[region])


def _region_order_cluster(topo: NumaTopology, region: int) -> list[int]:
    """Cores of a region ordered to cycle round its L2 clusters.

    The SG2042's regions consist of two non-adjacent 8-core blocks; the
    paper's example (thread 5 of 8 lands on core 16, not core 4) shows
    the runtime alternates between the blocks while cycling clusters, so
    we interleave the clusters of the two halves before round-robining.
    """
    cluster_ids = topo.clusters_in_numa(region)
    clusters = sorted(
        (sorted(topo.clusters[cid]) for cid in cluster_ids),
        key=lambda cl: cl[0],
    )
    half = (len(clusters) + 1) // 2
    lo, hi = clusters[:half], clusters[half:]
    interleaved: list[list[int]] = []
    for i in range(half):
        interleaved.append(lo[i])
        if i < len(hi):
            interleaved.append(hi[i])
    # Round-robin over clusters, contiguous within each cluster.
    order: list[int] = []
    depth = max(len(cl) for cl in interleaved)
    for d in range(depth):
        for cl in interleaved:
            if d < len(cl):
                order.append(cl[d])
    return order


def assign_cores(
    topo: NumaTopology,
    nthreads: int,
    policy: PlacementPolicy,
) -> tuple[int, ...]:
    """Map ``nthreads`` OpenMP threads onto core ids under ``policy``.

    Thread *t* runs on the *t*-th returned core. Raises
    :class:`ConfigError` when the machine has fewer cores than threads
    (the paper never oversubscribes). Placements are pure functions of
    (topology, nthreads, policy) and are memoized, so a suite asks for
    its placement once per configuration instead of once per kernel.
    """
    if nthreads < 1:
        raise ConfigError(f"need at least one thread, got {nthreads}")
    if nthreads > topo.num_cores:
        raise ConfigError(
            f"{nthreads} threads exceed {topo.num_cores} cores"
        )
    return _assign_cores_cached(topo, nthreads, policy)


@lru_cache(maxsize=4096)
def _assign_cores_cached(
    topo: NumaTopology,
    nthreads: int,
    policy: PlacementPolicy,
) -> tuple[int, ...]:
    if policy is PlacementPolicy.BLOCK:
        return tuple(range(nthreads))

    if policy is PlacementPolicy.CYCLIC:
        region_orders = [
            _region_order_contiguous(topo, r)
            for r in range(topo.num_numa_nodes)
        ]
    elif policy is PlacementPolicy.CLUSTER:
        region_orders = [
            _region_order_cluster(topo, r)
            for r in range(topo.num_numa_nodes)
        ]
    else:  # pragma: no cover - exhaustive enum
        raise ConfigError(f"unhandled policy {policy}")

    picks: list[int] = []
    cursors = [0] * len(region_orders)
    region = 0
    while len(picks) < nthreads:
        # Skip exhausted regions (possible when regions are uneven).
        for _ in range(len(region_orders)):
            order = region_orders[region % len(region_orders)]
            cursor = cursors[region % len(region_orders)]
            if cursor < len(order):
                break
            region += 1
        else:
            raise ConfigError("ran out of cores while placing threads")
        idx = region % len(region_orders)
        picks.append(region_orders[idx][cursors[idx]])
        cursors[idx] += 1
        region += 1
    return tuple(picks)


def parse_omp_proc_bind(value: str) -> bool:
    """Parse ``OMP_PROC_BIND``: the paper sets it to ``true`` so threads
    cannot migrate. Supported values: true/false/close/spread/master
    (anything but ``false`` pins threads)."""
    val = value.strip().lower()
    if val in ("true", "close", "spread", "master", "primary"):
        return True
    if val == "false":
        return False
    raise ConfigError(f"invalid OMP_PROC_BIND value {value!r}")


def parse_omp_places(value: str, topo: NumaTopology) -> list[tuple[int, ...]]:
    """Parse a subset of ``OMP_PLACES``: ``cores``, ``sockets`` (NUMA
    regions here), or an explicit place list like ``{0,8},{1,9}``.

    Returns one tuple of core ids per place.
    """
    val = value.strip().lower()
    if val == "cores" or val == "threads":
        return [(c,) for c in range(topo.num_cores)]
    if val == "sockets" or val == "numa_domains":
        return [tuple(node) for node in topo.numa_nodes]
    if val.startswith("{"):
        places: list[tuple[int, ...]] = []
        for chunk in val.split("},"):
            chunk = chunk.strip().strip("{}")
            if not chunk:
                raise ConfigError(f"empty place in OMP_PLACES {value!r}")
            try:
                cores = tuple(int(c) for c in chunk.split(","))
            except ValueError as exc:
                raise ConfigError(
                    f"invalid OMP_PLACES entry {chunk!r}"
                ) from exc
            for core in cores:
                topo.numa_of(core)  # validates existence
            places.append(cores)
        return places
    raise ConfigError(f"unsupported OMP_PLACES value {value!r}")
