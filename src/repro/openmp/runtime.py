"""Simulated OpenMP runtime objects.

:class:`OpenMPRuntime` bundles the environment a RAJAPerf run sees —
thread count, binding, placement policy — and resolves it to concrete
core assignments against a machine topology. ``barrier_cost_seconds``
re-exports the fork-join model so runtime consumers need not reach into
perfmodel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cpu import CPUModel
from repro.openmp.affinity import PlacementPolicy, assign_cores
from repro.perfmodel.threading import barrier_seconds
from repro.util.errors import ConfigError


def barrier_cost_seconds(cpu: CPUModel, nthreads: int) -> float:
    """Cost of one fork-join/barrier on ``cpu`` with ``nthreads``."""
    return barrier_seconds(cpu, nthreads)


@dataclass(frozen=True)
class OpenMPRuntime:
    """Resolved OpenMP execution environment.

    Mirrors the paper's setup: ``OMP_PROC_BIND=true`` (threads pinned for
    the whole run) and a placement policy choosing the pin targets.
    """

    nthreads: int
    policy: PlacementPolicy = PlacementPolicy.BLOCK
    proc_bind: bool = True

    def __post_init__(self) -> None:
        if self.nthreads < 1:
            raise ConfigError("nthreads must be >= 1")
        if not self.proc_bind:
            raise ConfigError(
                "the paper pins threads (OMP_PROC_BIND=true); unpinned "
                "runs are not modelled"
            )

    def placement(self, cpu: CPUModel) -> tuple[int, ...]:
        """Core ids for each thread on ``cpu``."""
        return assign_cores(cpu.topology, self.nthreads, self.policy)

    def describe(self, cpu: CPUModel) -> str:
        cores = self.placement(cpu)
        return (
            f"OMP_NUM_THREADS={self.nthreads} OMP_PROC_BIND=true "
            f"policy={self.policy.value} cores={list(cores)}"
        )
