"""OpenMP loop scheduling.

Only ``schedule(static)`` is modelled — RAJAPerf's OpenMP variants use
the default static schedule — but the chunker is a real one: it produces
the exact iteration ranges libgomp assigns, and the property tests check
coverage, disjointness and balance.
"""

from __future__ import annotations

from repro.util.errors import ConfigError


def static_chunks(n: int, nthreads: int) -> list[range]:
    """Iteration ranges of ``schedule(static)`` over ``n`` iterations.

    libgomp semantics: the first ``n % nthreads`` threads get
    ``ceil(n / nthreads)`` iterations, the rest get the floor; threads
    beyond ``n`` get empty ranges.
    """
    if n < 0:
        raise ConfigError(f"iteration count must be >= 0, got {n}")
    if nthreads < 1:
        raise ConfigError(f"nthreads must be >= 1, got {nthreads}")
    base = n // nthreads
    extra = n % nthreads
    chunks: list[range] = []
    start = 0
    for t in range(nthreads):
        size = base + (1 if t < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def chunk_of_iteration(n: int, nthreads: int, iteration: int) -> int:
    """Which thread owns ``iteration`` under ``schedule(static)``."""
    if not 0 <= iteration < n:
        raise ConfigError(f"iteration {iteration} out of range 0..{n - 1}")
    base = n // nthreads
    extra = n % nthreads
    boundary = extra * (base + 1)
    if iteration < boundary:
        return iteration // (base + 1)
    if base == 0:
        raise ConfigError("iteration beyond all non-empty chunks")
    return extra + (iteration - boundary) // base
