"""Simulated OpenMP runtime.

Provides the pieces of an OpenMP runtime the paper's experiments exercise:
``OMP_PROC_BIND``/``OMP_PLACES`` parsing, the three thread-placement
policies of Section 3.2 (block, NUMA-cyclic, cluster-aware cyclic),
static loop scheduling, and a fork-join/barrier cost model.
"""

from repro.openmp.affinity import (
    PlacementPolicy,
    assign_cores,
    parse_omp_places,
    parse_omp_proc_bind,
)
from repro.openmp.runtime import OpenMPRuntime, barrier_cost_seconds
from repro.openmp.schedule import static_chunks

__all__ = [
    "PlacementPolicy",
    "assign_cores",
    "parse_omp_places",
    "parse_omp_proc_bind",
    "OpenMPRuntime",
    "barrier_cost_seconds",
    "static_chunks",
]
