"""Pre-populate an artifact store (the ``repro warm`` core).

Warming compiles the kernel catalog once and persists every report —
plus the suite's SoA lowering — so later processes (CI jobs, ``repro
serve`` cold starts, distributed sweep shards) start near-warm from
disk. Warming is idempotent and incremental: artifacts already on disk
are restored (counted), not recompiled, so re-running ``repro warm``
after a partial run only fills the gaps.

Two entry points:

* :func:`warm_store` — standalone: builds a throwaway
  :class:`~repro.compiler.cache.CompileCache` over the store and drives
  the whole catalog through it. Used by the CLI.
* :func:`warm_caches` — in-process: warms an existing
  :class:`~repro.suite.memo.SuiteCaches` (typically a persistent one),
  so the calling process's *memory* tier ends up hot too. Used by
  ``repro serve`` start-up pre-warm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.compiler.cache import CompileCache
from repro.compiler.model import VectorFlavor
from repro.kernels.base import Kernel
from repro.kernels.registry import all_kernels
from repro.perfmodel.batch import lower_kernels, persist_lowering
from repro.suite.config import RunConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.cpu import CPUModel
    from repro.store import ArtifactStore
    from repro.suite.memo import SuiteCaches

#: The combination every default sweep/serve request compiles with.
DEFAULT_COMBOS = ((VectorFlavor.VLS, False),)


@dataclass(frozen=True)
class WarmReport:
    """What one :func:`warm_store` call did for one machine."""

    cpu: str
    kernels: int
    combos: int
    compiled: int
    restored: int
    failed: int

    def render(self) -> str:
        out = (
            f"{self.cpu}: {self.kernels} kernels x {self.combos} "
            f"combo(s): {self.compiled} compiled, "
            f"{self.restored} already on disk"
        )
        if self.failed:
            out += (
                f", {self.failed} failed to compile "
                f"(errors are never cached)"
            )
        return out


def warm_store(
    store: "ArtifactStore",
    cpu: "CPUModel",
    kernels: Sequence[Kernel] | None = None,
    *,
    combos: Iterable[tuple[VectorFlavor, bool]] = DEFAULT_COMBOS,
    compiler: str | None = None,
) -> WarmReport:
    """Persist ``cpu``'s compile reports (and the SoA lowering).

    A kernel whose compilation fails is counted in ``failed`` and left
    uncached — errors re-raise identically on every call by design, so
    a warm store never masks them.
    """
    kernel_list = list(kernels) if kernels is not None else all_kernels()
    combo_list = list(combos)
    comp = RunConfig(compiler=compiler).resolve_compiler(cpu)
    cache = CompileCache(store=store)
    failed = 0
    for flavor, rollback in combo_list:
        # analyze_suite (not analyze_many) so warming also writes the
        # whole-suite composite artifact — the single read a fresh
        # process's first grid point restores all reports from.
        reports = cache.analyze_suite(
            comp, tuple(kernel_list), cpu.core.isa,
            flavor=flavor, rollback=rollback,
        )
        failed += sum(1 for report in reports if report is None)
    stats = cache.stats
    persist_lowering(tuple(kernel_list), store)
    return WarmReport(
        cpu=cpu.name,
        kernels=len(kernel_list),
        combos=len(combo_list),
        compiled=stats.misses,
        restored=stats.disk_hits,
        failed=failed,
    )


def warm_caches(
    caches: "SuiteCaches",
    cpu: "CPUModel",
    kernels: Sequence[Kernel] | None = None,
    config: RunConfig | None = None,
    combos: Iterable[tuple[VectorFlavor, bool]] | None = None,
) -> int:
    """Warm an existing cache bundle's memory tier for ``cpu``.

    Resolves the whole kernel list through the compile cache (restoring
    from disk where the cache is persistent) and lowers the suite SoA.
    ``combos`` warms extra (flavor, rollback) combinations beyond the
    config's own — the serve pre-warm uses this so flavored requests
    also start from hot caches. Returns the number of kernels
    successfully resolved, summed over combos.
    """
    kernel_list = list(kernels) if kernels is not None else all_kernels()
    cfg = config if config is not None else RunConfig()
    comp = cfg.resolve_compiler(cpu)
    combo_list = (
        list(combos) if combos is not None
        else [(cfg.flavor, cfg.rollback)]
    )
    resolved = 0
    if caches.compile is not None:
        for flavor, rollback in combo_list:
            reports = caches.compile.analyze_suite(
                comp, tuple(kernel_list), cpu.core.isa,
                flavor=flavor, rollback=rollback,
            )
            resolved += sum(
                1 for report in reports if report is not None
            )
    lower_kernels(tuple(kernel_list))
    return resolved
