"""Content-addressed on-disk artifact store: the cold path's warm tier.

Warm sweeps are memo-bound, but every *fresh process* — a CI job, a
``repro serve`` cold start, one shard of a distributed sweep — pays the
full per-kernel ``analyze()`` and SoA-lowering cost again because those
artifacts live only in process memory. The :class:`ArtifactStore`
persists them: small JSON artifacts addressed by a stable content
digest of everything the cached value depends on (compiler identity,
kernel, target ISA, ``machine_digest(cpu)``, configuration), so a
second process finds the first one's work on disk.

Design rules, in priority order:

1. **Never change results.** Artifacts are keyed on the full identity
   of the computation; on read the stored key is compared against the
   requested one, so even a digest collision degrades to recompute.
2. **Never crash the caller.** A torn file, a schema bump, a read-only
   directory, a concurrent writer — every failure mode degrades to
   "recompute" with a :class:`StoreWarning`, exactly like a cold cache.
3. **Crash-safe writes.** Artifacts are written to a uniquely-named
   temp file, fsynced, then moved into place with :func:`os.replace`
   (the idiom proven by :mod:`repro.resilience.checkpoint`), so a kill
   mid-write leaves the old artifact (or none), never a torn one.

Concurrent writers are safe by construction: both compute the same
bytes for the same key (the cached functions are pure), and
``os.replace`` is atomic, so the losing writer merely overwrites the
winning one with identical content. Page-style artifacts (the
prediction memo's per-configuration pages) may lose entries under a
read-merge-write race — a shrunk cache, not a wrong one.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: Bump when the artifact file layout changes incompatibly. Readers
#: treat any other version as a miss (recompute), never an error.
STORE_SCHEMA_VERSION = 1

#: Namespaces the store recognises; one subdirectory per namespace.
KNOWN_NAMESPACES = ("compile", "predict", "responses", "soa", "sweep")


class StoreWarning(UserWarning):
    """A store artifact was unusable (torn, stale schema, unwritable
    directory); the operation degraded to recompute."""


def stable_digest(*parts: object) -> str:
    """Hex content digest of arbitrary JSON-able key parts.

    BLAKE2 over the canonical JSON of each part (sorted keys, no
    whitespace), field-separated — stable across processes, Python
    versions and dict orderings, unlike ``hash``.
    """
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        canonical = json.dumps(part, sort_keys=True, separators=(",", ":"))
        digest.update(canonical.encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


@dataclass(frozen=True)
class StoreStats:
    """One namespace's counters at a point in time."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0
    #: Artifacts deleted by garbage collection (``prune_store``).
    evictions: int = 0


class ArtifactStore:
    """A directory of content-addressed, versioned JSON artifacts.

    One artifact per key: ``<root>/<namespace>/<digest>.json`` holding
    ``{"schema_version", "namespace", "key", "payload"}``. The ``key``
    echo makes every artifact self-describing and turns digest
    collisions into misses instead of wrong answers.

    Thread-safe: counters are lock-protected and writes are atomic; the
    I/O itself runs outside any lock so concurrent readers never
    serialize.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._lock = threading.Lock()
        self._counts: dict[str, list[int]] = {}
        self._write_failed = False

    # -- key/path plumbing -------------------------------------------------

    def _path(self, namespace: str, key_parts: tuple) -> Path:
        return self.root / namespace / (
            stable_digest(list(key_parts)) + ".json"
        )

    @staticmethod
    def _canonical_key(key_parts: tuple) -> Any:
        """The key as it round-trips through JSON (tuples -> lists),
        so the on-disk echo compares equal to a fresh request."""
        return json.loads(json.dumps(list(key_parts)))

    def _count(self, namespace: str, slot: int, n: int = 1) -> None:
        with self._lock:
            counts = self._counts.setdefault(namespace, [0, 0, 0, 0, 0])
            counts[slot] += n

    def count_evictions(self, namespace: str, n: int = 1) -> None:
        """Record ``n`` garbage-collected artifacts (slot 4); the
        deletion itself is done by :func:`repro.store.prune_store`."""
        self._count(namespace, 4, n)

    # -- reads -------------------------------------------------------------

    def get(self, namespace: str, key_parts: tuple) -> dict | None:
        """The payload stored for ``key_parts``, or ``None``.

        Every failure mode — missing file, torn/truncated JSON, a
        different ``schema_version``, a key-echo mismatch — is a miss;
        the unusable ones additionally emit a :class:`StoreWarning`.
        """
        path = self._path(namespace, key_parts)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self._count(namespace, 1)
            return None
        except OSError as exc:
            self._warn(f"unreadable artifact {path}: {exc}")
            self._count(namespace, 3)
            return None
        try:
            record = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._warn(
                f"corrupt artifact {path} (torn write or tampering): "
                f"{exc}; recomputing"
            )
            self._count(namespace, 3)
            return None
        if not isinstance(record, dict):
            self._warn(f"artifact {path} is not an object; recomputing")
            self._count(namespace, 3)
            return None
        if record.get("schema_version") != STORE_SCHEMA_VERSION:
            self._warn(
                f"artifact {path} has schema_version "
                f"{record.get('schema_version')!r}; this build reads "
                f"{STORE_SCHEMA_VERSION}; recomputing"
            )
            self._count(namespace, 3)
            return None
        if record.get("key") != self._canonical_key(key_parts):
            self._warn(
                f"artifact {path} key echo does not match the request "
                f"(digest collision?); recomputing"
            )
            self._count(namespace, 3)
            return None
        payload = record.get("payload")
        if not isinstance(payload, dict):
            self._warn(f"artifact {path} has no payload; recomputing")
            self._count(namespace, 3)
            return None
        self._count(namespace, 0)
        return payload

    # -- writes ------------------------------------------------------------

    def put(self, namespace: str, key_parts: tuple,
            payload: dict) -> bool:
        """Persist ``payload`` under ``key_parts``, atomically.

        Returns ``False`` (after warning once per store) when the
        directory is unwritable — a read-only store serves reads
        forever and silently refuses writes, it never raises.
        """
        path = self._path(namespace, key_parts)
        record = {
            "schema_version": STORE_SCHEMA_VERSION,
            "namespace": namespace,
            "key": self._canonical_key(key_parts),
            "payload": payload,
        }
        # Unique temp name per writer: two processes warming the same
        # store must not scribble on one temp file.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("w", encoding="utf-8") as fh:
                json.dump(record, fh, separators=(",", ":"))
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            with self._lock:
                already = self._write_failed
                self._write_failed = True
            if not already:
                self._warn(
                    f"store {self.root} is not writable ({exc}); "
                    f"continuing without persisting artifacts"
                )
            self._count(namespace, 3)
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        self._count(namespace, 2)
        return True

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict[str, StoreStats]:
        """``{namespace: StoreStats}`` for every namespace touched."""
        with self._lock:
            return {
                namespace: StoreStats(
                    hits=c[0], misses=c[1], puts=c[2], errors=c[3],
                    evictions=c[4],
                )
                for namespace, c in sorted(self._counts.items())
            }

    def artifact_count(self, namespace: str | None = None) -> int:
        """Artifacts currently on disk (one namespace, or all)."""
        namespaces = (
            (namespace,) if namespace is not None else KNOWN_NAMESPACES
        )
        total = 0
        for ns in namespaces:
            directory = self.root / ns
            if directory.is_dir():
                total += sum(
                    1 for p in directory.iterdir()
                    if p.suffix == ".json"
                )
        return total

    @staticmethod
    def _warn(message: str) -> None:
        warnings.warn(message, StoreWarning, stacklevel=3)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r})"
