"""``repro.store`` — persistent artifacts for the cold path.

The package persists the artifact kinds a fresh process otherwise
recomputes from scratch — compilation reports, lowered-kernel SoA
arrays, prediction pages, and whole-sweep results — in a
content-addressed, versioned, crash-safe on-disk
:class:`ArtifactStore`. The cache layers
(:class:`repro.compiler.cache.CompileCache`,
:class:`repro.suite.memo.PredictionMemo`) accept a store as an optional
disk tier; :func:`repro.suite.memo.SuiteCaches.persistent` bundles
them; ``repro warm`` pre-populates a store for a whole catalog, and
``repro serve`` pre-warms from one before reporting ready.

A process-wide *default store* hook exists for the one cache that is
module-level rather than object-level (the batch engine's
``lower_kernels`` LRU): installing a default store gives that cache a
disk tier too. Everything else takes its store explicitly.
"""

from __future__ import annotations

import threading

from repro.store.artifact import (
    KNOWN_NAMESPACES,
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    StoreStats,
    StoreWarning,
    stable_digest,
)
from repro.store.codecs import PAYLOAD_VERSION, CodecError, jsonable_parts
from repro.store.prune import NamespacePrune, PruneReport, prune_store

__all__ = [
    "ArtifactStore",
    "NamespacePrune",
    "PruneReport",
    "StoreStats",
    "StoreWarning",
    "CodecError",
    "STORE_SCHEMA_VERSION",
    "PAYLOAD_VERSION",
    "KNOWN_NAMESPACES",
    "prune_store",
    "stable_digest",
    "jsonable_parts",
    "default_store",
    "set_default_store",
]

_default_lock = threading.Lock()
_default_store: ArtifactStore | None = None


def set_default_store(store: ArtifactStore | None) -> ArtifactStore | None:
    """Install (or clear) the process-wide default store.

    Returns the previously installed store so scopes can restore it.
    Only module-level caches (the SoA lowering LRU) consult the
    default; the per-object cache layers take their store explicitly,
    so tests and libraries are unaffected unless they opt in.
    """
    global _default_store
    with _default_lock:
        previous = _default_store
        _default_store = store
    return previous


def default_store() -> ArtifactStore | None:
    """The process-wide default store, or ``None``."""
    return _default_store
