"""Garbage collection for long-lived artifact stores.

A store directory shared by CI jobs, serve instances and sweep shards
grows without bound: every new machine, flavor combo or response key
adds artifacts, and nothing ever deleted them. :func:`prune_store`
bounds it two ways, composable in one pass:

* **Age** (``max_age_s``): artifacts whose mtime is older than the
  horizon are deleted — stale machines and one-off configurations
  drain out on their own.
* **Size** (``max_bytes``): if the surviving artifacts still exceed the
  cap, the oldest are deleted globally (across namespaces) until the
  store fits — an LRU-by-mtime policy, since every read is a plain
  ``open`` and POSIX mtime tracks writes.

Deleting an artifact is always safe: the store's contract is that a
missing artifact is a miss, never an error, so a prune racing a reader
just costs that reader a recompute. Orphaned ``*.tmp`` files older than
a grace period (killed writers) are removed unconditionally.

``dry_run=True`` reports what *would* be deleted without touching the
directory or the eviction counters.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.store.artifact import (
    KNOWN_NAMESPACES,
    ArtifactStore,
    StoreWarning,
)
from repro.util.errors import ConfigError

#: Temp files younger than this may belong to a live writer; leave them.
TMP_GRACE_S = 600.0


@dataclass(frozen=True)
class NamespacePrune:
    """What one prune pass did inside one namespace."""

    namespace: str
    scanned: int
    deleted: int
    bytes_freed: int
    bytes_kept: int


@dataclass(frozen=True)
class PruneReport:
    """One :func:`prune_store` pass, namespace-by-namespace."""

    root: str
    dry_run: bool
    scanned: int
    deleted: int
    bytes_before: int
    bytes_after: int
    tmp_removed: int
    namespaces: tuple[NamespacePrune, ...]

    def render(self) -> str:
        verb = "would delete" if self.dry_run else "deleted"
        lines = [
            f"{self.root}: {verb} {self.deleted}/{self.scanned} "
            f"artifact(s), {self.bytes_before - self.bytes_after} of "
            f"{self.bytes_before} bytes"
            + (f", {self.tmp_removed} orphaned temp file(s)"
               if self.tmp_removed else "")
        ]
        for ns in self.namespaces:
            if not ns.scanned:
                continue
            lines.append(
                f"  {ns.namespace}: {verb} {ns.deleted}/{ns.scanned}, "
                f"{ns.bytes_kept} bytes kept"
            )
        return "\n".join(lines)


def prune_store(
    store: ArtifactStore,
    *,
    max_bytes: int | None = None,
    max_age_s: float | None = None,
    namespaces: tuple[str, ...] | None = None,
    dry_run: bool = False,
    now: float | None = None,
) -> PruneReport:
    """Garbage-collect ``store``; returns what was (or would be) done.

    At least one of ``max_bytes`` / ``max_age_s`` must be given. The
    size cap applies across the selected namespaces as a whole, oldest
    artifacts first. Deletions are counted on the store's per-namespace
    :class:`~repro.store.StoreStats` eviction counters (not in dry-run
    mode); a file that vanishes or refuses deletion mid-pass is warned
    about and skipped, never fatal.
    """
    if max_bytes is None and max_age_s is None:
        raise ConfigError(
            "prune_store needs max_bytes and/or max_age_s "
            "(otherwise there is nothing to enforce)"
        )
    if max_bytes is not None and max_bytes < 0:
        raise ConfigError(f"max_bytes must be >= 0, got {max_bytes}")
    if max_age_s is not None and max_age_s < 0:
        raise ConfigError(f"max_age_s must be >= 0, got {max_age_s}")
    selected = namespaces if namespaces is not None else KNOWN_NAMESPACES
    for ns in selected:
        if "/" in ns or ns in ("", ".", ".."):
            raise ConfigError(f"invalid namespace {ns!r}")
    if now is None:
        now = time.time()

    # Inventory: (mtime, size, path, namespace) per artifact.
    entries: list[tuple[float, int, Path, str]] = []
    tmp_removed = 0
    for ns in selected:
        directory = store.root / ns
        if not directory.is_dir():
            continue
        for path in directory.iterdir():
            try:
                stat = path.stat()
            except OSError:
                continue  # vanished mid-scan: someone else's prune
            if path.name.endswith(".tmp"):
                if now - stat.st_mtime > TMP_GRACE_S:
                    tmp_removed += 1
                    if not dry_run:
                        _unlink(path)
                continue
            if path.suffix != ".json":
                continue
            entries.append((stat.st_mtime, stat.st_size, path, ns))

    bytes_before = sum(size for _, size, _, _ in entries)
    doomed: list[tuple[float, int, Path, str]] = []
    survivors: list[tuple[float, int, Path, str]] = []
    if max_age_s is not None:
        horizon = now - max_age_s
        for entry in entries:
            (doomed if entry[0] < horizon else survivors).append(entry)
    else:
        survivors = list(entries)
    if max_bytes is not None:
        survivors.sort()  # oldest mtime first
        excess = sum(size for _, size, _, _ in survivors) - max_bytes
        while excess > 0 and survivors:
            entry = survivors.pop(0)
            doomed.append(entry)
            excess -= entry[1]

    per_ns: dict[str, list[int]] = {
        ns: [0, 0, 0] for ns in selected  # scanned, deleted, freed
    }
    for _, size, _, ns in entries:
        per_ns[ns][0] += 1
    deleted_bytes = 0
    deleted = 0
    for _, size, path, ns in doomed:
        if not dry_run and not _unlink(path):
            continue
        deleted += 1
        deleted_bytes += size
        per_ns[ns][1] += 1
        per_ns[ns][2] += size
        if not dry_run:
            store.count_evictions(ns)

    kept_bytes: dict[str, int] = {ns: 0 for ns in selected}
    for _, size, _, ns in survivors:
        kept_bytes[ns] += size
    return PruneReport(
        root=str(store.root),
        dry_run=dry_run,
        scanned=len(entries),
        deleted=deleted,
        bytes_before=bytes_before,
        bytes_after=bytes_before - deleted_bytes,
        tmp_removed=tmp_removed,
        namespaces=tuple(
            NamespacePrune(
                namespace=ns,
                scanned=per_ns[ns][0],
                deleted=per_ns[ns][1],
                bytes_freed=per_ns[ns][2],
                bytes_kept=kept_bytes[ns],
            )
            for ns in selected
        ),
    )


def _unlink(path: Path) -> bool:
    try:
        path.unlink()
    except FileNotFoundError:
        return False  # a concurrent prune got there first
    except OSError as exc:
        warnings.warn(
            f"prune could not delete {path}: {exc}; skipping",
            StoreWarning, stacklevel=2,
        )
        return False
    return True
