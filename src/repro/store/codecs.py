"""Bit-exact JSON codecs for the artifacts the store persists.

Four artifact kinds:

* ``compile`` — a :class:`VectorizationReport` (the result of
  :func:`repro.compiler.vectorizer.analyze`);
* ``predict`` — a page of :class:`ExecutionResult` predictions for one
  memo-key prefix (one configuration);
* ``soa`` — a :class:`~repro.perfmodel.batch.KernelSoA` lowering of a
  kernel tuple;
* ``sweep`` — a completed (failure-free) sweep's full point list, the
  whole-grid warm tier a second process restores in one read.

Bit-identity matters more than compactness here: every float travels
through ``json`` as its ``repr``, which Python guarantees to round-trip
finite doubles exactly, so a decoded artifact equals the recomputed
value field for field — the property the store's never-change-results
rule rests on (and the round-trip tests pin).

Decoders are defensive: any malformed payload raises
:class:`CodecError`, which the cache layers translate into a
recompute-with-warning, never a crash.
"""

from __future__ import annotations

import enum
import math
from typing import Any

from repro.compiler.model import VectorFlavor
from repro.compiler.vectorizer import VectorizationReport
from repro.perfmodel.execution import ExecutionResult
from repro.util.errors import ReproError

#: Bump when a codec's payload shape changes incompatibly (independent
#: of the file-level ``STORE_SCHEMA_VERSION``: one covers the envelope,
#: this covers the values inside it).
PAYLOAD_VERSION = 1


class CodecError(ReproError):
    """A store payload did not decode into a valid artifact."""


def jsonable_parts(parts: tuple) -> list:
    """Lower arbitrary cache-key parts to canonical JSON-able values.

    Enums become ``[ClassName, value]`` pairs (class-qualified so two
    enums sharing a value can never collide), tuples become lists
    (recursively); ints, floats, strings, bools and ``None`` pass
    through. Anything else is a programming error — keys must be built
    from these types only, or they would not be stable across
    processes.
    """
    out: list = []
    for part in parts:
        if isinstance(part, enum.Enum):
            out.append([type(part).__name__, part.value])
        elif isinstance(part, tuple):
            out.append(jsonable_parts(part))
        elif part is None or isinstance(part, (bool, int, float, str)):
            out.append(part)
        else:
            raise CodecError(
                f"cache key part {part!r} ({type(part).__name__}) is "
                f"not storable; keys must be built from enums, tuples "
                f"and JSON scalars"
            )
    return out


# -- VectorizationReport -------------------------------------------------


def encode_report(report: VectorizationReport) -> dict:
    return {
        "payload_version": PAYLOAD_VERSION,
        "vectorized": report.vectorized,
        "vector_path_executed": report.vector_path_executed,
        "flavor": report.flavor.value if report.flavor else None,
        "efficiency": report.efficiency,
        "reason": report.reason,
    }


def decode_report(payload: dict) -> VectorizationReport:
    _require_version(payload, "compile report")
    try:
        flavor = payload["flavor"]
        report = VectorizationReport(
            vectorized=bool(payload["vectorized"]),
            vector_path_executed=bool(payload["vector_path_executed"]),
            flavor=VectorFlavor(flavor) if flavor is not None else None,
            efficiency=_finite_float(payload["efficiency"], "efficiency"),
            reason=str(payload["reason"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed compile report payload: {exc}")
    return report


# -- ExecutionResult -----------------------------------------------------


def encode_result(result: ExecutionResult) -> dict:
    return {
        "seconds": result.seconds,
        "seconds_per_rep": result.seconds_per_rep,
        "serving_level": result.serving_level,
        "bound": result.bound,
        "vector_executed": result.vector_executed,
    }


def decode_result(payload: dict) -> ExecutionResult:
    # Hot path: page restores decode one of these per prediction, so
    # floats skip the coercion helper when ``json`` already produced
    # them (finiteness/positivity is still enforced — ``__post_init__``
    # re-validates every constructed result).
    try:
        seconds = payload["seconds"]
        if type(seconds) is not float:
            seconds = _finite_float(seconds, "seconds")
        per_rep = payload["seconds_per_rep"]
        if type(per_rep) is not float:
            per_rep = _finite_float(per_rep, "seconds_per_rep")
        return ExecutionResult(
            seconds,
            per_rep,
            str(payload["serving_level"]),
            str(payload["bound"]),
            bool(payload["vector_executed"]),
        )
    except (KeyError, TypeError, ValueError, ReproError) as exc:
        raise CodecError(f"malformed prediction payload: {exc}")


# -- prediction pages ----------------------------------------------------


def encode_prediction_page(
    entries: dict[str, ExecutionResult],
) -> dict:
    """One configuration's predictions, keyed ``"KERNEL|size"``."""
    return {
        "payload_version": PAYLOAD_VERSION,
        "entries": {
            slot: encode_result(result)
            for slot, result in sorted(entries.items())
        },
    }


def decode_prediction_page(payload: dict) -> dict[str, ExecutionResult]:
    _require_version(payload, "prediction page")
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        raise CodecError("prediction page has no entries object")
    return {
        str(slot): decode_result(raw) for slot, raw in entries.items()
    }


def page_slot(kernel_name: str, size: int) -> str:
    """The page key of one prediction within its configuration page."""
    return f"{kernel_name}|{int(size)}"


# -- whole-sweep results -------------------------------------------------


def encode_sweep_points(points) -> dict:
    """One completed sweep's rows — ``[threads, placement, precision,
    kernel, seconds]`` — with the CPU name hoisted (a sweep runs one
    machine, so every row shares it)."""
    return {
        "payload_version": PAYLOAD_VERSION,
        "cpu": points[0].cpu,
        "points": [
            [p.threads, p.placement.value, p.precision.label, p.kernel,
             p.seconds]
            for p in points
        ],
    }


def decode_sweep_points(payload: dict, cpu_name: str, expected: int):
    """Rebuild a stored sweep's point tuple.

    ``expected`` is the requested grid's exact point count (axes x
    kernels); a failure-free sweep always yields it, so any other
    length means the artifact does not describe this request.
    """
    from repro.suite.config import Placement, Precision
    from repro.suite.sweep import SweepPoint

    _require_version(payload, "sweep result")
    if payload.get("cpu") != cpu_name:
        raise CodecError("sweep payload cpu does not match the request")
    rows = payload.get("points")
    if not isinstance(rows, list) or len(rows) != expected:
        found = len(rows) if isinstance(rows, list) else "no"
        raise CodecError(
            f"sweep payload holds {found} point(s); "
            f"this grid needs {expected}"
        )
    placements = {p.value: p for p in Placement}
    precisions = {p.label: p for p in Precision}
    out = []
    append = out.append
    try:
        for threads, placement, precision, kernel, seconds in rows:
            if type(seconds) is not float or not math.isfinite(seconds):
                seconds = _finite_float(seconds, "seconds")
            append(SweepPoint(
                cpu_name, int(threads), placements[placement],
                precisions[precision], str(kernel), seconds,
            ))
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed sweep payload: {exc}")
    return tuple(out)


# -- KernelSoA -----------------------------------------------------------


def encode_soa(soa) -> dict:
    """Lower a :class:`~repro.perfmodel.batch.KernelSoA` to arrays of
    JSON scalars (bools stay bools, floats stay exact via repr)."""
    return {
        "payload_version": PAYLOAD_VERSION,
        "kernels": [k.name for k in soa.kernels],
        "arrays": {
            name: [
                bool(v) if name == "gather" else float(v)
                for v in getattr(soa, name)
            ]
            for name in SOA_ARRAY_FIELDS
        },
    }


#: The array fields of ``KernelSoA`` in declaration order.
SOA_ARRAY_FIELDS = (
    "flops_per_iter", "reads_per_iter", "writes_per_iter",
    "footprint_elems", "traffic_scale", "parallel_fraction",
    "regions_per_rep", "reps", "gather", "default_sizes",
)


def decode_soa(payload: dict, kernels: tuple):
    """Rebuild a ``KernelSoA`` for ``kernels`` from a stored payload.

    The caller supplies the live kernel objects (registry singletons);
    the payload supplies the arrays. Name order must match exactly —
    a reordered or renamed catalog is a :class:`CodecError` (and the
    key digest would normally have changed anyway).
    """
    from repro.perfmodel.batch import KernelSoA, _frozen

    _require_version(payload, "SoA lowering")
    names = payload.get("kernels")
    if names != [k.name for k in kernels]:
        raise CodecError("SoA payload kernel names do not match request")
    arrays = payload.get("arrays")
    if not isinstance(arrays, dict):
        raise CodecError("SoA payload has no arrays object")
    decoded: dict[str, Any] = {}
    for name in SOA_ARRAY_FIELDS:
        values = arrays.get(name)
        if not isinstance(values, list) or len(values) != len(kernels):
            raise CodecError(f"SoA array {name!r} is missing or mis-sized")
        if name == "gather":
            decoded[name] = _frozen([bool(v) for v in values], dtype=bool)
        else:
            decoded[name] = _frozen(
                [_finite_float(v, name) for v in values]
            )
    return KernelSoA(kernels=kernels, **decoded)


# -- shared helpers ------------------------------------------------------


def _finite_float(value: Any, field: str) -> float:
    try:
        out = float(value)
    except (TypeError, ValueError) as exc:
        raise CodecError(f"{field} is not a number: {exc}")
    if not math.isfinite(out):
        raise CodecError(f"{field} is not finite ({out})")
    return out


def _require_version(payload: dict, kind: str) -> None:
    if payload.get("payload_version") != PAYLOAD_VERSION:
        raise CodecError(
            f"{kind} payload has version "
            f"{payload.get('payload_version')!r}; this build reads "
            f"{PAYLOAD_VERSION}"
        )
