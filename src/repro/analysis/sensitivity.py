"""Parameter sensitivity: which hardware knob matters most?

The paper's conclusion lists the improvements it *expects* would close
the gap with x86 (FP64 vectors, wider registers, more L1, more memory
controllers per NUMA region). This module quantifies that intuition:
perturb one machine parameter at a time by a fixed relative amount and
report the relative change in predicted whole-suite time — an elasticity
per knob.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.machine.cache import CacheHierarchy
from repro.machine.cpu import CPUModel
from repro.suite.config import RunConfig
from repro.suite.runner import run_suite
from repro.util.errors import ConfigError

#: Relative parameter bump applied by default (+25%).
DEFAULT_BUMP = 0.25


def _scale_clock(cpu: CPUModel, factor: float) -> CPUModel:
    return replace(
        cpu, core=replace(cpu.core, clock_hz=cpu.core.clock_hz * factor)
    )


def _scale_dram_bandwidth(cpu: CPUModel, factor: float) -> CPUModel:
    mem = cpu.memory
    return replace(
        cpu,
        memory=replace(
            mem,
            channel_bandwidth_bytes=mem.channel_bandwidth_bytes * factor,
            per_core_bandwidth_bytes=mem.per_core_bandwidth_bytes * factor,
        ),
    )


def _scale_llc_capacity(cpu: CPUModel, factor: float) -> CPUModel:
    levels = list(cpu.caches.levels)
    llc = levels[-1]
    new_capacity = int(llc.capacity_bytes * factor)
    # Keep the capacity a valid multiple of line * associativity.
    quantum = llc.line_bytes * llc.associativity
    new_capacity = max(quantum, (new_capacity // quantum) * quantum)
    levels[-1] = replace(llc, capacity_bytes=new_capacity)
    return replace(cpu, caches=CacheHierarchy(levels=tuple(levels)))


def _scale_cache_bandwidth(cpu: CPUModel, factor: float) -> CPUModel:
    levels = [
        replace(
            lvl,
            bandwidth_bytes_per_cycle=lvl.bandwidth_bytes_per_cycle
            * factor,
            aggregate_bandwidth_bytes_per_cycle=(
                None
                if lvl.aggregate_bandwidth_bytes_per_cycle is None
                else lvl.aggregate_bandwidth_bytes_per_cycle * factor
            ),
        )
        for lvl in cpu.caches.levels
    ]
    return replace(cpu, caches=CacheHierarchy(levels=tuple(levels)))


def _scale_fork_join(cpu: CPUModel, factor: float) -> CPUModel:
    return replace(cpu, fork_join_ns=cpu.fork_join_ns * factor)


#: The tunable knobs, in report order.
KNOBS: dict[str, Callable[[CPUModel, float], CPUModel]] = {
    "core clock": _scale_clock,
    "DRAM bandwidth": _scale_dram_bandwidth,
    "last-level cache capacity": _scale_llc_capacity,
    "cache bandwidth": _scale_cache_bandwidth,
    "fork-join cost": _scale_fork_join,
}


@dataclass(frozen=True)
class Sensitivity:
    """Elasticity of suite time to one parameter.

    ``elasticity`` = (relative time change) / (relative parameter
    change); −1.0 means a 25% faster clock gives 25% less time
    (perfectly clock-bound), 0 means the knob is irrelevant at this
    configuration. Positive values appear for cost knobs (fork-join).
    """

    knob: str
    baseline_seconds: float
    bumped_seconds: float
    bump: float

    @property
    def elasticity(self) -> float:
        rel_change = (
            self.bumped_seconds - self.baseline_seconds
        ) / self.baseline_seconds
        return rel_change / self.bump


def sensitivities(
    cpu: CPUModel,
    config: RunConfig,
    bump: float = DEFAULT_BUMP,
) -> list[Sensitivity]:
    """Compute the elasticity of total suite time to each knob."""
    if bump <= 0:
        raise ConfigError("bump must be positive")
    baseline = run_suite(cpu, config).total_seconds()
    out = []
    for knob, mutate in KNOBS.items():
        bumped_cpu = mutate(cpu, 1.0 + bump)
        bumped = run_suite(bumped_cpu, config).total_seconds()
        out.append(
            Sensitivity(
                knob=knob,
                baseline_seconds=baseline,
                bumped_seconds=bumped,
                bump=bump,
            )
        )
    return out


def render_sensitivities(
    cpu: CPUModel, config: RunConfig, bump: float = DEFAULT_BUMP
) -> str:
    """Table rendering for the CLI."""
    from repro.util.tables import render_table

    results = sensitivities(cpu, config, bump)
    rows = [
        (
            s.knob,
            f"{s.elasticity:+.3f}",
            f"{(s.bumped_seconds / s.baseline_seconds - 1) * 100:+.1f}%",
        )
        for s in sorted(results, key=lambda s: s.elasticity)
    ]
    return render_table(
        ("knob (+{:.0%})".format(bump), "elasticity", "suite time"),
        rows,
        title=(
            f"{cpu.name}: parameter sensitivity at "
            f"{config.threads} thread(s), {config.precision.label}"
        ),
    )
