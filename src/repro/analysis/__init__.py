"""Performance analysis on top of the machine and kernel models.

Provides the classic analysis artifacts a performance engineer builds
from exactly the data this reproduction models:

* :mod:`repro.analysis.roofline` — roofline model: per-machine compute
  and bandwidth ceilings, per-kernel operational intensity, bound
  classification and attainable-performance predictions;
* :mod:`repro.analysis.bottleneck` — per-kernel bottleneck attribution
  for a full suite run (which resource limits each kernel at a given
  configuration, and what speedup removing it would buy).
"""

from repro.analysis.bottleneck import BottleneckReport, attribute_bottlenecks
from repro.analysis.roofline import (
    KernelPoint,
    Roofline,
    build_roofline,
    classify_kernels,
)

__all__ = [
    "Roofline",
    "KernelPoint",
    "build_roofline",
    "classify_kernels",
    "attribute_bottlenecks",
    "BottleneckReport",
]
