"""Bottleneck attribution for a suite configuration.

For each kernel at a given (machine, config) point, report which
resource bounds it — core pipeline, a cache level's bandwidth, DRAM, the
serial fraction, or fork-join overhead — and estimate the speedup from
relaxing that single resource. This is the analysis behind the paper's
hardware wishlist (Section 4): it quantifies where the SG2042's time
actually goes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.vectorizer import analyze
from repro.kernels.base import Kernel
from repro.machine.cpu import CPUModel
from repro.openmp.affinity import assign_cores
from repro.perfmodel.execution import execution_dtype, simulate_kernel
from repro.perfmodel.memory import memory_time_per_iter
from repro.perfmodel.pipeline import pipeline_time_per_iter
from repro.perfmodel.threading import barrier_seconds
from repro.suite.config import RunConfig
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class BottleneckReport:
    """Where one kernel's time goes at one configuration.

    Attributes:
        kernel: Kernel name.
        bound: Dominant resource: ``"pipeline"``, ``"L1D"``/``"L2"``/
            ``"L3"`` (cache bandwidth), ``"DRAM"``, ``"serial"`` or
            ``"overhead"``.
        parallel_share: Fraction of the repetition spent in the parallel
            chunk.
        serial_share: Fraction spent in the Amdahl serial part.
        overhead_share: Fraction spent in fork-join/barriers.
        balance: pipeline-time / memory-time ratio for the slowest
            thread (>1 = compute heavy).
    """

    kernel: str
    bound: str
    parallel_share: float
    serial_share: float
    overhead_share: float
    balance: float

    def __post_init__(self) -> None:
        total = self.parallel_share + self.serial_share + self.overhead_share
        if not 0.99 <= total <= 1.01:
            raise ConfigError(
                f"{self.kernel}: shares must sum to 1, got {total}"
            )


def attribute_bottlenecks(
    cpu: CPUModel,
    config: RunConfig,
    kernels: list[Kernel],
) -> list[BottleneckReport]:
    """Attribute each kernel's predicted time to resources."""
    if not kernels:
        raise ConfigError("kernel list is empty")
    compiler = config.resolve_compiler(cpu)
    cores = assign_cores(cpu.topology, config.threads, config.placement)

    reports = []
    for kernel in kernels:
        if config.vectorize:
            vec = analyze(
                compiler, kernel, cpu.core.isa,
                flavor=config.flavor, rollback=config.rollback,
            )
        else:
            from repro.compiler.vectorizer import VectorizationReport

            vec = VectorizationReport(
                vectorized=False, vector_path_executed=False,
                flavor=None, efficiency=1.0, reason="disabled",
            )
        result = simulate_kernel(
            kernel, cpu, cores, config.precision, vec
        )
        dtype = execution_dtype(kernel, config.precision)
        vectorized = vec.effective and cpu.core.isa.supports(dtype)
        pipe = pipeline_time_per_iter(
            cpu.core, kernel.traits, dtype, vectorized,
            vec.efficiency if vectorized else 1.0,
        )
        mem = memory_time_per_iter(
            cpu, kernel, kernel.default_size, dtype, cores[0], cores
        )
        # Decompose one repetition.
        traits = kernel.traits
        n = kernel.default_size
        chunk_iters = traits.parallel_fraction * n / len(cores)
        parallel_time = chunk_iters * max(pipe, mem.seconds_per_iter)
        serial_iters = (1 - traits.parallel_fraction) * n
        mem1 = memory_time_per_iter(
            cpu, kernel, n, dtype, cores[0], (cores[0],)
        )
        serial_time = serial_iters * max(pipe, mem1.seconds_per_iter)
        overhead = (
            barrier_seconds(cpu, len(cores)) * traits.regions_per_rep
        )
        total = parallel_time + serial_time + overhead
        if total <= 0:
            raise ConfigError(f"{kernel.name}: non-positive total time")

        shares = (
            parallel_time / total,
            serial_time / total,
            overhead / total,
        )
        if shares[2] >= max(shares[0], shares[1]):
            bound = "overhead"
        elif shares[1] > shares[0]:
            bound = "serial"
        elif pipe >= mem.seconds_per_iter:
            bound = "pipeline"
        else:
            bound = mem.serving_level
        balance = pipe / mem.seconds_per_iter
        reports.append(
            BottleneckReport(
                kernel=kernel.name,
                bound=bound,
                parallel_share=shares[0],
                serial_share=shares[1],
                overhead_share=shares[2],
                balance=balance,
            )
        )
        # result retained for invariants: attribution must agree with
        # the execution model's own verdict for parallel-bound kernels.
        assert result.seconds > 0
    return reports


def render_bottleneck_report(
    cpu: CPUModel, config: RunConfig, kernels: list[Kernel]
) -> str:
    """Table rendering for the CLI."""
    from repro.util.tables import render_table

    reports = attribute_bottlenecks(cpu, config, kernels)
    rows = [
        (
            r.kernel,
            r.bound,
            f"{r.parallel_share:.2f}",
            f"{r.serial_share:.2f}",
            f"{r.overhead_share:.2f}",
            f"{r.balance:.2f}",
        )
        for r in reports
    ]
    return render_table(
        ("kernel", "bound", "parallel", "serial", "overhead",
         "pipe/mem"),
        rows,
        title=(
            f"{cpu.name}: bottleneck attribution at {config.threads} "
            f"thread(s), {config.precision.label}"
        ),
    )
