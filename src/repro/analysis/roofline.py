"""Roofline model construction from the machine catalog.

A roofline couples a machine's sustained compute ceiling (FLOP/s) and
memory-bandwidth ceiling (bytes/s) with each kernel's operational
intensity (flops/byte): kernels left of the ridge point are
bandwidth-bound, kernels right of it compute-bound. Because both
ceilings come from the same :class:`~repro.machine.cpu.CPUModel` the
performance model uses, the roofline is a *view* of the model, and the
tests cross-check its bound classification against the execution
model's per-kernel verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.base import Kernel
from repro.machine.cpu import CPUModel
from repro.machine.vector import DType
from repro.perfmodel.execution import execution_dtype
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class Roofline:
    """One machine's roofline at a given precision and thread count.

    Attributes:
        machine: Machine name.
        dtype: Element type the ceilings assume.
        threads: Active cores the ceilings assume.
        peak_flops: Sustained compute ceiling (vectorized), FLOP/s.
        scalar_flops: Sustained scalar compute ceiling, FLOP/s.
        peak_bandwidth: Sustained DRAM bandwidth ceiling, bytes/s.
    """

    machine: str
    dtype: DType
    threads: int
    peak_flops: float
    scalar_flops: float
    peak_bandwidth: float

    def __post_init__(self) -> None:
        if min(self.peak_flops, self.scalar_flops,
               self.peak_bandwidth) <= 0:
            raise ConfigError("roofline ceilings must be positive")

    @property
    def ridge_intensity(self) -> float:
        """Operational intensity (flops/byte) where the machine moves
        from bandwidth- to compute-bound."""
        return self.peak_flops / self.peak_bandwidth

    def attainable(self, intensity: float) -> float:
        """Attainable FLOP/s at the given operational intensity."""
        if intensity <= 0:
            raise ConfigError("intensity must be positive")
        return min(self.peak_flops, intensity * self.peak_bandwidth)

    def bound_of(self, intensity: float) -> str:
        """``"memory"`` or ``"compute"`` for an operational intensity."""
        return "memory" if intensity < self.ridge_intensity else "compute"


@dataclass(frozen=True)
class KernelPoint:
    """One kernel plotted on a roofline."""

    kernel: str
    intensity: float
    attainable_flops: float
    bound: str


def build_roofline(
    cpu: CPUModel,
    dtype: DType = DType.FP64,
    threads: int = 1,
    vectorized: bool = True,
) -> Roofline:
    """Derive a machine's roofline from its model parameters.

    The compute ceiling multiplies the per-core sustained rate by the
    thread count; the bandwidth ceiling is the package sustained DRAM
    bandwidth capped by ``threads`` per-core draws — the same quantities
    the execution model uses.
    """
    if threads < 1 or threads > cpu.num_cores:
        raise ConfigError(
            f"threads must be in 1..{cpu.num_cores}, got {threads}"
        )
    per_core = cpu.core.flops_per_second(dtype, vectorized)
    scalar = cpu.core.flops_per_second(dtype, False)
    bandwidth = min(
        cpu.memory.package_bandwidth,
        threads * cpu.memory.per_core_bandwidth_bytes,
    )
    return Roofline(
        machine=cpu.name,
        dtype=dtype,
        threads=threads,
        peak_flops=per_core * threads,
        scalar_flops=scalar * threads,
        peak_bandwidth=bandwidth,
    )


def classify_kernels(
    cpu: CPUModel,
    kernels: list[Kernel],
    dtype: DType = DType.FP64,
    threads: int = 1,
) -> list[KernelPoint]:
    """Place each kernel on the machine's roofline.

    Integer kernels are mapped to their integer execution dtype first
    (the REDUCE3_INT rule), so their intensity reflects the datapath
    that actually runs.
    """
    if not kernels:
        raise ConfigError("kernel list is empty")
    roofline = build_roofline(cpu, dtype, threads)
    points = []
    for kernel in kernels:
        exec_dtype = execution_dtype(kernel, dtype)
        traits = kernel.traits
        if traits.flops_per_iter == 0:
            # Pure data movement (MEMSET/MEMCPY): pin to the far left.
            intensity = 1e-6
        else:
            intensity = traits.arithmetic_intensity(exec_dtype)
        points.append(
            KernelPoint(
                kernel=kernel.name,
                intensity=intensity,
                attainable_flops=roofline.attainable(intensity),
                bound=roofline.bound_of(intensity),
            )
        )
    return points


def render_roofline_report(
    cpu: CPUModel,
    kernels: list[Kernel],
    dtype: DType = DType.FP64,
    threads: int = 1,
) -> str:
    """Human-readable roofline report (used by the CLI)."""
    from repro.util.tables import render_table

    roofline = build_roofline(cpu, dtype, threads)
    points = classify_kernels(cpu, kernels, dtype, threads)
    rows = [
        (
            p.kernel,
            f"{p.intensity:.3f}",
            f"{p.attainable_flops / 1e9:.2f}",
            p.bound,
        )
        for p in sorted(points, key=lambda p: p.intensity)
    ]
    header = (
        f"{roofline.machine} roofline @ {dtype.label}, {threads} "
        f"thread(s): peak {roofline.peak_flops / 1e9:.1f} GFLOP/s, "
        f"bandwidth {roofline.peak_bandwidth / 1e9:.1f} GB/s, ridge "
        f"{roofline.ridge_intensity:.2f} flops/byte"
    )
    return header + "\n" + render_table(
        ("kernel", "intensity", "attainable GF/s", "bound"), rows
    )
