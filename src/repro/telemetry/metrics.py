"""Counter / gauge / histogram registry for the prediction pipeline.

One :class:`MetricsRegistry` lives per telemetry session and absorbs
the signals that used to be scattered ad-hoc fields: compile-cache and
prediction-memo hit/miss counts (``cache.*`` gauges published from
:class:`~repro.suite.memo.CacheCounters`), suite/kernel run counts,
retry/backoff activity, and batch-engine fallbacks. The full metric
name table lives in ``docs/OBSERVABILITY.md``.

Instrument kinds:

* **Counter** — monotonically increasing total (``inc``).
* **Gauge** — last-written point-in-time value (``set``).
* **Histogram** — count/total/min/max of observed values (``observe``).

Snapshots (:class:`MetricsSnapshot`) are plain picklable data: sweep
worker processes snapshot their registry and the parent merges
(counters add, gauges last-write-wins, histograms combine), so a
multi-process sweep still produces one coherent registry.

When telemetry is off the pipeline talks to :data:`NULL_METRICS`, whose
instruments do nothing; hot call sites additionally guard on
``registry.active``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.util.errors import ConfigError


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ConfigError(
                f"counter {self.name!r} cannot decrease (inc {n})"
            )
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Gauge:
    """Last-write-wins point-in-time value."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: int | float = 0

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


@dataclass(frozen=True)
class HistogramStat:
    """Immutable summary of a histogram's observations."""

    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None

    def combine(self, other: "HistogramStat") -> "HistogramStat":
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        return HistogramStat(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None


class Histogram:
    """Streaming count/total/min/max of observed values."""

    __slots__ = ("name", "_lock", "_count", "_total", "_min", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: int | float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def stat(self) -> HistogramStat:
        with self._lock:
            return HistogramStat(
                count=self._count, total=self._total,
                minimum=self._min, maximum=self._max,
            )

    def combine(self, stat: HistogramStat) -> None:
        """Fold a foreign (e.g. worker-process) stat into this
        histogram."""
        if stat.count == 0:
            return
        with self._lock:
            if self._count == 0:
                self._min, self._max = stat.minimum, stat.maximum
            else:
                self._min = min(self._min, stat.minimum)
                self._max = max(self._max, stat.maximum)
            self._count += stat.count
            self._total += stat.total


class LatencyWindow:
    """Bounded ring of recent observations with percentile queries.

    The streaming :class:`Histogram` keeps count/total/min/max — enough
    for rates and means, not for tail latency. A ``LatencyWindow`` keeps
    the last ``maxlen`` raw observations (a ring buffer, so memory is
    bounded under sustained load) and answers percentile queries over
    that window by nearest-rank on a sorted snapshot. The serving layer
    publishes ``serve.latency_p50_ms`` / ``serve.latency_p99_ms`` gauges
    from one of these.
    """

    __slots__ = ("_lock", "_ring", "_maxlen", "_next", "_count")

    def __init__(self, maxlen: int = 2048) -> None:
        if maxlen < 1:
            raise ConfigError(f"maxlen must be >= 1, got {maxlen}")
        self._lock = threading.Lock()
        self._ring: list[float] = []
        self._maxlen = maxlen
        self._next = 0
        self._count = 0

    def observe(self, value: int | float) -> None:
        value = float(value)
        with self._lock:
            if len(self._ring) < self._maxlen:
                self._ring.append(value)
            else:
                self._ring[self._next] = value
                self._next = (self._next + 1) % self._maxlen
            self._count += 1

    @property
    def count(self) -> int:
        """Total observations ever made (not just those retained)."""
        with self._lock:
            return self._count

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile (``q`` in [0, 100]) over the window;
        ``None`` before the first observation."""
        if not 0 <= q <= 100:
            raise ConfigError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if not self._ring:
                return None
            ordered = sorted(self._ring)
        rank = max(1, -(-len(ordered) * q // 100))  # ceil without math
        return ordered[int(rank) - 1]


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time, picklable view of a registry's instruments."""

    counters: dict[str, int | float] = field(default_factory=dict)
    gauges: dict[str, int | float] = field(default_factory=dict)
    histograms: dict[str, HistogramStat] = field(default_factory=dict)

    def render(self) -> str:
        """Flat text dump: one ``<kind> <name> <value>`` line per
        instrument, sorted by name within each kind (the ``repro
        --metrics-out`` format, documented in docs/OBSERVABILITY.md)."""
        lines = ["# repro.telemetry metrics"]
        for name in sorted(self.counters):
            lines.append(f"counter {name} {self.counters[name]}")
        for name in sorted(self.gauges):
            lines.append(f"gauge {name} {self.gauges[name]}")
        for name in sorted(self.histograms):
            h = self.histograms[name]
            lines.append(
                f"histogram {name} count={h.count} total={h.total:.9g}"
                f" min={0 if h.minimum is None else h.minimum:.9g}"
                f" max={0 if h.maximum is None else h.maximum:.9g}"
            )
        return "\n".join(lines)


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled path."""

    __slots__ = ()
    name = "null"

    def inc(self, n: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: int | float) -> None:
        pass

    @property
    def value(self) -> int:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The default (telemetry off) registry: all instruments no-op."""

    __slots__ = ()
    active = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot()

    def merge(self, snapshot: MetricsSnapshot) -> None:
        pass


NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """Thread-safe named-instrument registry for one telemetry session.

    Instruments are interned by name; asking for an existing name with a
    different kind is a :class:`ConfigError` (one name, one meaning).
    """

    active = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise ConfigError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__.lower()}, not "
                    f"{kind.__name__.lower()}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            instruments = list(self._instruments.values())
        counters: dict[str, int | float] = {}
        gauges: dict[str, int | float] = {}
        histograms: dict[str, HistogramStat] = {}
        for instrument in instruments:
            if isinstance(instrument, Counter):
                counters[instrument.name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[instrument.name] = instrument.value
            else:
                histograms[instrument.name] = instrument.stat()
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a foreign snapshot in: counters add, gauges last-write-
        wins, histograms combine."""
        for name, value in snapshot.counters.items():
            self.counter(name).inc(value)
        for name, value in snapshot.gauges.items():
            self.gauge(name).set(value)
        for name, stat in snapshot.histograms.items():
            self.histogram(name).combine(stat)
