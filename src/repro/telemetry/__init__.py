"""``repro.telemetry`` — tracing, metrics and profiling for the whole
prediction pipeline.

The paper's value is in explaining where SG2042 time goes; this package
does the same for the reproduction's own pipeline. It is zero-dependency
(stdlib only) and off by default: until a session is installed, every
instrumented call site talks to a shared no-op recorder/registry whose
cost is a boolean check or a null context manager (the <2% overhead
budget is asserted by ``benchmarks/bench_sweep.py``).

Usage::

    from repro import telemetry
    from repro.telemetry.export import write_trace

    with telemetry.telemetry_session() as (recorder, registry):
        result = sweep(cpu, kernels, threads=(1, 8), workers=2)
        write_trace("trace.json", recorder.records())
        print(result.telemetry.render())

Or from the CLI::

    sg2042-repro sweep --telemetry --trace-out trace.json
    sg2042-repro trace sweep --kernels TRIAD --trace-out trace.jsonl

See ``docs/OBSERVABILITY.md`` for the span model, the metric name table
and the exporter formats.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.telemetry.metrics import (
    NULL_METRICS,
    HistogramStat,
    LatencyWindow,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetrics,
)
from repro.telemetry.spans import (
    DEFAULT_MAX_SPANS,
    NULL_RECORDER,
    NullRecorder,
    Span,
    SpanRecord,
    TraceRecorder,
)

__all__ = [
    "DEFAULT_MAX_SPANS",
    "HistogramStat",
    "LatencyWindow",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullMetrics",
    "NullRecorder",
    "Span",
    "SpanRecord",
    "TelemetrySummary",
    "TraceRecorder",
    "active",
    "install",
    "metrics",
    "recorder",
    "telemetry_session",
]

# The process-wide session state. Plain module globals: reads are cheap
# (the hot path does `telemetry.recorder().active` at most once per
# suite) and writes happen only in install()/telemetry_session(), which
# serialize on _INSTALL_LOCK.
_RECORDER: TraceRecorder | NullRecorder = NULL_RECORDER
_METRICS: MetricsRegistry | NullMetrics = NULL_METRICS
_INSTALL_LOCK = threading.Lock()


def recorder() -> TraceRecorder | NullRecorder:
    """The active span recorder (the no-op one when telemetry is off)."""
    return _RECORDER


def metrics() -> MetricsRegistry | NullMetrics:
    """The active metrics registry (no-op when telemetry is off)."""
    return _METRICS


def active() -> bool:
    """Whether a telemetry session is currently installed."""
    return _RECORDER.active


def install(
    new_recorder: TraceRecorder | NullRecorder,
    new_metrics: MetricsRegistry | NullMetrics,
) -> tuple:
    """Install a recorder/registry pair; returns the previous pair.

    Prefer :func:`telemetry_session`, which restores the previous pair
    automatically.
    """
    global _RECORDER, _METRICS
    with _INSTALL_LOCK:
        previous = (_RECORDER, _METRICS)
        _RECORDER = new_recorder
        _METRICS = new_metrics
    return previous


@contextmanager
def telemetry_session(max_spans: int = DEFAULT_MAX_SPANS):
    """Install a fresh :class:`TraceRecorder` + :class:`MetricsRegistry`
    for the duration of the block; yields ``(recorder, registry)``.

    Sessions nest: the previous pair (usually the no-op defaults) is
    restored on exit. Worker *threads* record into the session
    installed by the main thread; worker *processes* install their own
    session and their spans/metrics are merged back by the sweep.
    """
    session_recorder = TraceRecorder(max_spans=max_spans)
    session_metrics = MetricsRegistry()
    previous = install(session_recorder, session_metrics)
    try:
        yield session_recorder, session_metrics
    finally:
        install(*previous)


@dataclass(frozen=True)
class TelemetrySummary:
    """Digest of a telemetry session at a point in time.

    Carried on ``SuiteResult.telemetry`` / ``SweepResult.telemetry``
    (``None`` when telemetry was off) and rendered by the CLI's
    ``run``/``sweep``/``trace`` output. Picklable: process-pool sweep
    workers hand it back inside their ``SuiteResult``.

    Attributes:
        span_count: Finished spans recorded so far.
        dropped_spans: Spans evicted by the ring buffer.
        phase_counts: Spans per phase (span name).
        phase_seconds: *Inclusive* seconds per phase — a parent span's
            time contains its children's, so phases do not sum to wall
            time.
        counters / gauges / histograms: The metric snapshot.
    """

    span_count: int = 0
    dropped_spans: int = 0
    phase_counts: dict[str, int] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int | float] = field(default_factory=dict)
    gauges: dict[str, int | float] = field(default_factory=dict)
    histograms: dict[str, HistogramStat] = field(default_factory=dict)

    @classmethod
    def capture(
        cls,
        session_recorder: TraceRecorder | NullRecorder,
        session_metrics: MetricsRegistry | NullMetrics,
    ) -> "TelemetrySummary":
        records = session_recorder.records()
        phase_counts: dict[str, int] = {}
        phase_seconds: dict[str, float] = {}
        for record in records:
            phase_counts[record.name] = phase_counts.get(record.name, 0) + 1
            phase_seconds[record.name] = (
                phase_seconds.get(record.name, 0.0) + record.seconds
            )
        snapshot = session_metrics.snapshot()
        return cls(
            span_count=len(records),
            dropped_spans=session_recorder.dropped,
            phase_counts=phase_counts,
            phase_seconds=phase_seconds,
            counters=dict(snapshot.counters),
            gauges=dict(snapshot.gauges),
            histograms=dict(snapshot.histograms),
        )

    def metrics_snapshot(self) -> MetricsSnapshot:
        """The summary's metrics as a :class:`MetricsSnapshot` (for the
        exporters)."""
        return MetricsSnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms=dict(self.histograms),
        )

    def render(self) -> str:
        """Human-readable digest for the CLI reports."""
        lines = [
            f"telemetry: {self.span_count} span(s)"
            + (f", {self.dropped_spans} dropped" if self.dropped_spans
               else "")
        ]
        if self.phase_counts:
            lines.append("  phase                      count   inclusive")
            for name in sorted(
                self.phase_seconds,
                key=self.phase_seconds.get, reverse=True,
            ):
                seconds = self.phase_seconds[name]
                lines.append(
                    f"  {name:<25} {self.phase_counts[name]:>6}"
                    f" {seconds * 1e3:>9.2f} ms"
                )
        for kind, table in (("counter", self.counters),
                            ("gauge", self.gauges)):
            for name in sorted(table):
                lines.append(f"  {kind} {name} = {table[name]}")
        for name in sorted(self.histograms):
            h = self.histograms[name]
            lines.append(
                f"  histogram {name}: count={h.count} total={h.total:.6g}"
            )
        return "\n".join(lines)
