"""Nestable, thread- and process-safe spans with monotonic timing.

A *span* is one timed phase of the pipeline — a suite run, a batched
prediction pass, a compile-cache fill, a retry attempt. Spans nest: the
recorder keeps a per-thread stack, so a span opened while another is
active records that span as its parent, and an exported trace reproduces
the call tree.

Timing is monotonic (``time.monotonic_ns``) for durations; start times
are mapped onto the wall clock through a per-recorder anchor so spans
recorded by different processes (sweep workers) stay comparable and a
merged trace orders correctly by start time.

The :class:`TraceRecorder` is ring-buffered: memory is bounded by
``max_spans`` and the oldest spans are dropped (and counted) once the
buffer is full, so tracing an arbitrarily long sweep can never exhaust
memory.

When telemetry is off the pipeline talks to the :data:`NULL_RECORDER`
instead — its ``span()`` hands back a shared do-nothing context manager,
and hot per-kernel call sites additionally guard on ``recorder.active``
so the disabled path costs a boolean check (see the overhead budget in
``benchmarks/bench_sweep.py`` and ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from dataclasses import dataclass

#: Default ring-buffer capacity of a :class:`TraceRecorder`.
DEFAULT_MAX_SPANS = 100_000


@dataclass(frozen=True)
class SpanRecord:
    """One finished span. Immutable, hashable, picklable — records
    travel from sweep worker processes back to the parent trace.

    Attributes:
        name: Phase name (e.g. ``"suite.run"``, ``"predict.batch"``).
        start_ns: Start time in nanoseconds since the Unix epoch (wall
            anchor + monotonic delta — see module docstring).
        duration_ns: Monotonic duration in nanoseconds (>= 0).
        span_id: Recorder-unique id (unique per process).
        parent_id: ``span_id`` of the enclosing span in the same thread,
            or ``None`` for a root span.
        pid: Process id that recorded the span.
        tid: Thread id that recorded the span.
        attrs: Attributes as a sorted tuple of ``(key, value)`` pairs.
    """

    name: str
    start_ns: int
    duration_ns: int
    span_id: int
    parent_id: int | None
    pid: int
    tid: int
    attrs: tuple[tuple[str, object], ...] = ()

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns

    @property
    def seconds(self) -> float:
        return self.duration_ns / 1e9

    def attributes(self) -> dict[str, object]:
        return dict(self.attrs)


class Span:
    """A live span: a context manager handed out by
    :meth:`TraceRecorder.span`.

    Entering pushes it on the recorder's per-thread stack (fixing its
    parent); exiting pops it and appends a :class:`SpanRecord` to the
    ring. An exception propagating through the span is recorded as an
    ``error`` attribute and re-raised.
    """

    __slots__ = ("name", "span_id", "parent_id", "_recorder", "_attrs",
                 "_start_mono")

    def __init__(self, recorder: "TraceRecorder", name: str,
                 attrs: dict[str, object]) -> None:
        self._recorder = recorder
        self.name = name
        self._attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None
        self._start_mono = 0

    def set(self, **attrs: object) -> None:
        """Attach (or overwrite) attributes while the span is open."""
        self._attrs.update(attrs)

    def __enter__(self) -> "Span":
        recorder = self._recorder
        stack = recorder._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = next(recorder._ids)
        stack.append(self)
        self._start_mono = time.monotonic_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_mono = time.monotonic_ns()
        recorder = self._recorder
        stack = recorder._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - misnested exit, recover gracefully
            try:
                stack.remove(self)
            except ValueError:
                pass
        if exc_type is not None:
            self._attrs.setdefault("error", exc_type.__name__)
        recorder._finish(self, end_mono)
        return False


class _NullSpan:
    """Shared do-nothing span: the off-path cost of an uninstrumented
    ``with recorder.span(...)`` site."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullRecorder:
    """The default (telemetry off) recorder: records nothing.

    ``active`` is ``False`` so hot call sites can skip even the cheap
    null-span cycle; coarse-grained sites simply call :meth:`span` and
    pay one shared no-op context manager.
    """

    __slots__ = ()
    active = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return NULL_SPAN

    def records(self) -> list[SpanRecord]:
        return []

    def merge(self, records) -> None:
        pass

    def __len__(self) -> int:
        return 0

    @property
    def dropped(self) -> int:
        return 0


NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Thread-safe, ring-buffered span recorder for one telemetry
    session.

    Args:
        max_spans: Ring capacity; once full, the oldest record is
            dropped per append and counted in :attr:`dropped`.
    """

    active = True

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self._lock = threading.Lock()
        self._spans: deque[SpanRecord] = deque(maxlen=max_spans)
        self._max_spans = max_spans
        self._dropped = 0
        self._ids = itertools.count(1)
        self._local = threading.local()
        # Wall anchor: start times become epoch-relative (comparable
        # across processes) while durations stay monotonic.
        self._anchor_wall_ns = time.time_ns()
        self._anchor_mono_ns = time.monotonic_ns()

    def span(self, name: str, **attrs: object) -> Span:
        """A new span named ``name``; use as a context manager."""
        return Span(self, name, attrs)

    def _stack(self) -> list[Span]:
        try:
            return self._local.stack
        except AttributeError:
            stack: list[Span] = []
            self._local.stack = stack
            return stack

    def _finish(self, span: Span, end_mono: int) -> None:
        start_ns = (
            self._anchor_wall_ns + (span._start_mono - self._anchor_mono_ns)
        )
        record = SpanRecord(
            name=span.name,
            start_ns=start_ns,
            duration_ns=max(0, end_mono - span._start_mono),
            span_id=span.span_id,
            parent_id=span.parent_id,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=tuple(sorted(span._attrs.items())),
        )
        with self._lock:
            if len(self._spans) == self._max_spans:
                self._dropped += 1
            self._spans.append(record)

    def merge(self, records) -> None:
        """Fold foreign :class:`SpanRecord`\\ s (e.g. from a sweep worker
        process) into this trace; they sort in with local spans by start
        time in :meth:`records`."""
        with self._lock:
            for record in records:
                if len(self._spans) == self._max_spans:
                    self._dropped += 1
                self._spans.append(record)

    def records(self) -> list[SpanRecord]:
        """All finished spans, ordered by start time (then pid/id for a
        stable order on ties)."""
        with self._lock:
            spans = list(self._spans)
        spans.sort(key=lambda r: (r.start_ns, r.pid, r.span_id))
        return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring because it was full."""
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0
