"""Exporters: JSONL span logs, Chrome trace-event JSON, metrics dumps.

Three output formats, all zero-dependency (stdlib ``json``):

* **JSONL span log** (``*.jsonl``) — one JSON object per line per span::

      {"name": "suite.run", "span_id": 3, "parent_id": 1, "pid": 1234,
       "tid": 5678, "start_ns": 1722945600123456789,
       "duration_ns": 2400000, "attrs": {"threads": 8}}

* **Chrome trace-event JSON** (``*.json``) — loadable by
  ``chrome://tracing`` / Perfetto: complete (``"ph": "X"``) duration
  events with microsecond timestamps, real pid/tid lanes and span
  attributes in ``args``.

* **Metrics dump** — the flat ``<kind> <name> <value>`` text format of
  :meth:`repro.telemetry.metrics.MetricsSnapshot.render`.

``write_trace`` dispatches on the path suffix so the CLI's single
``--trace-out`` flag serves both span formats.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.telemetry.metrics import MetricsSnapshot
from repro.telemetry.spans import SpanRecord


def span_to_event(record: SpanRecord) -> dict:
    """One span as a Chrome complete ('X') trace event."""
    args: dict[str, object] = {
        key: value for key, value in record.attrs
    }
    args["span_id"] = record.span_id
    if record.parent_id is not None:
        args["parent_id"] = record.parent_id
    return {
        "name": record.name,
        "cat": "repro",
        "ph": "X",
        "ts": record.start_ns / 1e3,   # microseconds
        "dur": record.duration_ns / 1e3,
        "pid": record.pid,
        "tid": record.tid,
        "args": args,
    }


def chrome_trace(
    records: Sequence[SpanRecord],
    metrics: MetricsSnapshot | None = None,
) -> dict:
    """The full Chrome trace-event document for ``records``."""
    other: dict[str, object] = {
        "generator": "repro.telemetry",
        "spans": len(records),
    }
    if metrics is not None:
        other["counters"] = dict(metrics.counters)
        other["gauges"] = dict(metrics.gauges)
    return {
        "traceEvents": [span_to_event(r) for r in records],
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    path: str | Path,
    records: Sequence[SpanRecord],
    metrics: MetricsSnapshot | None = None,
) -> None:
    Path(path).write_text(
        json.dumps(chrome_trace(records, metrics), indent=1) + "\n",
        encoding="utf-8",
    )


def span_to_json(record: SpanRecord) -> dict:
    """One span as the JSONL line object."""
    return {
        "name": record.name,
        "span_id": record.span_id,
        "parent_id": record.parent_id,
        "pid": record.pid,
        "tid": record.tid,
        "start_ns": record.start_ns,
        "duration_ns": record.duration_ns,
        "attrs": {key: value for key, value in record.attrs},
    }


def spans_to_jsonl(records: Iterable[SpanRecord]) -> str:
    return "".join(
        json.dumps(span_to_json(r), sort_keys=True) + "\n"
        for r in records
    )


def write_spans_jsonl(
    path: str | Path, records: Iterable[SpanRecord]
) -> None:
    Path(path).write_text(spans_to_jsonl(records), encoding="utf-8")


def write_trace(
    path: str | Path,
    records: Sequence[SpanRecord],
    metrics: MetricsSnapshot | None = None,
) -> None:
    """Write ``records`` to ``path`` — JSONL for ``*.jsonl``, Chrome
    trace-event JSON otherwise."""
    if str(path).endswith(".jsonl"):
        write_spans_jsonl(path, records)
    else:
        write_chrome_trace(path, records, metrics)


def render_metrics(snapshot: MetricsSnapshot) -> str:
    return snapshot.render()


def write_metrics(path: str | Path, snapshot: MetricsSnapshot) -> None:
    Path(path).write_text(snapshot.render() + "\n", encoding="utf-8")
