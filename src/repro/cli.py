"""Command-line interface: ``sg2042-repro`` (or ``python -m repro``).

Subcommands::

    sg2042-repro list                 # machines, kernels, experiments
    sg2042-repro describe sg2042      # machine spec block + lscpu view
    sg2042-repro run --cpu sg2042 --threads 32 --placement cluster
    sg2042-repro experiment table2    # reproduce one table/figure
    sg2042-repro experiment all       # reproduce everything
    sg2042-repro verify               # execute all kernels numerically
    sg2042-repro lint --all           # static analysis of IRs + assembly
    sg2042-repro serve --port 8642    # the HTTP prediction service
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager, nullcontext

from repro.experiments import ALL_EXPERIMENTS, EXPERIMENTS
from repro.kernels.registry import all_kernels, kernel_names
from repro.resilience import inject_faults, load_fault_plan
from repro.resilience.retry import FailurePolicy, RetrySpec
from repro.suite.config import RunConfig
from repro.suite.report import failure_summary
from repro.suite.runner import run_suite, verify_kernel
from repro.util.errors import ReproError
from repro.util.tables import render_table
from repro.util.units import format_seconds


def _chaos_context(args: argparse.Namespace):
    """Context manager installing ``--fault-plan``, if given."""
    if getattr(args, "fault_plan", None):
        return inject_faults(load_fault_plan(args.fault_plan))
    return nullcontext()


def _parse_kernels(spec: str) -> list:
    """Kernel objects for a ``--kernels`` value (``all`` = catalog)."""
    from repro.kernels.registry import get_kernel

    if spec.strip().lower() == "all":
        return all_kernels()
    return [get_kernel(n) for n in spec.split(",")]


def _registry_paths(args: argparse.Namespace) -> tuple[str, ...]:
    return tuple(getattr(args, "registry_path", None) or ())


def _registry(args: argparse.Namespace):
    """The document registry for this invocation: the shipped data plus
    any ``--registry-path`` roots (later roots override by name)."""
    from repro.registry import registry_with_paths

    return registry_with_paths(_registry_paths(args))


def _resolve_cpu(args: argparse.Namespace, name: str | None = None):
    """Machine ``name`` (default ``args.cpu``) from the registry.

    Prints the unknown-machine message and returns ``None`` when the
    name is not registered (callers turn that into exit code 2).
    """
    registry = _registry(args)
    target = args.cpu if name is None else name
    known = registry.machine_names()
    if target not in known:
        print(f"unknown machine {target!r}; known: {sorted(known)}",
              file=sys.stderr)
        return None
    return registry.machine(target)


def _add_registry_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--registry-path", action="append", default=None, metavar="DIR",
        help="extra registry root holding <kind>/<name>.json documents, "
        "layered over the built-in data (repeatable; later roots "
        "override earlier names)",
    )


def _sweep_caches(args: argparse.Namespace):
    """Cache layers for ``--store``/``--memo-cap``/``--no-cache``.

    Returns ``(caches, store)``; ``caches`` is ``None`` for the sweep
    default (in-memory layers), ``store`` is the opened artifact store
    or ``None``. Installing the store as the process default also gives
    the SoA lowering cache its disk tier.
    """
    from repro.util.errors import ConfigError

    if getattr(args, "no_cache", False):
        if getattr(args, "store", None):
            raise ConfigError("--no-cache and --store are contradictory")
        from repro.suite.memo import SuiteCaches

        return SuiteCaches.disabled(), None
    memo_cap = getattr(args, "memo_cap", None)
    if getattr(args, "store", None):
        from repro.store import ArtifactStore, set_default_store
        from repro.suite.memo import SuiteCaches

        store = ArtifactStore(args.store)
        set_default_store(store)
        return SuiteCaches.persistent(store, memo_entry_cap=memo_cap), \
            store
    if memo_cap is not None:
        from repro.compiler.cache import CompileCache
        from repro.suite.memo import PredictionMemo, SuiteCaches

        return SuiteCaches(
            compile=CompileCache(),
            predict=PredictionMemo(max_entries=memo_cap),
        ), None
    return None, None


def _failure_policy(args: argparse.Namespace) -> FailurePolicy:
    return FailurePolicy.from_label(args.on_failure)


def _retry_spec(args: argparse.Namespace) -> RetrySpec:
    return RetrySpec(max_retries=args.retries)


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fault-plan", default=None, metavar="PLAN.json",
        help="inject faults from this seeded chaos plan (JSON)",
    )
    parser.add_argument(
        "--on-failure", default="abort",
        choices=["abort", "skip", "retry"],
        help="kernel failure policy: abort the run (default), skip and "
        "record, or retry with backoff then record",
    )
    parser.add_argument(
        "--retries", type=int, default=3,
        help="retry budget per kernel for --on-failure retry",
    )


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", action="store_true",
        help="record spans and metrics for this invocation and print "
        "the telemetry summary",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the span trace to FILE — Chrome trace-event JSON, "
        "or JSONL when FILE ends in .jsonl (implies --telemetry)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the flat metrics dump to FILE (implies --telemetry)",
    )


@contextmanager
def _telemetry_scope(args: argparse.Namespace):
    """Install a telemetry session when the command asked for one.

    ``--trace-out`` / ``--metrics-out`` imply ``--telemetry``. On a
    successful exit the requested artifacts are written and announced on
    stderr. Yields the live recorder, or ``None`` when telemetry is off.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not (getattr(args, "telemetry", False) or trace_out or metrics_out):
        yield None
        return
    from repro import telemetry
    from repro.telemetry.export import write_metrics, write_trace

    with telemetry.telemetry_session() as (recorder, registry):
        yield recorder
        if trace_out:
            write_trace(trace_out, recorder.records(), registry.snapshot())
            print(f"trace written to {trace_out}", file=sys.stderr)
        if metrics_out:
            write_metrics(metrics_out, registry.snapshot())
            print(f"metrics written to {metrics_out}", file=sys.stderr)


def _cmd_list(args: argparse.Namespace) -> int:
    print("machines:")
    for name in _registry(args).machine_names():
        print(f"  {name}")
    print("experiments:")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    print(f"kernels ({len(kernel_names())}):")
    for name in kernel_names():
        print(f"  {name}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    cpu = _resolve_cpu(args)
    if cpu is None:
        return 2
    print(cpu.describe())
    print()
    print(cpu.topology.lscpu())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.machine_file:
        from repro.machine.serialize import load_cpu

        cpu = load_cpu(args.machine_file)
    else:
        cpu = _resolve_cpu(args)
        if cpu is None:
            return 2
    config = RunConfig(
        threads=args.threads,
        precision=args.precision,
        placement=args.placement,
        vectorize=not args.no_vectorize,
        compiler=args.compiler,
        rollback=args.rollback,
    )
    with _telemetry_scope(args), _chaos_context(args):
        result = run_suite(
            cpu, config,
            policy=_failure_policy(args),
            retry=_retry_spec(args),
        )
    rows = [
        (
            run.kernel_name,
            run.klass.value,
            format_seconds(run.seconds),
            run.prediction.serving_level,
            run.prediction.bound,
            "vector" if run.prediction.vector_executed else "scalar",
        )
        for run in result.runs.values()
    ]
    print(
        render_table(
            ("kernel", "class", "time", "served by", "bound", "path"),
            rows,
            title=f"{cpu.name}: {config.threads} thread(s), "
            f"{config.precision.label}, {config.placement.value}",
        )
    )
    if result.failures:
        print()
        print(failure_summary(result))
    if result.telemetry is not None:
        print()
        print(result.telemetry.render())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name == "all":
        names = list(EXPERIMENTS)  # the paper's tables and figures
    elif args.name == "ablations":
        names = [n for n in ALL_EXPERIMENTS if n.startswith("ablation")]
    else:
        names = [args.name]
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; known: "
                  f"{sorted(ALL_EXPERIMENTS)}, 'all' or 'ablations'",
                  file=sys.stderr)
            return 2
    with _telemetry_scope(args):
        for name in names:
            print(ALL_EXPERIMENTS[name](fast=args.fast).render(
                chart=args.chart))
            print()
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    from repro.kernels.base import KernelClass
    from repro.kernels.registry import kernels_in_class
    from repro.machine.vector import DType
    from repro.suite.measured import measure_suite, render_measurements

    if args.kernel_class == "all":
        kernels = all_kernels()
    else:
        kernels = kernels_in_class(KernelClass.from_label(args.kernel_class))
    precision = DType.from_label(args.precision)
    with _telemetry_scope(args):
        measurements = measure_suite(kernels, n=args.size,
                                     precision=precision)
    print(render_measurements(measurements))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.suite.explain import explain_kernel

    cpu = _resolve_cpu(args)
    if cpu is None:
        return 2
    with _telemetry_scope(args):
        print(explain_kernel(args.kernel, cpu))
    return 0


#: Stack frames shown by ``repro sweep --profile``.
PROFILE_TOP_N = 25


def _emit_profile(profiler, out_path: str | None) -> None:
    """Render a finished cProfile run: top cumulative lines to stderr,
    or the full report to ``out_path`` when given."""
    import io
    import pstats

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative")
    if out_path is not None:
        stats.print_stats()
        with open(out_path, "w", encoding="utf-8") as fh:
            fh.write(buffer.getvalue())
        print(f"profile written to {out_path}", file=sys.stderr)
    else:
        stats.print_stats(PROFILE_TOP_N)
        sys.stderr.write(buffer.getvalue())


def _cmd_sweep(args: argparse.Namespace) -> int:
    import time

    from repro.suite.config import Placement, Precision
    from repro.suite.sweep import distributed_sweep, sweep

    cpu = _resolve_cpu(args)
    if cpu is None:
        return 2
    if args.hosts > 1 and args.workers > 1:
        print("error: --hosts and --workers are mutually exclusive "
              "(a distributed sweep already runs one rank per host)",
              file=sys.stderr)
        return 2
    kernels = _parse_kernels(args.kernels)
    threads = [int(t) for t in args.threads.split(",")]
    placements = [Placement.from_label(p)
                  for p in args.placements.split(",")]
    precisions = [Precision.from_label(p)
                  for p in args.precisions.split(",")]
    caches, store = _sweep_caches(args)
    profiler = None
    if getattr(args, "profile_out", None) and not getattr(
        args, "profile", False
    ):
        print("note: --profile-out given without --profile; "
              "--profile is implied and profiling is enabled",
              file=sys.stderr)
    if getattr(args, "profile", False) or getattr(args, "profile_out",
                                                  None):
        import cProfile

        profiler = cProfile.Profile()
    with _telemetry_scope(args), _chaos_context(args):
        if profiler is not None:
            profiler.enable()
        started = time.perf_counter()
        try:
            if args.hosts > 1:
                result = distributed_sweep(
                    cpu, kernels, threads, placements, precisions,
                    hosts=args.hosts,
                    policy=_failure_policy(args),
                    retry=_retry_spec(args),
                    checkpoint=args.checkpoint,
                    caches=caches,
                    engine=args.engine,
                )
            else:
                result = sweep(
                    cpu, kernels, threads, placements, precisions,
                    policy=_failure_policy(args),
                    retry=_retry_spec(args),
                    checkpoint=args.checkpoint,
                    workers=args.workers,
                    workers_mode=args.workers_mode,
                    caches=caches,
                    engine=args.engine,
                )
        finally:
            elapsed = time.perf_counter() - started
            if profiler is not None:
                profiler.disable()
                _emit_profile(profiler, args.profile_out)
    if args.stats_out:
        _write_sweep_stats(args.stats_out, result, elapsed, store)
    if args.csv:
        print(result.to_csv())
    else:
        rows = [
            (p.kernel, p.threads, p.placement.value, p.precision.label,
             format_seconds(p.seconds))
            for p in result.points
        ]
        print(render_table(
            ("kernel", "threads", "placement", "precision", "time"),
            rows, title=f"{cpu.name} sweep",
        ))
        if result.points:
            best_t, best_pl, best_pr = result.best_overall()
            print(f"\nbest overall: {best_t} threads, {best_pl.value}, "
                  f"{best_pr.label}")
        if result.cache_stats is not None:
            print(result.cache_stats.render())
    if result.failures:
        print()
        print(result.failure_summary())
    if not args.csv and result.telemetry is not None:
        print()
        print(result.telemetry.render())
    return 0


def _write_sweep_stats(path: str, result, elapsed: float,
                       store) -> None:
    """Machine-readable sweep stats for cross-process comparisons.

    The in-process wall time matters here: a subprocess's total runtime
    is dominated by interpreter + NumPy import, which would drown the
    store's effect; ``seconds`` times only the sweep call.
    """
    import json
    from dataclasses import asdict

    payload = {
        "seconds": elapsed,
        "points": len(result.points),
        "failures": len(result.failures),
        "restored": result.restored,
        "cache_stats": (
            asdict(result.cache_stats)
            if result.cache_stats is not None else None
        ),
        "store": (
            {
                namespace: asdict(stats)
                for namespace, stats in store.stats().items()
            }
            if store is not None else None
        ),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"sweep stats written to {path}", file=sys.stderr)


def _cmd_warm(args: argparse.Namespace) -> int:
    from repro.compiler.model import VectorFlavor
    from repro.store import ArtifactStore, set_default_store
    from repro.store.warm import warm_store

    registry = _registry(args)
    known = registry.machine_names()
    if args.cpu.strip().lower() == "all":
        names = sorted(known)
    else:
        names = [n.strip() for n in args.cpu.split(",")]
        unknown = [n for n in names if n not in known]
        if unknown:
            print(f"unknown machine(s) {unknown}; known: "
                  f"{sorted(known)}", file=sys.stderr)
            return 2
    kernels = _parse_kernels(args.kernels)
    combos = []
    for label in args.flavors.split(","):
        flavor = VectorFlavor(label.strip().lower())
        combos.append((flavor, False))
        if args.rollback:
            combos.append((flavor, True))
    store = ArtifactStore(args.store)
    set_default_store(store)
    for name in names:
        report = warm_store(
            store, registry.machine(name), kernels, combos=combos,
            compiler=args.compiler,
        )
        print(report.render())
    print(
        f"store {args.store}: {store.artifact_count('compile')} compile "
        f"+ {store.artifact_count('soa')} soa "
        f"+ {store.artifact_count('predict')} prediction artifact(s)"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run a sweep or an experiment under telemetry and export the
    trace — observability-first front of ``sweep``/``experiment``."""
    from repro import telemetry
    from repro.telemetry.export import write_metrics, write_trace

    with telemetry.telemetry_session() as (recorder, registry):
        if args.target == "sweep":
            from repro.kernels.registry import get_kernel
            from repro.suite.config import Placement, Precision
            from repro.suite.sweep import sweep

            cpu = _resolve_cpu(args)
            if cpu is None:
                return 2
            result = sweep(
                cpu,
                [get_kernel(n) for n in args.kernels.split(",")],
                [int(t) for t in args.threads.split(",")],
                [Placement.from_label(p)
                 for p in args.placements.split(",")],
                [Precision.from_label(p)
                 for p in args.precisions.split(",")],
                workers=args.workers,
                workers_mode=args.workers_mode,
                engine=args.engine,
            )
            summary = result.telemetry
        elif args.target in ALL_EXPERIMENTS:
            ALL_EXPERIMENTS[args.target](fast=args.fast)
            summary = telemetry.TelemetrySummary.capture(recorder,
                                                         registry)
        else:
            print(f"unknown trace target {args.target!r}; expected "
                  f"'sweep' or one of {sorted(ALL_EXPERIMENTS)}",
                  file=sys.stderr)
            return 2
        write_trace(args.trace_out, recorder.records(),
                    registry.snapshot())
        print(f"trace written to {args.trace_out}", file=sys.stderr)
        if args.metrics_out:
            write_metrics(args.metrics_out, registry.snapshot())
            print(f"metrics written to {args.metrics_out}",
                  file=sys.stderr)
    print(summary.render())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.bottleneck import render_bottleneck_report
    from repro.analysis.roofline import render_roofline_report
    from repro.machine.vector import DType

    cpu = _resolve_cpu(args)
    if cpu is None:
        return 2
    precision = DType.from_label(args.precision)
    kernels = all_kernels()
    if args.mode == "roofline":
        print(render_roofline_report(cpu, kernels, precision,
                                     args.threads))
    elif args.mode == "sensitivity":
        from repro.analysis.sensitivity import render_sensitivities

        config = RunConfig(threads=args.threads, precision=precision,
                           placement=args.placement, runs=1,
                           noise_sigma=0.0)
        print(render_sensitivities(cpu, config))
    else:
        config = RunConfig(threads=args.threads, precision=precision,
                           placement=args.placement)
        print(render_bottleneck_report(cpu, config, kernels))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analyze.driver import lint_assembly_file, run_lint
    from repro.analyze.report import LintReport, Severity
    from repro.isa.rvv import RVV_0_7_1, RVV_1_0

    min_severity = Severity.from_label(args.min_severity)
    if args.asm_file:
        dialect = RVV_0_7_1 if args.dialect == "0.7.1" else RVV_1_0
        findings, count = lint_assembly_file(args.asm_file, dialect)
        report = LintReport(findings=findings, programs_checked=count)
    else:
        names = args.kernels.split(",") if args.kernels else None
        report = run_lint(
            kernels=True,
            asm=not args.no_asm,
            names=names,
            transval=args.transval,
            demo_miscompile=args.demo_miscompile,
            registry=args.registry,
            registry_paths=_registry_paths(args),
        )
    if args.format == "json":
        print(json.dumps(report.to_json(min_severity=min_severity),
                         indent=2))
    else:
        print(report.render(min_severity=min_severity))
    return report.exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.resilience import load_fault_plan
    from repro.serve import ServeConfig, serve_forever

    plan = load_fault_plan(args.fault_plan) if args.fault_plan else None
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        default_deadline_ms=args.deadline_ms,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        on_failure=args.on_failure,
        retries=args.retries,
        engine_workers=args.engine_workers,
        drain_timeout_s=args.drain_timeout,
        fault_plan=plan,
        store_path=args.store,
        memo_cap=args.memo_cap,
        prewarm=not args.no_prewarm,
        prewarm_cpus=tuple(
            name.strip() for name in args.prewarm_cpu.split(",")
            if name.strip()
        ),
        prewarm_flavors=tuple(
            label.strip() for label in args.prewarm_flavors.split(",")
            if label.strip()
        ),
        prewarm_rollback=args.prewarm_rollback,
        respcache_entries=args.respcache_entries,
        respcache_bytes=int(args.respcache_mb * (1 << 20)),
        adaptive_window=not args.no_adaptive_window,
        min_window_ms=args.min_window_ms,
        registry_paths=_registry_paths(args),
    )
    return asyncio.run(serve_forever(config))


def _cmd_registry(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.registry import KINDS, load_file, validate_document

    registry = _registry(args)
    if args.registry_command == "list":
        kinds = [args.kind] if args.kind else list(KINDS)
        for kind in kinds:
            names = registry.names(kind)
            print(f"{kind} ({len(names)}):")
            for name in names:
                print(f"  {name}")
        return 0
    if args.registry_command == "show":
        rdoc = registry.document(args.kind, args.name)
        print(json.dumps(
            {"schema": rdoc.schema, "name": rdoc.name, "doc": rdoc.doc},
            indent=2,
        ))
        return 0
    if args.registry_command == "validate":
        checked = registry.validate_all()
        roots = ", ".join(str(r) for r in registry.roots)
        print(f"{checked} document(s) valid across {roots}")
        return 0
    # add: validate a document file, then install it under a user root
    rdoc = load_file(Path(args.file), kind=args.kind)
    validate_document(rdoc)
    dest = Path(args.dest) / rdoc.kind / f"{rdoc.name}.json"
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_text(
        json.dumps(
            {"schema": rdoc.schema, "name": rdoc.name, "doc": rdoc.doc},
            indent=2,
        ) + "\n",
        encoding="utf-8",
    )
    print(f"added {rdoc.kind}/{rdoc.name} -> {dest}")
    print(f"use it with --registry-path {args.dest}")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import ArtifactStore
    from repro.store.prune import prune_store

    store = ArtifactStore(args.store)
    namespaces = None
    if args.namespaces:
        namespaces = tuple(
            ns.strip() for ns in args.namespaces.split(",")
            if ns.strip()
        )
    max_bytes = (
        int(args.max_mb * (1 << 20)) if args.max_mb is not None else None
    )
    max_age_s = (
        args.max_age_days * 86400.0
        if args.max_age_days is not None else None
    )
    report = prune_store(
        store,
        max_bytes=max_bytes,
        max_age_s=max_age_s,
        namespaces=namespaces,
        dry_run=args.dry_run,
    )
    print(report.render())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.machine.vector import DType

    failures = 0
    for kernel in all_kernels():
        try:
            checksum = verify_kernel(kernel, args.size, DType.FP64)
            print(f"  {kernel.name:24s} ok (checksum {checksum:.6g})")
        except Exception as exc:  # pragma: no cover - surfaced to user
            failures += 1
            print(f"  {kernel.name:24s} FAILED: {exc}")
    print(f"{64 - failures}/64 kernels verified")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sg2042-repro",
        description="Reproduction of the SC-W 2023 Sophon SG2042 "
        "benchmarking study",
    )
    parser.add_argument(
        "--debug", action="store_true",
        help="re-raise package errors with a full traceback instead of "
        "the one-line message",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list",
                            help="list machines, kernels, experiments")
    _add_registry_flag(p_list)

    p_desc = sub.add_parser("describe", help="describe a machine model")
    p_desc.add_argument("cpu")
    _add_registry_flag(p_desc)

    p_run = sub.add_parser("run", help="run the suite on one machine")
    p_run.add_argument("--cpu", default="sg2042")
    p_run.add_argument("--machine-file", default=None,
                       help="load a custom machine JSON instead of --cpu")
    p_run.add_argument("--threads", type=int, default=1)
    p_run.add_argument("--precision", default="fp64",
                       choices=["fp32", "fp64"])
    p_run.add_argument("--placement", default="block",
                       choices=["block", "cyclic", "cluster"])
    p_run.add_argument("--no-vectorize", action="store_true")
    p_run.add_argument("--compiler", default=None)
    p_run.add_argument("--rollback", action="store_true",
                       help="apply the RVV-rollback tool (Clang on C920)")
    _add_registry_flag(p_run)
    _add_resilience_flags(p_run)
    _add_telemetry_flags(p_run)

    p_exp = sub.add_parser("experiment", help="reproduce a table/figure")
    p_exp.add_argument(
        "name",
        help="experiment id, 'all' (paper tables/figures) or "
        "'ablations' (model-mechanism ablations)",
    )
    p_exp.add_argument("--fast", action="store_true",
                       help="reduced sweeps for quick checks")
    p_exp.add_argument("--chart", action="store_true",
                       help="append an ASCII bar chart (figures only)")
    _add_telemetry_flags(p_exp)

    p_ver = sub.add_parser("verify",
                           help="numerically execute every kernel")
    p_ver.add_argument("--size", type=int, default=10_000)

    p_lint = sub.add_parser(
        "lint",
        help="statically analyze kernel IRs and generated assembly "
        "(exit 0 clean, 3 on error findings)",
    )
    p_lint.add_argument(
        "--all", action="store_true",
        help="lint every kernel IR and every codegen output (default)",
    )
    p_lint.add_argument(
        "--kernels", default=None, metavar="A,B,...",
        help="restrict the race/traits cross-check to these kernels",
    )
    p_lint.add_argument(
        "--no-asm", action="store_true",
        help="skip the generated-assembly sweep",
    )
    p_lint.add_argument(
        "--asm-file", default=None, metavar="FILE.s",
        help="verify one assembly file instead of the model sweeps",
    )
    p_lint.add_argument(
        "--dialect", default="1.0", choices=["0.7.1", "1.0"],
        help="dialect an --asm-file claims to target",
    )
    p_lint.add_argument(
        "--min-severity", default="info",
        choices=["info", "warning", "error"],
        help="hide findings below this severity (exit code is "
        "unaffected)",
    )
    p_lint.add_argument(
        "--transval", action="store_true",
        help="translation-validate every v1.0->v0.7.1 rollback pair "
        "(spec shapes and the BLAS microkernel family) by symbolic "
        "lockstep execution",
    )
    p_lint.add_argument(
        "--demo-miscompile", action="store_true",
        help="run the transval sweep against a hypothetical "
        "tail-agnostic v0.7.1 machine: reduction microkernels provably "
        "miscompile (classified tail-policy ERROR, exit 3)",
    )
    p_lint.add_argument(
        "--registry", action="store_true",
        help="additionally sweep every registry document: schema + "
        "semantic validation, machine digests, and a cross-check of "
        "the compiler decision tables against the run-config defaults "
        "(inconsistencies are ERROR findings, exit 3)",
    )
    _add_registry_flag(p_lint)
    p_lint.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="report format; json is the stable machine-readable "
        "schema the CI artifact uses",
    )

    p_explain = sub.add_parser(
        "explain", help="everything the models know about one kernel"
    )
    p_explain.add_argument("kernel")
    p_explain.add_argument("--cpu", default="sg2042")
    _add_registry_flag(p_explain)
    _add_telemetry_flags(p_explain)

    p_sweep = sub.add_parser(
        "sweep", help="sweep a configuration grid over selected kernels"
    )
    p_sweep.add_argument("--cpu", default="sg2042")
    p_sweep.add_argument("--kernels", default="TRIAD,DAXPY,GEMM",
                         help="comma-separated kernel names")
    p_sweep.add_argument("--threads", default="1,8,32")
    p_sweep.add_argument("--placements", default="cyclic,cluster")
    p_sweep.add_argument("--precisions", default="fp32")
    p_sweep.add_argument("--csv", action="store_true")
    p_sweep.add_argument(
        "--checkpoint", default=None, metavar="FILE.jsonl",
        help="persist completed points here and resume from them",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run up to N grid points concurrently (results are "
        "bit-identical to a serial sweep)",
    )
    p_sweep.add_argument(
        "--workers-mode", default="thread",
        choices=["thread", "process"],
        help="worker pool type for --workers > 1: 'thread' shares the "
        "sweep caches but is GIL-bound, 'process' runs grid points in "
        "separate interpreters (bit-identical results either way)",
    )
    p_sweep.add_argument(
        "--engine", default="batch", choices=["batch", "scalar"],
        help="prediction engine: 'batch' evaluates each "
        "configuration's whole kernel list in one vectorized NumPy "
        "pass, 'scalar' calls the model once per kernel "
        "(bit-identical results)",
    )
    p_sweep.add_argument(
        "--profile", action="store_true",
        help="run the sweep under cProfile and print the top "
        "cumulative-time functions to stderr",
    )
    p_sweep.add_argument(
        "--profile-out", default=None, metavar="FILE",
        help="write the full pstats text report to FILE instead of "
        "stderr (implies --profile)",
    )
    p_sweep.add_argument(
        "--hosts", type=int, default=1, metavar="N",
        help="shard the grid across N simulated hosts over the SPMD "
        "cluster runtime (bit-identical results and cache counters)",
    )
    p_sweep.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent artifact store: compile reports, lowered "
        "kernels and predictions are read from and written to DIR, so "
        "a second process starts near-warm (see 'repro warm')",
    )
    p_sweep.add_argument(
        "--memo-cap", type=int, default=None, metavar="N",
        help="bound the prediction memo's in-memory tier to N entries "
        "(LRU); with --store, evicted entries stay readable on disk",
    )
    p_sweep.add_argument(
        "--no-cache", action="store_true",
        help="disable the compile cache and prediction memo (the "
        "scalar-reference cold path; incompatible with --store)",
    )
    p_sweep.add_argument(
        "--stats-out", default=None, metavar="FILE",
        help="write in-process sweep seconds + cache/store counters "
        "as JSON to FILE (for cross-process benchmark comparisons)",
    )
    _add_registry_flag(p_sweep)
    _add_resilience_flags(p_sweep)
    _add_telemetry_flags(p_sweep)

    p_warm = sub.add_parser(
        "warm",
        help="pre-populate a persistent artifact store: compile the "
        "kernel catalog and persist every report + the SoA lowering",
    )
    p_warm.add_argument(
        "--store", required=True, metavar="DIR",
        help="artifact store directory (created if missing)",
    )
    p_warm.add_argument(
        "--cpu", default="sg2042",
        help="machine name, comma-separated list, or 'all'",
    )
    p_warm.add_argument(
        "--kernels", default="all",
        help="comma-separated kernel names, or 'all' (default: the "
        "whole 64-kernel catalog)",
    )
    p_warm.add_argument(
        "--flavors", default="vls",
        help="comma-separated vector flavors to compile (vls,vla)",
    )
    p_warm.add_argument(
        "--rollback", action="store_true",
        help="additionally warm the RVV-rollback variants",
    )
    p_warm.add_argument(
        "--compiler", default=None,
        help="compiler short id (default: the platform default)",
    )
    _add_registry_flag(p_warm)

    p_trace = sub.add_parser(
        "trace",
        help="run a sweep or experiment under telemetry and export "
        "the span trace",
    )
    p_trace.add_argument(
        "target",
        help="'sweep' (grid flags below) or an experiment name",
    )
    p_trace.add_argument("--cpu", default="sg2042")
    p_trace.add_argument("--kernels", default="TRIAD,DAXPY,GEMM",
                         help="comma-separated kernel names (sweep)")
    p_trace.add_argument("--threads", default="1,8,32")
    p_trace.add_argument("--placements", default="cyclic,cluster")
    p_trace.add_argument("--precisions", default="fp32")
    p_trace.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="grid points dispatched concurrently (sweep)",
    )
    p_trace.add_argument(
        "--workers-mode", default="thread",
        choices=["thread", "process"],
        help="worker pool type for --workers > 1 (sweep)",
    )
    p_trace.add_argument(
        "--engine", default="batch", choices=["batch", "scalar"],
        help="prediction engine (sweep)",
    )
    p_trace.add_argument("--fast", action="store_true",
                         help="reduced sweeps (experiment targets)")
    p_trace.add_argument(
        "--trace-out", default="trace.json", metavar="FILE",
        help="span trace output — Chrome trace-event JSON, or JSONL "
        "when FILE ends in .jsonl (default: trace.json)",
    )
    p_trace.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="also write the flat metrics dump to FILE",
    )
    _add_registry_flag(p_trace)

    p_serve = sub.add_parser(
        "serve",
        help="run the fault-tolerant prediction service (HTTP/JSON): "
        "/predict, /sweep, /explain, /machines, /healthz, /readyz, "
        "/metrics",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="TCP port (0 picks a free one)")
    p_serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="admission limit; beyond it requests are shed with a "
        "structured 429 and Retry-After",
    )
    p_serve.add_argument(
        "--deadline-ms", type=float, default=2000.0,
        help="default per-request deadline when the client sends none",
    )
    p_serve.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="coalescing window: requests arriving within it are "
        "batched into one engine call",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=64,
        help="largest coalesced batch per engine call",
    )
    p_serve.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="consecutive engine faults that open the circuit breaker",
    )
    p_serve.add_argument(
        "--breaker-cooldown", type=float, default=1.0, metavar="S",
        help="seconds the breaker stays open before probing half-open",
    )
    p_serve.add_argument(
        "--on-failure", default="retry", choices=["abort", "skip",
                                                  "retry"],
        help="engine failure policy inside a coalesced batch",
    )
    p_serve.add_argument(
        "--retries", type=int, default=2,
        help="retry budget per kernel for --on-failure retry",
    )
    p_serve.add_argument(
        "--engine-workers", type=int, default=2,
        help="engine thread pool size (forced to 1 under --fault-plan)",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="S",
        help="seconds to wait for in-flight requests on shutdown",
    )
    p_serve.add_argument(
        "--fault-plan", default=None, metavar="PLAN.json",
        help="mount this seeded chaos plan inside the server "
        "(resilience drills)",
    )
    p_serve.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent artifact store backing the engine caches; "
        "/readyz reports not-ready until the startup pre-warm from "
        "DIR completes",
    )
    p_serve.add_argument(
        "--memo-cap", type=int, default=None, metavar="N",
        help="bound the prediction memo's in-memory tier to N entries "
        "per machine (LRU) so a long-lived server stays bounded",
    )
    p_serve.add_argument(
        "--no-prewarm", action="store_true",
        help="with --store: skip the startup pre-warm (the server is "
        "ready immediately and warms lazily per request)",
    )
    p_serve.add_argument(
        "--prewarm-cpu", default="sg2042", metavar="NAME[,NAME...]",
        help="machine(s) the startup pre-warm compiles for",
    )
    p_serve.add_argument(
        "--prewarm-flavors", default="", metavar="FLAVOR[,FLAVOR...]",
        help="extra vector flavors (vla) the pre-warm also resolves, "
        "so flavored requests hit warm caches",
    )
    p_serve.add_argument(
        "--prewarm-rollback", action="store_true",
        help="also pre-warm the RVV-rollback combo for each flavor",
    )
    p_serve.add_argument(
        "--respcache-entries", type=int, default=2048, metavar="N",
        help="response-cache entry cap (0 disables the response "
        "cache entirely)",
    )
    p_serve.add_argument(
        "--respcache-mb", type=float, default=64.0, metavar="MB",
        help="response-cache body-byte budget in megabytes",
    )
    p_serve.add_argument(
        "--no-adaptive-window", action="store_true",
        help="use a fixed coalescing window instead of adapting it "
        "to the arrival rate (--batch-window-ms is then exact, not "
        "a cap)",
    )
    p_serve.add_argument(
        "--min-window-ms", type=float, default=0.0,
        help="floor of the adaptive coalescing window",
    )
    _add_registry_flag(p_serve)

    p_reg = sub.add_parser(
        "registry",
        help="inspect, validate and extend the document registry "
        "(machines, kernels, compilers, faults, placements)",
    )
    reg_sub = p_reg.add_subparsers(dest="registry_command",
                                   required=True)
    p_reg_list = reg_sub.add_parser(
        "list", help="list registered documents by kind")
    p_reg_list.add_argument(
        "--kind", default=None,
        choices=["machines", "kernels", "compilers", "faults",
                 "placements"],
        help="restrict the listing to one kind (default: all kinds)",
    )
    _add_registry_flag(p_reg_list)
    p_reg_show = reg_sub.add_parser(
        "show", help="print one document's JSON envelope")
    p_reg_show.add_argument("kind",
                            choices=["machines", "kernels", "compilers",
                                     "faults", "placements"])
    p_reg_show.add_argument("name")
    _add_registry_flag(p_reg_show)
    p_reg_val = reg_sub.add_parser(
        "validate",
        help="semantically validate every registered document "
        "(exit 2 on the first inconsistency)",
    )
    _add_registry_flag(p_reg_val)
    p_reg_add = reg_sub.add_parser(
        "add",
        help="validate a document file and install it under a user "
        "registry root (usable via --registry-path)",
    )
    p_reg_add.add_argument("file", help="document file (JSON or TOML)")
    p_reg_add.add_argument(
        "--dest", required=True, metavar="DIR",
        help="user registry root to install into (created if missing)",
    )
    p_reg_add.add_argument(
        "--kind", default=None,
        choices=["machines", "kernels", "compilers", "faults",
                 "placements"],
        help="kind the document must declare (default: from its "
        "schema field)",
    )
    _add_registry_flag(p_reg_add)

    p_store = sub.add_parser(
        "store",
        help="manage a persistent artifact store",
    )
    store_sub = p_store.add_subparsers(dest="store_command",
                                       required=True)
    p_prune = store_sub.add_parser(
        "prune",
        help="size-cap + age-based garbage collection for a store "
        "directory; deleted artifacts recompute on demand",
    )
    p_prune.add_argument(
        "--store", required=True, metavar="DIR",
        help="artifact store directory to prune",
    )
    p_prune.add_argument(
        "--max-mb", type=float, default=None, metavar="MB",
        help="keep the store under this many megabytes (oldest "
        "artifacts deleted first, across namespaces)",
    )
    p_prune.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="delete artifacts older than this many days",
    )
    p_prune.add_argument(
        "--namespaces", default=None, metavar="NS[,NS...]",
        help="restrict the prune to these namespaces "
        "(default: all known namespaces)",
    )
    p_prune.add_argument(
        "--dry-run", action="store_true",
        help="report what would be deleted without deleting anything",
    )

    p_an = sub.add_parser(
        "analyze",
        help="roofline or bottleneck analysis of a machine",
    )
    p_an.add_argument("mode",
                      choices=["roofline", "bottleneck", "sensitivity"])
    p_an.add_argument("--cpu", default="sg2042")
    p_an.add_argument("--threads", type=int, default=1)
    p_an.add_argument("--precision", default="fp64",
                      choices=["fp32", "fp64"])
    p_an.add_argument("--placement", default="cluster",
                      choices=["block", "cyclic", "cluster"])
    _add_registry_flag(p_an)

    p_meas = sub.add_parser(
        "measure",
        help="time the NumPy kernel implementations on this host",
    )
    p_meas.add_argument("--kernel-class", default="stream",
                        choices=["all", "algorithm", "apps", "basic",
                                 "lcals", "polybench", "stream"])
    p_meas.add_argument("--size", type=int, default=100_000)
    p_meas.add_argument("--precision", default="fp64",
                        choices=["fp32", "fp64"])
    _add_telemetry_flags(p_meas)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "describe": _cmd_describe,
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "verify": _cmd_verify,
        "lint": _cmd_lint,
        "measure": _cmd_measure,
        "analyze": _cmd_analyze,
        "sweep": _cmd_sweep,
        "explain": _cmd_explain,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
        "warm": _cmd_warm,
        "store": _cmd_store,
        "registry": _cmd_registry,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        if args.debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
