"""Lcals class: the Livermore Compiler Analysis Loop Suite (11 kernels).

Includes tridiagonal elimination and the general linear recurrence — true
loop-carried dependences that no compiler vectorizes directly. Their NumPy
implementations use recursive doubling (O(n log n) but fully vectorized),
a standard parallel reformulation of first-order recurrences.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import (
    Kernel,
    KernelClass,
    KernelTraits,
    LoopFeature,
    Workspace,
    linspace_init,
    numpy_dtype,
)
from repro.machine.vector import DType

_LCALS_SIZE = 1_000_000


def solve_linear_recurrence(
    coef: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Solve ``x[i] = rhs[i] + coef[i] * x[i-1]`` (with ``x[-1] = 0``)
    by recursive doubling in float64.

    Composition of the affine maps ``x -> rhs + coef*x`` is associative,
    so log2(n) vectorized passes suffice — the classic parallel scan
    formulation of a first-order linear recurrence.
    """
    x = rhs.astype(np.float64).copy()
    c = coef.astype(np.float64).copy()
    n = x.size
    shift = 1
    while shift < n:
        x[shift:] = x[shift:] + c[shift:] * x[:-shift]
        c[shift:] = c[shift:] * c[:-shift]
        shift *= 2
    return x


class DiffPredict(Kernel):
    """LCALS kernel 2: difference predictors — 13-term elementwise update
    over a strided predictor array."""

    name = "DIFF_PREDICT"
    klass = KernelClass.LCALS
    default_size = _LCALS_SIZE
    reps = 200
    traits = KernelTraits(
        flops_per_iter=13.0,
        reads_per_iter=14.0,
        writes_per_iter=13.0,
        footprint_elems=28.0,
        features=frozenset({LoopFeature.NONUNIT_STRIDE}),
        vector_speedup_cap=0.6,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        px = self.rng().random((14, n)).astype(npdt)
        cx = self.rng(1).random(n).astype(npdt)
        return {"px": px, "cx": cx}

    def execute(self, ws: Workspace) -> None:
        px, cx = ws["px"], ws["cx"]
        ar = cx.copy()
        for j in range(13):
            br = ar - px[j]
            px[j] = ar
            ar = br


class Eos(Kernel):
    """LCALS equation-of-state fragment: elementwise with forward stencil
    reads on ``u``."""

    name = "EOS"
    klass = KernelClass.LCALS
    default_size = _LCALS_SIZE
    reps = 300
    traits = KernelTraits(
        flops_per_iter=16.0,
        reads_per_iter=4.0,
        writes_per_iter=1.0,
        footprint_elems=4.0,
        features=frozenset(
            {LoopFeature.STREAMING, LoopFeature.STENCIL,
             LoopFeature.ALIAS_UNPROVABLE}
        ),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        m = n + 8
        return {
            "x": np.zeros(n, dtype=npdt),
            "y": linspace_init(m, dtype, 0.0, 1.0),
            "z": linspace_init(m, dtype, 1.0, 2.0),
            "u": linspace_init(m, dtype, 0.5, 1.5),
            "q": npdt(0.5), "r": npdt(0.25), "t": npdt(0.125),
        }

    def execute(self, ws: Workspace) -> None:
        n = ws["x"].size
        y, z, u = ws["y"], ws["z"], ws["u"]
        q, r, t = ws["q"], ws["r"], ws["t"]
        ws["x"][:] = (
            u[:n]
            + r * (z[:n] + r * y[:n])
            + t * (
                u[3 : n + 3]
                + r * (u[2 : n + 2] + r * u[1 : n + 1])
                + t * (u[6 : n + 6] + q * (u[5 : n + 5] + q * u[4 : n + 4]))
            )
        )


class FirstDiff(Kernel):
    """LCALS first difference: ``x[i] = y[i+1] - y[i]``."""

    name = "FIRST_DIFF"
    klass = KernelClass.LCALS
    default_size = _LCALS_SIZE
    reps = 500
    traits = KernelTraits(
        flops_per_iter=1.0,
        reads_per_iter=2.0,
        writes_per_iter=1.0,
        footprint_elems=2.0,
        features=frozenset({LoopFeature.STREAMING, LoopFeature.STENCIL}),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        y = linspace_init(n + 1, dtype, 0.0, 1.0) ** 2
        return {"x": np.zeros(n, dtype=y.dtype), "y": y}

    def execute(self, ws: Workspace) -> None:
        y = ws["y"]
        np.subtract(y[1:], y[:-1], out=ws["x"])


class FirstMin(Kernel):
    """LCALS first minimum: value and location of the array minimum —
    a min-with-index reduction compilers struggle to vectorize."""

    name = "FIRST_MIN"
    klass = KernelClass.LCALS
    default_size = _LCALS_SIZE
    reps = 300
    traits = KernelTraits(
        flops_per_iter=1.0,
        reads_per_iter=1.0,
        writes_per_iter=0.0,
        footprint_elems=1.0,
        features=frozenset(
            {LoopFeature.REDUCTION_MINMAX, LoopFeature.CONDITIONAL}
        ),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        x = self.rng().random(n).astype(numpy_dtype(dtype))
        x[n // 2] = -1.0
        return {"x": x, "loc": 0, "val": 0.0}

    def execute(self, ws: Workspace) -> None:
        ws["loc"] = int(np.argmin(ws["x"]))
        ws["val"] = float(ws["x"][ws["loc"]])

    def checksum(self, ws: Workspace) -> float:
        return float(ws["loc"]) + ws["val"]


class FirstSum(Kernel):
    """LCALS first sum: ``x[i] = y[i-1] + y[i]``."""

    name = "FIRST_SUM"
    klass = KernelClass.LCALS
    default_size = _LCALS_SIZE
    reps = 500
    traits = KernelTraits(
        flops_per_iter=1.0,
        reads_per_iter=2.0,
        writes_per_iter=1.0,
        footprint_elems=2.0,
        features=frozenset(
            {LoopFeature.STREAMING, LoopFeature.STENCIL,
             LoopFeature.ALIAS_UNPROVABLE}
        ),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        y = linspace_init(n, dtype, 0.0, 1.0) ** 2
        return {"x": np.zeros_like(y), "y": y}

    def execute(self, ws: Workspace) -> None:
        x, y = ws["x"], ws["y"]
        x[0] = y[0] + y[0]
        np.add(y[:-1], y[1:], out=x[1:])


class GenLinRecur(Kernel):
    """LCALS general linear recurrence: ``b5[k] = sa[k] + sb[k]*b5[k-1]``
    — a true sequential dependence, solved here by recursive doubling."""

    name = "GEN_LIN_RECUR"
    klass = KernelClass.LCALS
    default_size = _LCALS_SIZE
    reps = 100
    traits = KernelTraits(
        flops_per_iter=4.0,
        reads_per_iter=3.0,
        writes_per_iter=1.0,
        footprint_elems=3.0,
        features=frozenset({LoopFeature.LOOP_CARRIED_DEP}),
        parallel_fraction=0.70,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        rng = self.rng()
        sa = rng.random(n).astype(npdt)
        # Coefficients below 1 in magnitude keep the recurrence stable.
        sb = (rng.random(n) * 0.9 - 0.45).astype(npdt)
        return {"sa": sa, "sb": sb, "b5": np.zeros(n, dtype=npdt)}

    def execute(self, ws: Workspace) -> None:
        result = solve_linear_recurrence(ws["sb"], ws["sa"])
        ws["b5"][:] = result.astype(ws["b5"].dtype)


class Hydro1d(Kernel):
    """LCALS hydro fragment: ``x[i] = q + y[i]*(r*z[i+10] + t*z[i+11])``."""

    name = "HYDRO_1D"
    klass = KernelClass.LCALS
    default_size = _LCALS_SIZE
    reps = 500
    traits = KernelTraits(
        flops_per_iter=5.0,
        reads_per_iter=3.0,
        writes_per_iter=1.0,
        footprint_elems=3.0,
        features=frozenset({LoopFeature.STREAMING, LoopFeature.STENCIL}),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        return {
            "x": np.zeros(n, dtype=npdt),
            "y": linspace_init(n, dtype, 0.0, 1.0),
            "z": linspace_init(n + 12, dtype, 1.0, 2.0),
            "q": npdt(0.5), "r": npdt(0.25), "t": npdt(0.125),
        }

    def execute(self, ws: Workspace) -> None:
        n = ws["x"].size
        z = ws["z"]
        ws["x"][:] = ws["q"] + ws["y"] * (
            ws["r"] * z[10 : n + 10] + ws["t"] * z[11 : n + 11]
        )


class Hydro2d(Kernel):
    """LCALS 2D hydrodynamics fragment over ``sqrt(n)``-sided grids with
    neighbour stencils."""

    name = "HYDRO_2D"
    klass = KernelClass.LCALS
    default_size = _LCALS_SIZE
    reps = 100
    traits = KernelTraits(
        flops_per_iter=20.0,
        reads_per_iter=12.0,
        writes_per_iter=3.0,
        footprint_elems=9.0,
        features=frozenset(
            {LoopFeature.STENCIL, LoopFeature.OUTER_ONLY_PARALLEL,
             LoopFeature.ALIAS_UNPROVABLE}
        ),
        vector_speedup_cap=0.7,
    )

    @staticmethod
    def grid_dim(n: int) -> int:
        return max(4, int(round(n ** 0.5)))

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = self.grid_dim(n)
        npdt = numpy_dtype(dtype)
        rng = self.rng()
        shape = (dim, dim)
        return {
            "za": np.zeros(shape, dtype=npdt),
            "zb": np.zeros(shape, dtype=npdt),
            "zm": np.zeros(shape, dtype=npdt),
            "zp": rng.random(shape).astype(npdt),
            "zq": rng.random(shape).astype(npdt),
            "zr": rng.random(shape).astype(npdt),
            "zu": rng.random(shape).astype(npdt),
            "zv": rng.random(shape).astype(npdt),
            "zz": rng.random(shape).astype(npdt),
            "s": npdt(0.0041),
            "t": npdt(0.0037),
        }

    def execute(self, ws: Workspace) -> None:
        zp, zq, zr = ws["zp"], ws["zq"], ws["zr"]
        zu, zv, zz = ws["zu"], ws["zv"], ws["zz"]
        za, zb, zm = ws["za"], ws["zb"], ws["zm"]
        s, t = ws["s"], ws["t"]
        j = slice(1, -1)
        jm = slice(0, -2)
        jp = slice(2, None)
        za[j, j] = (
            (zp[jm, j] + zq[jm, j])
            * (zr[j, j] + zr[jm, j])
            / (zm[jm, j] + zm[j, j] + 1.0)
        )
        zb[j, j] = (
            (zp[j, jm] + zq[j, jm])
            * (zr[j, j] + zr[j, jm])
            / (zm[j, jm] + zm[j, j] + 1.0)
        )
        zu[j, j] += s * (
            za[j, j] * (zz[j, j] - zz[j, jp])
            - za[j, jm] * (zz[j, j] - zz[j, jm])
            - zb[j, j] * (zz[j, j] - zz[jm, j])
            + zb[jp, j] * (zz[j, j] - zz[jp, j])
        )
        zv[j, j] += s * (
            za[j, j] * (zr[j, j] - zr[j, jp])
            - za[j, jm] * (zr[j, j] - zr[j, jm])
            - zb[j, j] * (zr[j, j] - zr[jm, j])
            + zb[jp, j] * (zr[j, j] - zr[jp, j])
        )
        zr[j, j] = zr[j, j] + t * zu[j, j]
        zz[j, j] = zz[j, j] + t * zv[j, j]


class IntPredict(Kernel):
    """LCALS integrate predictors: elementwise polynomial combination of
    13 predictor terms."""

    name = "INT_PREDICT"
    klass = KernelClass.LCALS
    default_size = _LCALS_SIZE
    reps = 300
    traits = KernelTraits(
        flops_per_iter=17.0,
        reads_per_iter=13.0,
        writes_per_iter=1.0,
        footprint_elems=13.0,
        features=frozenset({LoopFeature.NONUNIT_STRIDE}),
        vector_speedup_cap=0.6,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        px = self.rng().random((13, n)).astype(npdt)
        coeffs = np.asarray(
            [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 0.05],
            dtype=npdt,
        )
        return {"px": px, "c": coeffs}

    def execute(self, ws: Workspace) -> None:
        px, c = ws["px"], ws["c"]
        acc = c[0] * px[1]
        for j in range(1, 12):
            acc = acc + c[j] * px[j + 1]
        px[0] = acc


class Planckian(Kernel):
    """LCALS Planckian distribution: ``w = x / (exp(u/v) - 1)`` — the
    transcendental-heavy loop."""

    name = "PLANCKIAN"
    klass = KernelClass.LCALS
    default_size = _LCALS_SIZE
    reps = 100
    traits = KernelTraits(
        flops_per_iter=25.0,  # exp expansion dominates
        reads_per_iter=3.0,
        writes_per_iter=2.0,
        footprint_elems=5.0,
        features=frozenset(
            {LoopFeature.STREAMING, LoopFeature.MATH_CALL}
        ),
        vector_speedup_cap=0.8,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        u = linspace_init(n, dtype, 0.1, 2.0)
        v = linspace_init(n, dtype, 0.5, 1.5)
        return {
            "x": linspace_init(n, dtype, 0.0, 1.0),
            "u": u,
            "v": v,
            "y": np.zeros(n, dtype=npdt),
            "w": np.zeros(n, dtype=npdt),
        }

    def execute(self, ws: Workspace) -> None:
        np.divide(ws["u"], ws["v"], out=ws["y"])
        np.expm1(ws["y"], out=ws["w"])
        np.divide(ws["x"], ws["w"], out=ws["w"])


class TridiagElim(Kernel):
    """LCALS tridiagonal elimination, below diagonal:
    ``x[i] = z[i] * (y[i] - x[i-1])`` — a loop-carried dependence solved
    by recursive doubling."""

    name = "TRIDIAG_ELIM"
    klass = KernelClass.LCALS
    default_size = _LCALS_SIZE
    reps = 100
    traits = KernelTraits(
        flops_per_iter=2.0,
        reads_per_iter=3.0,
        writes_per_iter=1.0,
        footprint_elems=3.0,
        features=frozenset({LoopFeature.LOOP_CARRIED_DEP}),
        parallel_fraction=0.70,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        rng = self.rng()
        y = rng.random(n).astype(npdt)
        z = (rng.random(n) * 0.9 - 0.45).astype(npdt)
        return {"x": np.zeros(n, dtype=npdt), "y": y, "z": z}

    def execute(self, ws: Workspace) -> None:
        # x[i] = z[i]*y[i] + (-z[i]) * x[i-1]
        z = ws["z"]
        rhs = z * ws["y"]
        result = solve_linear_recurrence(-z, rhs)
        ws["x"][:] = result.astype(ws["x"].dtype)


LCALS_KERNELS = (
    DiffPredict,
    Eos,
    FirstDiff,
    FirstMin,
    FirstSum,
    GenLinRecur,
    Hydro1d,
    Hydro2d,
    IntPredict,
    Planckian,
    TridiagElim,
)
