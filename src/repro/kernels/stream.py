"""Stream class: the five memory-bandwidth kernels (ADD, COPY, DOT, MUL,
TRIAD), modelled on McCalpin's STREAM as packaged in RAJAPerf.

These are the kernels GCC auto-vectorizes completely (the paper notes the
stream class is "unique as GCC is able to vectorise all of its constituent
kernels"), which is why it shows the largest FP32 vectorization benefit in
Figure 2.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import (
    Kernel,
    KernelClass,
    KernelTraits,
    LoopFeature,
    Workspace,
    linspace_init,
)
from repro.machine.vector import DType

_STREAM_FEATURES = frozenset({LoopFeature.STREAMING})

#: RAJAPerf stream default problem size (1M elements) — three 8-byte
#: arrays total 24 MB, which *fits the SG2042's 64 MiB L3* but not the
#: Sandybridge's 10 MiB L3: the mechanism behind Figure 4's stream bars.
_STREAM_SIZE = 1_000_000
_STREAM_REPS = 1000


class StreamAdd(Kernel):
    """``c[i] = a[i] + b[i]``."""

    name = "ADD"
    klass = KernelClass.STREAM
    default_size = _STREAM_SIZE
    reps = _STREAM_REPS
    traits = KernelTraits(
        flops_per_iter=1.0,
        reads_per_iter=2.0,
        writes_per_iter=1.0,
        footprint_elems=3.0,
        features=_STREAM_FEATURES,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        return {
            "a": linspace_init(n, dtype, 0.0, 1.0),
            "b": linspace_init(n, dtype, 1.0, 2.0),
            "c": np.zeros(n, dtype=linspace_init(1, dtype).dtype),
        }

    def execute(self, ws: Workspace) -> None:
        np.add(ws["a"], ws["b"], out=ws["c"])


class StreamCopy(Kernel):
    """``c[i] = a[i]``."""

    name = "COPY"
    klass = KernelClass.STREAM
    default_size = _STREAM_SIZE
    reps = _STREAM_REPS
    traits = KernelTraits(
        flops_per_iter=0.0,
        reads_per_iter=1.0,
        writes_per_iter=1.0,
        footprint_elems=2.0,
        features=_STREAM_FEATURES,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        return {
            "a": linspace_init(n, dtype, 0.0, 1.0),
            "c": np.zeros(n, dtype=linspace_init(1, dtype).dtype),
        }

    def execute(self, ws: Workspace) -> None:
        np.copyto(ws["c"], ws["a"])


class StreamDot(Kernel):
    """``dot += a[i] * b[i]`` — the only stream kernel with a reduction."""

    name = "DOT"
    klass = KernelClass.STREAM
    default_size = _STREAM_SIZE
    reps = _STREAM_REPS
    traits = KernelTraits(
        flops_per_iter=2.0,
        reads_per_iter=2.0,
        writes_per_iter=0.0,
        footprint_elems=2.0,
        features=_STREAM_FEATURES | {LoopFeature.REDUCTION_SUM},
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        return {
            "a": linspace_init(n, dtype, 0.0, 1.0),
            "b": linspace_init(n, dtype, 1.0, 2.0),
            "dot": 0.0,
        }

    def execute(self, ws: Workspace) -> None:
        ws["dot"] = float(np.dot(ws["a"], ws["b"]))

    def checksum(self, ws: Workspace) -> float:
        return ws["dot"]


class StreamMul(Kernel):
    """``b[i] = alpha * c[i]``."""

    name = "MUL"
    klass = KernelClass.STREAM
    default_size = _STREAM_SIZE
    reps = _STREAM_REPS
    traits = KernelTraits(
        flops_per_iter=1.0,
        reads_per_iter=1.0,
        writes_per_iter=1.0,
        footprint_elems=2.0,
        features=_STREAM_FEATURES,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        arr = linspace_init(n, dtype, 0.0, 1.0)
        return {
            "b": np.zeros_like(arr),
            "c": arr,
            "alpha": arr.dtype.type(0.5),
        }

    def execute(self, ws: Workspace) -> None:
        np.multiply(ws["c"], ws["alpha"], out=ws["b"])


class StreamTriad(Kernel):
    """``a[i] = b[i] + alpha * c[i]`` — the canonical STREAM triad."""

    name = "TRIAD"
    klass = KernelClass.STREAM
    default_size = _STREAM_SIZE
    reps = _STREAM_REPS
    traits = KernelTraits(
        flops_per_iter=2.0,
        reads_per_iter=2.0,
        writes_per_iter=1.0,
        footprint_elems=3.0,
        features=_STREAM_FEATURES,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        b = linspace_init(n, dtype, 0.0, 1.0)
        return {
            "a": np.zeros_like(b),
            "b": b,
            "c": linspace_init(n, dtype, 1.0, 2.0),
            "alpha": b.dtype.type(0.5),
        }

    def execute(self, ws: Workspace) -> None:
        # a = b + alpha * c without a temporary: multiply into a, then add.
        np.multiply(ws["c"], ws["alpha"], out=ws["a"])
        np.add(ws["a"], ws["b"], out=ws["a"])


STREAM_KERNELS = (StreamAdd, StreamCopy, StreamDot, StreamMul, StreamTriad)
