"""BLAS library-kernel family: GEMM/GEMV/TRSM/SYRK-shaped workloads.

The paper's ecosystem finding is that the SG2042's RVV 0.7.1 breaks the
library stack — OpenBLAS miscomputes under the v1.0->v0.7.1 rollback
(the HPCGame problem in SNIPPETS.md). This module models that stack:
each kernel is a blocked BLAS routine characterized like the RAJAPerf
kernels (traits + loop-nest IR in :mod:`repro.kernels.ir_defs`) and
additionally names the **vector microkernel** its inner loop compiles
to:

* ``"dot"`` — the inner-product micro-tile (GEMM/GEMV): a vector
  accumulator carries partial sums *across strips in its tail lanes*,
  folded once at the end. Correct only under tail-undisturbed
  semantics — the microkernel the rollback can miscompile.
* ``"update"`` — the load-modify-store micro-tile (TRSM elimination
  steps, SYRK rank-k accumulation): every lane is written back each
  strip, so no value survives in a tail lane.

``repro lint --transval`` rolls each microkernel back to v0.7.1 and
proves (or refutes) semantic equivalence; :mod:`repro.apps.hpl`
consumes the verdicts to predict whole-application impact — a kernel
whose rollback fails validation must take the scalar fallback path,
exactly what OpenBLAS's generic C kernels do.

The family deliberately lives *outside* the 64-kernel RAJAPerf
registry (the suite composition is pinned to the paper); lookup goes
through :func:`repro.kernels.registry.get_kernel`'s library fallback.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import (
    Kernel,
    KernelClass,
    KernelTraits,
    LoopFeature,
    Workspace,
    numpy_dtype,
)
from repro.machine.vector import DType
from repro.util.errors import ConfigError

#: Microkernel shapes a BLAS kernel's inner loop compiles to.
MICROKERNELS = ("dot", "update")


def _square(n: int) -> int:
    return max(1, int(round(n ** 0.5)))


def _matrix(kernel: Kernel, dim: int, dtype: DType, salt: int) -> np.ndarray:
    rng = kernel.rng(salt)
    return rng.random((dim, dim)).astype(numpy_dtype(dtype))


class BlasKernel(Kernel):
    """A BLAS routine with a named vector microkernel."""

    #: Which micro-tile the inner loop lowers to ("dot" or "update").
    microkernel: str = "dot"
    #: The accumulating vector op of an "update" microkernel.
    update_op: str = "vfmacc.vv"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if getattr(cls, "name", "") and cls.microkernel not in MICROKERNELS:
            raise ConfigError(
                f"{cls.name}: unknown microkernel {cls.microkernel!r}"
            )


class Dgemm(BlasKernel):
    """Blocked ``C = alpha*A@B + beta*C`` — HPL's flop carrier.

    The micro-tile is a dot product: the k-loop accumulates into vector
    registers and folds once per tile, so the rollback must preserve
    tail-undisturbed accumulator lanes.
    """

    name = "DGEMM"
    klass = KernelClass.POLYBENCH
    default_size = 1_000_000  # -> 1000x1000
    reps = 5
    microkernel = "dot"
    traits = KernelTraits(
        flops_per_iter=2000.0,  # 2*N per element at N=1000
        reads_per_iter=2.0,
        writes_per_iter=1.0,
        footprint_elems=3.0,
        features=frozenset(
            {LoopFeature.OUTER_ONLY_PARALLEL, LoopFeature.SMALL_INNER_TRIP}
        ),
        traffic_scale=0.05,  # blocked: most operands come from cache
        vector_speedup_cap=0.8,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = _square(n)
        npdt = numpy_dtype(dtype)
        return {
            "A": _matrix(self, dim, dtype, 0),
            "B": _matrix(self, dim, dtype, 1),
            "C": _matrix(self, dim, dtype, 2),
            "alpha": npdt(1.5),
            "beta": npdt(1.2),
        }

    def execute(self, ws: Workspace) -> None:
        C = ws["C"]
        C *= ws["beta"]
        C += ws["alpha"] * (ws["A"] @ ws["B"])


class Dgemv(BlasKernel):
    """``y = alpha*A@x + beta*y`` — one dot product per output row."""

    name = "DGEMV"
    klass = KernelClass.POLYBENCH
    default_size = 1_000_000
    reps = 50
    microkernel = "dot"
    traits = KernelTraits(
        flops_per_iter=2.0,
        reads_per_iter=1.0,
        writes_per_iter=0.01,
        footprint_elems=1.0,
        features=frozenset(
            {LoopFeature.NESTED_REDUCTION, LoopFeature.OUTER_ONLY_PARALLEL}
        ),
        vector_speedup_cap=0.7,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = _square(n)
        npdt = numpy_dtype(dtype)
        rng = self.rng(1)
        return {
            "A": _matrix(self, dim, dtype, 0),
            "x": rng.random(dim).astype(npdt),
            "y": np.zeros(dim, dtype=npdt),
            "alpha": npdt(1.5),
            "beta": npdt(1.2),
        }

    def execute(self, ws: Workspace) -> None:
        y = ws["y"]
        y *= ws["beta"]
        y += ws["alpha"] * (ws["A"] @ ws["x"])


class Dtrsm(BlasKernel):
    """Triangular solve ``L x = b`` (forward substitution).

    The elimination step is an update microkernel: each solved unknown
    is scattered into the remaining right-hand side with ``vfnmsac``
    (``b[i] -= L[i,j] * x[j]``) — a load-modify-store with no live tail
    state. The solve order itself is a true recurrence.
    """

    name = "DTRSM"
    klass = KernelClass.POLYBENCH
    default_size = 1_000_000
    reps = 20
    microkernel = "update"
    update_op = "vfnmsac.vv"
    traits = KernelTraits(
        flops_per_iter=2.0,
        reads_per_iter=2.0,
        writes_per_iter=1.0,
        footprint_elems=1.5,
        features=frozenset({LoopFeature.LOOP_CARRIED_DEP}),
        parallel_fraction=0.70,
        vector_speedup_cap=0.6,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = _square(n)
        npdt = numpy_dtype(dtype)
        rng = self.rng(1)
        L = np.tril(_matrix(self, dim, dtype, 0)) + np.eye(
            dim, dtype=npdt
        ) * npdt(dim)
        return {"L": L, "b": rng.random(dim).astype(npdt)}

    def execute(self, ws: Workspace) -> None:
        L, b = ws["L"], ws["b"]
        x = b.copy()
        for j in range(L.shape[0]):
            x[j] /= L[j, j]
            # The update microkernel: b[j+1:] -= L[j+1:, j] * x[j].
            x[j + 1:] -= L[j + 1:, j] * x[j]
        ws["x"] = x

    def checksum(self, ws: Workspace) -> float:
        return float(np.sum(ws.get("x", ws["b"]), dtype=np.float64))


class Dsyrk(BlasKernel):
    """Rank-k update ``C = alpha*A@A.T + beta*C``.

    Blocked like GEMM but the accumulation streams through memory
    (``C`` tiles are loaded, updated with ``vfmacc`` and stored back),
    so the microkernel is an update, not a dot.
    """

    name = "DSYRK"
    klass = KernelClass.POLYBENCH
    default_size = 1_000_000
    reps = 5
    microkernel = "update"
    update_op = "vfmacc.vv"
    traits = KernelTraits(
        flops_per_iter=2000.0,
        reads_per_iter=2.0,
        writes_per_iter=1.0,
        footprint_elems=2.0,
        features=frozenset(
            {LoopFeature.OUTER_ONLY_PARALLEL, LoopFeature.SMALL_INNER_TRIP}
        ),
        traffic_scale=0.05,
        vector_speedup_cap=0.8,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = _square(n)
        npdt = numpy_dtype(dtype)
        return {
            "A": _matrix(self, dim, dtype, 0),
            "C": _matrix(self, dim, dtype, 1),
            "alpha": npdt(1.5),
            "beta": npdt(1.2),
        }

    def execute(self, ws: Workspace) -> None:
        C = ws["C"]
        C *= ws["beta"]
        C += ws["alpha"] * (ws["A"] @ ws["A"].T)


BLAS_KERNELS: tuple[type[BlasKernel], ...] = (Dgemm, Dgemv, Dtrsm, Dsyrk)


def blas_kernel_types() -> dict[str, type[BlasKernel]]:
    """BLAS kernel classes by name (the registry's library fallback)."""
    return {ktype.name: ktype for ktype in BLAS_KERNELS}


def all_blas_kernels() -> list[BlasKernel]:
    """Fresh instances of the whole BLAS family."""
    return [ktype() for ktype in BLAS_KERNELS]


def microkernel_loop(
    kernel: BlasKernel, flavor, rvv_version: str = "1.0",
    vector_bits: int = 128,
):
    """The vector microkernel a BLAS kernel's inner loop compiles to,
    as a list of :class:`~repro.isa.encoding.Instruction` — the program
    the translation validator rolls back and checks."""
    from repro.isa.codegen import LoopSpec, generate_dot_loop, generate_loop

    if kernel.microkernel == "dot":
        return generate_dot_loop(
            DType.FP64, flavor, rvv_version=rvv_version,
            vector_bits=vector_bits,
        )
    spec = LoopSpec(
        dtype=DType.FP64,
        num_inputs=2,
        ops=(kernel.update_op,),
        has_store=True,
        load_dest=True,
    )
    return generate_loop(
        spec, flavor, rvv_version=rvv_version, vector_bits=vector_bits
    )
