"""Kernel registry: lookup by name or class, construction of the suite.

The registry instantiates each kernel exactly once per call, keeping
kernels stateless between suite runs (state lives in workspaces).
"""

from __future__ import annotations

from functools import lru_cache

from repro.kernels.algorithm import ALGORITHM_KERNELS
from repro.kernels.apps import APPS_KERNELS
from repro.kernels.base import Kernel, KernelClass
from repro.kernels.basic import BASIC_KERNELS
from repro.kernels.lcals import LCALS_KERNELS
from repro.kernels.polybench import POLYBENCH_KERNELS
from repro.kernels.stream import STREAM_KERNELS
from repro.util.errors import ConfigError

_ALL_KERNEL_TYPES: tuple[type[Kernel], ...] = (
    ALGORITHM_KERNELS
    + APPS_KERNELS
    + BASIC_KERNELS
    + LCALS_KERNELS
    + POLYBENCH_KERNELS
    + STREAM_KERNELS
)

#: Expected class sizes from Section 2.2 of the paper.
EXPECTED_CLASS_SIZES = {
    KernelClass.ALGORITHM: 6,
    KernelClass.APPS: 13,
    KernelClass.BASIC: 16,
    KernelClass.LCALS: 11,
    KernelClass.POLYBENCH: 13,
    KernelClass.STREAM: 5,
}


@lru_cache(maxsize=1)
def _kernel_types_by_name() -> dict[str, type[Kernel]]:
    by_name: dict[str, type[Kernel]] = {}
    for ktype in _ALL_KERNEL_TYPES:
        if ktype.name in by_name:
            raise ConfigError(f"duplicate kernel name {ktype.name!r}")
        by_name[ktype.name] = ktype
    total = sum(EXPECTED_CLASS_SIZES.values())
    if len(by_name) != total:
        raise ConfigError(
            f"registry has {len(by_name)} kernels, expected {total}"
        )
    return by_name


def all_kernels() -> list[Kernel]:
    """Fresh instances of all 64 kernels, in class order."""
    return [ktype() for ktype in _ALL_KERNEL_TYPES]


def kernel_names() -> list[str]:
    """All kernel names, in class order."""
    return [ktype.name for ktype in _ALL_KERNEL_TYPES]


def get_kernel(name: str) -> Kernel:
    """Instantiate one kernel by name (case-insensitive).

    RAJAPerf suite kernels resolve first; the BLAS library family
    (:mod:`repro.kernels.blas`) is a fallback so it stays out of the
    pinned 64-kernel suite composition while remaining addressable.
    """
    by_name = _kernel_types_by_name()
    key = name.upper()
    if key in by_name:
        return by_name[key]()
    from repro.kernels.blas import blas_kernel_types

    blas = blas_kernel_types()
    if key in blas:
        return blas[key]()
    raise ConfigError(
        f"unknown kernel {name!r}; known: "
        f"{sorted(by_name) + sorted(blas)}"
    )


def kernels_in_class(klass: KernelClass | str) -> list[Kernel]:
    """Fresh instances of every kernel in one class."""
    if isinstance(klass, str):
        klass = KernelClass.from_label(klass)
    return [k for k in all_kernels() if k.klass == klass]
