"""Algorithm class: SCAN, SORT, SORTPAIRS, REDUCE_SUM, MEMSET, MEMCPY.

"Basic algorithmic activities such as memory copies, the sorting of data
and reductions" (Section 2.2). SORT and SORTPAIRS defer to library sorts —
neither GCC nor Clang vectorizes them, and their parallel fraction is low,
which drags the class average down at high thread counts (Tables 1-3).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import (
    Kernel,
    KernelClass,
    KernelTraits,
    LoopFeature,
    Workspace,
    linspace_init,
    numpy_dtype,
)
from repro.machine.vector import DType

_ALGO_SIZE = 1_000_000


class Scan(Kernel):
    """Exclusive prefix sum: ``y[i] = sum(x[0:i])``.

    Sequentially a textbook loop-carried dependence; parallel versions use
    the two-pass blocked scan, giving a decent but sub-linear parallel
    fraction.
    """

    name = "SCAN"
    klass = KernelClass.ALGORITHM
    default_size = _ALGO_SIZE
    reps = 100
    traits = KernelTraits(
        flops_per_iter=1.0,
        reads_per_iter=1.0,
        writes_per_iter=1.0,
        footprint_elems=2.0,
        features=frozenset({LoopFeature.SCAN_DEP}),
        parallel_fraction=0.90,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        x = linspace_init(n, dtype, 0.0, 1.0)
        return {"x": x, "y": np.zeros_like(x)}

    def execute(self, ws: Workspace) -> None:
        # Exclusive scan: y[0] = 0, y[i] = y[i-1] + x[i-1].
        y = ws["y"]
        np.cumsum(ws["x"][:-1], out=y[1:])
        y[0] = 0


class Sort(Kernel):
    """In-place sort of a pseudo-random array (RAJAPerf uses std::sort).

    Re-sorts the same scrambled snapshot every repetition so repeated
    ``execute`` calls do equal work.
    """

    name = "SORT"
    klass = KernelClass.ALGORITHM
    default_size = _ALGO_SIZE
    reps = 20
    traits = KernelTraits(
        flops_per_iter=0.0,
        reads_per_iter=20.0,  # ~log2(1e6) passes over the data
        writes_per_iter=20.0,
        footprint_elems=2.0,
        features=frozenset({LoopFeature.LIBRARY_CALL}),
        parallel_fraction=0.30,
        traffic_scale=0.25,  # most passes hit cache
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        x = self.rng().random(n).astype(numpy_dtype(dtype))
        return {"x": x, "out": np.empty_like(x)}

    def execute(self, ws: Workspace) -> None:
        np.copyto(ws["out"], ws["x"])
        ws["out"].sort()

    def checksum(self, ws: Workspace) -> float:
        out = ws["out"]
        # Weighted sum is order-sensitive, catching a broken sort.
        idx = np.arange(1, out.size + 1, dtype=np.float64)
        return float(np.dot(out.astype(np.float64), idx) / out.size)


class SortPairs(Kernel):
    """Key-value sort: sort keys, permute values along (std::sort on
    pairs in RAJAPerf)."""

    name = "SORTPAIRS"
    klass = KernelClass.ALGORITHM
    default_size = _ALGO_SIZE
    reps = 20
    traits = KernelTraits(
        flops_per_iter=0.0,
        reads_per_iter=40.0,
        writes_per_iter=40.0,
        footprint_elems=4.0,
        features=frozenset(
            {LoopFeature.LIBRARY_CALL, LoopFeature.INDIRECTION}
        ),
        parallel_fraction=0.30,
        traffic_scale=0.25,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        keys = self.rng().random(n).astype(numpy_dtype(dtype))
        vals = linspace_init(n, dtype, 0.0, 1.0)
        return {
            "keys": keys,
            "vals": vals,
            "out_keys": np.empty_like(keys),
            "out_vals": np.empty_like(vals),
        }

    def execute(self, ws: Workspace) -> None:
        order = np.argsort(ws["keys"], kind="stable")
        np.take(ws["keys"], order, out=ws["out_keys"])
        np.take(ws["vals"], order, out=ws["out_vals"])

    def checksum(self, ws: Workspace) -> float:
        out = ws["out_keys"].astype(np.float64)
        idx = np.arange(1, out.size + 1, dtype=np.float64)
        return float(
            np.dot(out, idx) / out.size
            + np.sum(ws["out_vals"], dtype=np.float64)
        )


class ReduceSum(Kernel):
    """``sum += x[i]`` — a bare bandwidth-bound reduction."""

    name = "REDUCE_SUM"
    klass = KernelClass.ALGORITHM
    default_size = _ALGO_SIZE
    reps = 500
    traits = KernelTraits(
        flops_per_iter=1.0,
        reads_per_iter=1.0,
        writes_per_iter=0.0,
        footprint_elems=1.0,
        features=frozenset(
            {LoopFeature.STREAMING, LoopFeature.REDUCTION_SUM}
        ),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        return {"x": linspace_init(n, dtype, 0.0, 1.0), "sum": 0.0}

    def execute(self, ws: Workspace) -> None:
        ws["sum"] = float(np.sum(ws["x"]))

    def checksum(self, ws: Workspace) -> float:
        return ws["sum"]


class Memset(Kernel):
    """``x[i] = value`` — pure store bandwidth. The paper's standout
    single-core result: 40x (FP32) and 18x (FP64) faster on the C920 than
    the U74 (Section 3.1)."""

    name = "MEMSET"
    klass = KernelClass.ALGORITHM
    default_size = _ALGO_SIZE
    reps = 500
    traits = KernelTraits(
        flops_per_iter=0.0,
        reads_per_iter=0.0,
        writes_per_iter=1.0,
        footprint_elems=1.0,
        features=frozenset({LoopFeature.STREAMING}),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        x = np.zeros(n, dtype=numpy_dtype(dtype))
        return {"x": x, "value": x.dtype.type(0.123)}

    def execute(self, ws: Workspace) -> None:
        ws["x"][:] = ws["value"]


class Memcpy(Kernel):
    """``y[i] = x[i]`` via memcpy semantics."""

    name = "MEMCPY"
    klass = KernelClass.ALGORITHM
    default_size = _ALGO_SIZE
    reps = 500
    traits = KernelTraits(
        flops_per_iter=0.0,
        reads_per_iter=1.0,
        writes_per_iter=1.0,
        footprint_elems=2.0,
        features=frozenset({LoopFeature.STREAMING}),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        x = linspace_init(n, dtype, 0.0, 1.0)
        return {"x": x, "y": np.empty_like(x)}

    def execute(self, ws: Workspace) -> None:
        np.copyto(ws["y"], ws["x"])


ALGORITHM_KERNELS = (Scan, Sort, SortPairs, ReduceSum, Memset, Memcpy)
