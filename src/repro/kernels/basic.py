"""Basic class: sixteen foundational kernels (DAXPY, matrix multiply,
integer reduction, PI by reduction, ...).

REDUCE3_INT is the class's one integer kernel: the C920 vectorizes INT64
even though it cannot vectorize FP64, and the paper observes that this
single kernel drives the basic class's small positive FP64-vectorization
average in Figure 2.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import (
    Kernel,
    KernelClass,
    KernelTraits,
    LoopFeature,
    Workspace,
    linspace_init,
    numpy_dtype,
)
from repro.machine.vector import DType

_BASIC_SIZE = 1_000_000


class Daxpy(Kernel):
    """``y[i] += a * x[i]``."""

    name = "DAXPY"
    klass = KernelClass.BASIC
    default_size = _BASIC_SIZE
    reps = 500
    traits = KernelTraits(
        flops_per_iter=2.0,
        reads_per_iter=2.0,
        writes_per_iter=1.0,
        footprint_elems=2.0,
        features=frozenset({LoopFeature.STREAMING}),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        x = linspace_init(n, dtype, 0.0, 1.0)
        y = linspace_init(n, dtype, 1.0, 2.0)
        return {"x": x, "y": y, "a": x.dtype.type(0.5)}

    def execute(self, ws: Workspace) -> None:
        # y += a*x in place: scale into a temp-free fused update.
        y = ws["y"]
        y += ws["a"] * ws["x"]


class DaxpyAtomic(Kernel):
    """DAXPY with an atomic update per element (RAJAPerf's atomic
    variant). Same arithmetic, but the atomic defeats auto-vectorization
    for GCC and serializes part of the update."""

    name = "DAXPY_ATOMIC"
    klass = KernelClass.BASIC
    default_size = _BASIC_SIZE
    reps = 500
    traits = KernelTraits(
        flops_per_iter=2.0,
        reads_per_iter=2.0,
        writes_per_iter=1.0,
        footprint_elems=2.0,
        features=frozenset({LoopFeature.STREAMING, LoopFeature.ATOMIC}),
        parallel_fraction=0.95,
        vector_speedup_cap=0.5,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        x = linspace_init(n, dtype, 0.0, 1.0)
        y = linspace_init(n, dtype, 1.0, 2.0)
        return {"x": x, "y": y, "a": x.dtype.type(0.5)}

    def execute(self, ws: Workspace) -> None:
        np.add.at(ws["y"], slice(None), ws["a"] * ws["x"])


class IfQuad(Kernel):
    """Solve ``a x^2 + b x + c = 0`` per element, guarded by a
    discriminant conditional — RAJAPerf's branchy kernel."""

    name = "IF_QUAD"
    klass = KernelClass.BASIC
    default_size = _BASIC_SIZE
    reps = 200
    traits = KernelTraits(
        flops_per_iter=11.0,
        reads_per_iter=3.0,
        writes_per_iter=2.0,
        footprint_elems=5.0,
        features=frozenset(
            # sqrt lowers to a libm call on GCC 8's RISC-V backend.
            {LoopFeature.STREAMING, LoopFeature.CONDITIONAL,
             LoopFeature.MATH_CALL}
        ),
        vector_speedup_cap=0.6,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        rng = self.rng()
        a = (rng.random(n) + 0.5).astype(npdt)
        b = (rng.random(n) * 4.0 + 2.0).astype(npdt)  # keeps disc > 0 mostly
        c = (rng.random(n) * 0.5).astype(npdt)
        return {
            "a": a, "b": b, "c": c,
            "x1": np.zeros(n, dtype=npdt),
            "x2": np.zeros(n, dtype=npdt),
        }

    def execute(self, ws: Workspace) -> None:
        a, b, c = ws["a"], ws["b"], ws["c"]
        disc = b * b - a * c * a.dtype.type(4.0)
        ok = disc >= 0
        root = np.sqrt(np.where(ok, disc, 0))
        inv2a = a.dtype.type(0.5) / a
        np.multiply((-b + root), inv2a, out=ws["x1"], where=ok)
        np.multiply((-b - root), inv2a, out=ws["x2"], where=ok)


class IndexList(Kernel):
    """Build the list of indices where ``x < 0`` — a stream-compaction
    with a scan dependence on the output position."""

    name = "INDEXLIST"
    klass = KernelClass.BASIC
    default_size = _BASIC_SIZE
    reps = 100
    traits = KernelTraits(
        flops_per_iter=0.0,
        reads_per_iter=1.0,
        writes_per_iter=0.5,
        footprint_elems=2.0,
        features=frozenset(
            {LoopFeature.CONDITIONAL, LoopFeature.INDIRECTION}
        ),
        parallel_fraction=0.85,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        x = (self.rng().random(n) - 0.5).astype(numpy_dtype(dtype))
        return {"x": x, "list": np.zeros(n, dtype=np.int64), "len": 0}

    def execute(self, ws: Workspace) -> None:
        idx = np.nonzero(ws["x"] < 0)[0]
        ws["list"][: idx.size] = idx
        ws["len"] = int(idx.size)

    def checksum(self, ws: Workspace) -> float:
        return float(ws["len"]) + float(
            np.sum(ws["list"][: ws["len"]], dtype=np.float64)
        ) / max(1, ws["len"])


class IndexList3Loop(Kernel):
    """Three-pass INDEXLIST: flag, exclusive scan, fill — the
    parallel-friendly formulation."""

    name = "INDEXLIST_3LOOP"
    klass = KernelClass.BASIC
    default_size = _BASIC_SIZE
    reps = 100
    traits = KernelTraits(
        flops_per_iter=1.0,
        reads_per_iter=3.0,
        writes_per_iter=2.0,
        footprint_elems=3.0,
        features=frozenset(
            {LoopFeature.CONDITIONAL, LoopFeature.INDIRECTION}
        ),
        parallel_fraction=0.92,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        x = (self.rng().random(n) - 0.5).astype(numpy_dtype(dtype))
        return {
            "x": x,
            "counts": np.zeros(n + 1, dtype=np.int64),
            "list": np.zeros(n, dtype=np.int64),
            "len": 0,
        }

    def execute(self, ws: Workspace) -> None:
        x, counts = ws["x"], ws["counts"]
        flags = (x < 0).astype(np.int64)
        counts[0] = 0
        np.cumsum(flags, out=counts[1:])
        total = int(counts[-1])
        positions = counts[:-1][flags.astype(bool)]
        ws["list"][:total] = np.nonzero(flags)[0]
        ws["len"] = total
        # positions are exactly 0..total-1 by construction; keep the
        # assertion cheap but real so a broken scan fails tests.
        assert positions.size == total

    def checksum(self, ws: Workspace) -> float:
        return float(ws["len"]) + float(
            np.sum(ws["list"][: ws["len"]], dtype=np.float64)
        ) / max(1, ws["len"])


class Init3(Kernel):
    """``out1[i] = out2[i] = out3[i] = -in1[i] - in2[i]``."""

    name = "INIT3"
    klass = KernelClass.BASIC
    default_size = _BASIC_SIZE
    reps = 500
    traits = KernelTraits(
        flops_per_iter=2.0,
        reads_per_iter=2.0,
        writes_per_iter=3.0,
        footprint_elems=5.0,
        features=frozenset({LoopFeature.STREAMING}),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        in1 = linspace_init(n, dtype, 0.0, 1.0)
        in2 = linspace_init(n, dtype, 1.0, 2.0)
        z = np.zeros_like(in1)
        return {
            "in1": in1, "in2": in2,
            "out1": z.copy(), "out2": z.copy(), "out3": z.copy(),
        }

    def execute(self, ws: Workspace) -> None:
        np.add(ws["in1"], ws["in2"], out=ws["out1"])
        np.negative(ws["out1"], out=ws["out1"])
        np.copyto(ws["out2"], ws["out1"])
        np.copyto(ws["out3"], ws["out1"])


class InitView1d(Kernel):
    """``a[i] = (i+1) * v`` through a RAJA view."""

    name = "INIT_VIEW1D"
    klass = KernelClass.BASIC
    default_size = _BASIC_SIZE
    reps = 500
    traits = KernelTraits(
        flops_per_iter=1.0,
        reads_per_iter=0.0,
        writes_per_iter=1.0,
        footprint_elems=1.0,
        features=frozenset({LoopFeature.STREAMING}),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        return {
            "a": np.zeros(n, dtype=npdt),
            "v": npdt(0.00000123),
            "iota": np.arange(1, n + 1, dtype=npdt),
        }

    def execute(self, ws: Workspace) -> None:
        np.multiply(ws["iota"], ws["v"], out=ws["a"])


class InitView1dOffset(Kernel):
    """``a[i-ibegin] = i * v`` — INIT_VIEW1D with an offset layout."""

    name = "INIT_VIEW1D_OFFSET"
    klass = KernelClass.BASIC
    default_size = _BASIC_SIZE
    reps = 500
    traits = KernelTraits(
        flops_per_iter=1.0,
        reads_per_iter=0.0,
        writes_per_iter=1.0,
        footprint_elems=1.0,
        features=frozenset({LoopFeature.STREAMING}),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        return {
            "a": np.zeros(n, dtype=npdt),
            "v": npdt(0.00000123),
            "iota": np.arange(1, n + 1, dtype=npdt),
        }

    def execute(self, ws: Workspace) -> None:
        np.multiply(ws["iota"], ws["v"], out=ws["a"])


class MatMatShared(Kernel):
    """Tiled dense matmul using shared/tile-local storage
    (RAJAPerf's MAT_MAT_SHARED). Problem size n maps to an
    ``N = sqrt(n)`` square matrix."""

    name = "MAT_MAT_SHARED"
    klass = KernelClass.BASIC
    default_size = 1_000_000  # -> N = 1000
    reps = 10
    traits = KernelTraits(
        flops_per_iter=2000.0,  # 2N flops per output element at N=1000
        reads_per_iter=2.0,
        writes_per_iter=1.0,
        footprint_elems=3.0,
        features=frozenset({LoopFeature.OUTER_ONLY_PARALLEL}),
        traffic_scale=0.1,  # tiling reuses cached tiles
        vector_speedup_cap=0.8,
    )

    @staticmethod
    def matrix_dim(n: int) -> int:
        return max(2, int(round(n ** 0.5)))

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = self.matrix_dim(n)
        npdt = numpy_dtype(dtype)
        a = linspace_init(dim * dim, dtype, 0.0, 1.0).reshape(dim, dim)
        b = linspace_init(dim * dim, dtype, 1.0, 2.0).reshape(dim, dim)
        return {"a": a, "b": b, "c": np.zeros((dim, dim), dtype=npdt)}

    def execute(self, ws: Workspace) -> None:
        np.matmul(ws["a"], ws["b"], out=ws["c"])


class MulAddSub(Kernel):
    """``out1 = in1*in2; out2 = in1+in2; out3 = in1-in2``."""

    name = "MULADDSUB"
    klass = KernelClass.BASIC
    default_size = _BASIC_SIZE
    reps = 500
    traits = KernelTraits(
        flops_per_iter=3.0,
        reads_per_iter=2.0,
        writes_per_iter=3.0,
        footprint_elems=5.0,
        features=frozenset({LoopFeature.STREAMING}),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        in1 = linspace_init(n, dtype, 0.0, 1.0)
        in2 = linspace_init(n, dtype, 1.0, 2.0)
        z = np.zeros_like(in1)
        return {
            "in1": in1, "in2": in2,
            "out1": z.copy(), "out2": z.copy(), "out3": z.copy(),
        }

    def execute(self, ws: Workspace) -> None:
        np.multiply(ws["in1"], ws["in2"], out=ws["out1"])
        np.add(ws["in1"], ws["in2"], out=ws["out2"])
        np.subtract(ws["in1"], ws["in2"], out=ws["out3"])


class NestedInit(Kernel):
    """``array[i,j,k] = i*j*k`` over a 3D nest; n maps to a cube of side
    ``cbrt(n)``."""

    name = "NESTED_INIT"
    klass = KernelClass.BASIC
    default_size = _BASIC_SIZE
    reps = 200
    traits = KernelTraits(
        flops_per_iter=2.0,
        reads_per_iter=0.0,
        writes_per_iter=1.0,
        footprint_elems=1.0,
        features=frozenset(
            {LoopFeature.STREAMING, LoopFeature.OUTER_ONLY_PARALLEL}
        ),
    )

    @staticmethod
    def cube_dim(n: int) -> int:
        return max(2, int(round(n ** (1.0 / 3.0))))

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = self.cube_dim(n)
        npdt = numpy_dtype(dtype)
        iota = np.arange(dim, dtype=npdt)
        return {
            "array": np.zeros((dim, dim, dim), dtype=npdt),
            "i": iota.reshape(dim, 1, 1),
            "j": iota.reshape(1, dim, 1),
            "k": iota.reshape(1, 1, dim),
        }

    def execute(self, ws: Workspace) -> None:
        ws["array"][...] = ws["i"] * ws["j"] * ws["k"]


class PiAtomic(Kernel):
    """Compute pi by quadrature with an atomic accumulator."""

    name = "PI_ATOMIC"
    klass = KernelClass.BASIC
    default_size = _BASIC_SIZE
    reps = 200
    traits = KernelTraits(
        flops_per_iter=6.0,
        reads_per_iter=0.0,
        writes_per_iter=1.0,
        footprint_elems=1.0,
        features=frozenset({LoopFeature.ATOMIC, LoopFeature.REDUCTION_SUM}),
        parallel_fraction=0.80,
        vector_speedup_cap=0.4,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        dx = 1.0 / n
        x = (np.arange(n, dtype=np.float64) + 0.5) * dx
        return {"x": x.astype(npdt), "dx": npdt(dx), "pi": 0.0}

    def execute(self, ws: Workspace) -> None:
        x = ws["x"].astype(np.float64)
        ws["pi"] = float(np.sum(4.0 / (1.0 + x * x)) * float(ws["dx"]))

    def checksum(self, ws: Workspace) -> float:
        return ws["pi"]


class PiReduce(Kernel):
    """Compute pi by quadrature with an OpenMP-style reduction."""

    name = "PI_REDUCE"
    klass = KernelClass.BASIC
    default_size = _BASIC_SIZE
    reps = 200
    traits = KernelTraits(
        flops_per_iter=6.0,
        reads_per_iter=0.0,
        writes_per_iter=0.0001,  # one scalar result
        footprint_elems=1.0,
        features=frozenset({LoopFeature.REDUCTION_SUM}),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        dx = 1.0 / n
        x = (np.arange(n, dtype=np.float64) + 0.5) * dx
        return {"x": x.astype(npdt), "dx": npdt(dx), "pi": 0.0}

    def execute(self, ws: Workspace) -> None:
        x = ws["x"].astype(np.float64)
        ws["pi"] = float(np.sum(4.0 / (1.0 + x * x)) * float(ws["dx"]))

    def checksum(self, ws: Workspace) -> float:
        return ws["pi"]


class Reduce3Int(Kernel):
    """Sum, min and max of an **integer** array in one pass.

    The class's integer kernel: the C920 vectorizes INT64 even at the
    FP64 configuration, producing the positive FP64 whisker the paper
    calls out in Figure 2.
    """

    name = "REDUCE3_INT"
    klass = KernelClass.BASIC
    default_size = _BASIC_SIZE
    reps = 500
    traits = KernelTraits(
        flops_per_iter=3.0,
        reads_per_iter=1.0,
        writes_per_iter=0.0,
        footprint_elems=1.0,
        features=frozenset(
            {
                LoopFeature.STREAMING,
                LoopFeature.REDUCTION_SUM,
                LoopFeature.REDUCTION_MINMAX,
            }
        ),
        integer_kernel=True,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        # Integer kernel: precision selects int width, mirroring how the
        # suite maps FP32 -> INT32, FP64 -> INT64.
        npdt = np.int32 if dtype == DType.FP32 else np.int64
        vals = self.rng().integers(-1000, 1000, size=n).astype(npdt)
        return {"x": vals, "sum": 0, "min": 0, "max": 0}

    def execute(self, ws: Workspace) -> None:
        x = ws["x"]
        ws["sum"] = int(np.sum(x, dtype=np.int64))
        ws["min"] = int(np.min(x))
        ws["max"] = int(np.max(x))

    def checksum(self, ws: Workspace) -> float:
        return float(ws["sum"] + ws["min"] + ws["max"])


class ReduceStruct(Kernel):
    """Reduce x/y particle coordinates to sums and bounding box
    (RAJAPerf's struct-of-arrays reduction)."""

    name = "REDUCE_STRUCT"
    klass = KernelClass.BASIC
    default_size = _BASIC_SIZE
    reps = 200
    traits = KernelTraits(
        flops_per_iter=6.0,
        reads_per_iter=2.0,
        writes_per_iter=0.0,
        footprint_elems=2.0,
        features=frozenset(
            {
                LoopFeature.STREAMING,
                LoopFeature.REDUCTION_SUM,
                LoopFeature.REDUCTION_MINMAX,
                # Float min/max without -ffast-math lowers to compare
                # branches GCC 8 will not vectorize (NaN semantics);
                # the *integer* min/max idiom in REDUCE3_INT is fine.
                LoopFeature.CONDITIONAL,
            }
        ),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        return {
            "x": linspace_init(n, dtype, 0.0, 1.0),
            "y": linspace_init(n, dtype, -1.0, 1.0),
            "out": np.zeros(6, dtype=np.float64),
        }

    def execute(self, ws: Workspace) -> None:
        x, y = ws["x"], ws["y"]
        out = ws["out"]
        out[0] = np.sum(x, dtype=np.float64)
        out[1] = np.min(x)
        out[2] = np.max(x)
        out[3] = np.sum(y, dtype=np.float64)
        out[4] = np.min(y)
        out[5] = np.max(y)

    def checksum(self, ws: Workspace) -> float:
        return float(np.sum(ws["out"]))


class TrapInt(Kernel):
    """Trapezoidal integration of RAJAPerf's test integrand — a reduction
    whose body is expensive enough to be compute-bound."""

    name = "TRAP_INT"
    klass = KernelClass.BASIC
    default_size = _BASIC_SIZE
    reps = 200
    traits = KernelTraits(
        flops_per_iter=10.0,
        reads_per_iter=0.0,
        writes_per_iter=0.0001,
        footprint_elems=1.0,
        features=frozenset(
            {LoopFeature.REDUCTION_SUM, LoopFeature.MATH_CALL}
        ),
        vector_speedup_cap=0.7,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        h = 1.0 / n
        x0 = 0.0
        return {
            "n": n,
            "h": npdt(h),
            "x": ((np.arange(n, dtype=np.float64) + 0.5) * h + x0).astype(npdt),
            "sumx": 0.0,
        }

    def execute(self, ws: Workspace) -> None:
        x = ws["x"].astype(np.float64)
        # RAJAPerf's trap_int_func: x^2 / sqrt(2 + x^2 y^2) with y = x.
        vals = (x * x) / np.sqrt(2.0 + (x * x) * (x * x))
        ws["sumx"] = float(np.sum(vals) * float(ws["h"]))

    def checksum(self, ws: Workspace) -> float:
        return ws["sumx"]


BASIC_KERNELS = (
    Daxpy,
    DaxpyAtomic,
    IfQuad,
    IndexList,
    IndexList3Loop,
    Init3,
    InitView1d,
    InitView1dOffset,
    MatMatShared,
    MulAddSub,
    NestedInit,
    PiAtomic,
    PiReduce,
    Reduce3Int,
    ReduceStruct,
    TrapInt,
)
