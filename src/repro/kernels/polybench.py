"""Polybench class: thirteen polyhedral kernels.

This class supplies the kernels of Figure 3 (Clang VLA/VLS vs GCC): GCC
cannot auto-vectorize FLOYD_WARSHALL or HEAT_3D, vectorizes JACOBI_1D and
JACOBI_2D but selects the scalar path at runtime (alias versioning), while
Clang vectorizes everything except that 2MM, 3MM and GEMM execute in
scalar mode. Polybench is also the class that scales best with threads
(Tables 1-3) because its kernels carry the most work per fork-join.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import (
    Kernel,
    KernelClass,
    KernelTraits,
    LoopFeature,
    Workspace,
    linspace_init,
    numpy_dtype,
)
from repro.machine.vector import DType


def _square(n: int) -> int:
    """Matrix side for a problem size that counts output elements."""
    return max(2, int(round(n ** 0.5)))


def _cube(n: int) -> int:
    return max(4, int(round(n ** (1.0 / 3.0))))


def _matrix(kernel: Kernel, n: int, dtype: DType, salt: int,
            scale: float = 1.0) -> np.ndarray:
    dim = _square(n)
    rng = kernel.rng(salt)
    return (rng.random((dim, dim)) * scale).astype(numpy_dtype(dtype))


class TwoMM(Kernel):
    """Polybench 2MM: ``D = alpha*A*B*C + beta*D`` (two chained GEMMs).

    One of the three kernels Clang leaves on the scalar path at runtime
    (Figure 3): the inner-product trip count defeats its cost model.
    """

    name = "2MM"
    klass = KernelClass.POLYBENCH
    default_size = 640_000  # -> 800x800 matrices
    reps = 5
    traits = KernelTraits(
        flops_per_iter=3200.0,  # ~2 GEMMs x 2N flops per output at N=800
        reads_per_iter=4.0,
        writes_per_iter=2.0,
        footprint_elems=5.0,
        features=frozenset(
            {LoopFeature.OUTER_ONLY_PARALLEL, LoopFeature.SMALL_INNER_TRIP}
        ),
        traffic_scale=0.05,
        vector_speedup_cap=0.8,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        return {
            "A": _matrix(self, n, dtype, 0),
            "B": _matrix(self, n, dtype, 1),
            "C": _matrix(self, n, dtype, 2),
            "D": _matrix(self, n, dtype, 3),
            "tmp": np.zeros((_square(n), _square(n)), dtype=npdt),
            "alpha": npdt(1.5),
            "beta": npdt(1.2),
        }

    def execute(self, ws: Workspace) -> None:
        np.matmul(ws["A"], ws["B"], out=ws["tmp"])
        ws["tmp"] *= ws["alpha"]
        ws["D"] *= ws["beta"]
        ws["D"] += ws["tmp"] @ ws["C"]


class ThreeMM(Kernel):
    """Polybench 3MM: ``G = (A*B) * (C*D)``."""

    name = "3MM"
    klass = KernelClass.POLYBENCH
    default_size = 640_000
    reps = 5
    traits = KernelTraits(
        flops_per_iter=4800.0,
        reads_per_iter=6.0,
        writes_per_iter=3.0,
        footprint_elems=7.0,
        features=frozenset(
            {LoopFeature.OUTER_ONLY_PARALLEL, LoopFeature.SMALL_INNER_TRIP}
        ),
        traffic_scale=0.05,
        vector_speedup_cap=0.8,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = _square(n)
        npdt = numpy_dtype(dtype)
        return {
            "A": _matrix(self, n, dtype, 0),
            "B": _matrix(self, n, dtype, 1),
            "C": _matrix(self, n, dtype, 2),
            "D": _matrix(self, n, dtype, 3),
            "E": np.zeros((dim, dim), dtype=npdt),
            "F": np.zeros((dim, dim), dtype=npdt),
            "G": np.zeros((dim, dim), dtype=npdt),
        }

    def execute(self, ws: Workspace) -> None:
        np.matmul(ws["A"], ws["B"], out=ws["E"])
        np.matmul(ws["C"], ws["D"], out=ws["F"])
        np.matmul(ws["E"], ws["F"], out=ws["G"])


class Adi(Kernel):
    """Polybench ADI: alternating direction implicit solver — forward and
    backward first-order recurrences swept along rows then columns each
    timestep, implemented with vectorized recursive doubling along the
    sweep axis."""

    name = "ADI"
    klass = KernelClass.POLYBENCH
    default_size = 250_000  # -> 500x500 grid
    reps = 4
    traits = KernelTraits(
        flops_per_iter=30.0,
        reads_per_iter=6.0,
        writes_per_iter=4.0,
        footprint_elems=4.0,
        features=frozenset(
            {
                # The sweep recurrences are only vectorizable across the
                # orthogonal axis, which GCC's loop vectorizer misses
                # (non-unit stride); Clang's SLP handles it.
                LoopFeature.NONUNIT_STRIDE,
                LoopFeature.OUTER_ONLY_PARALLEL,
            }
        ),
        parallel_fraction=0.98,
        vector_speedup_cap=0.5,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = _square(n)
        npdt = numpy_dtype(dtype)
        u = self.rng().random((dim, dim)).astype(npdt)
        return {
            "u": u,
            "v": np.zeros_like(u),
            "a": npdt(0.25),
            "b": npdt(0.5),
        }

    @staticmethod
    def _sweep(src: np.ndarray, a: float, b: float) -> np.ndarray:
        """One implicit sweep along axis 1: x[:, j] = b*src[:, j] +
        a*x[:, j-1], via recursive doubling on the column axis."""
        x = (b * src).astype(np.float64)
        m = x.shape[1]
        shift = 1
        coef = a
        while shift < m:
            x[:, shift:] += coef * x[:, :-shift]
            coef *= coef
            shift *= 2
        return x

    def execute(self, ws: Workspace) -> None:
        u, v = ws["u"], ws["v"]
        a, b = float(ws["a"]), float(ws["b"])
        # Column sweep writes v, row sweep writes u (one ADI timestep).
        v[...] = self._sweep(u, a, b).astype(v.dtype)
        u[...] = self._sweep(v.T, a, b).T.astype(u.dtype)
        # Keep the field bounded so repeated reps stay finite.
        np.clip(u, -1e6, 1e6, out=u)


class Atax(Kernel):
    """Polybench ATAX: ``y = A^T (A x)``."""

    name = "ATAX"
    klass = KernelClass.POLYBENCH
    default_size = 1_000_000  # -> 1000x1000
    reps = 50
    traits = KernelTraits(
        flops_per_iter=4.0,  # two matvecs: 4 flops per matrix element
        reads_per_iter=1.0,
        writes_per_iter=0.01,
        footprint_elems=1.0,
        features=frozenset(
            {LoopFeature.NESTED_REDUCTION, LoopFeature.OUTER_ONLY_PARALLEL}
        ),
        vector_speedup_cap=0.7,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = _square(n)
        return {
            "A": _matrix(self, n, dtype, 0),
            "x": linspace_init(dim, dtype, 0.0, 1.0),
            "y": np.zeros(dim, dtype=numpy_dtype(dtype)),
            "tmp": np.zeros(dim, dtype=numpy_dtype(dtype)),
        }

    def execute(self, ws: Workspace) -> None:
        np.matmul(ws["A"], ws["x"], out=ws["tmp"])
        np.matmul(ws["A"].T, ws["tmp"], out=ws["y"])


class Fdtd2d(Kernel):
    """Polybench FDTD-2D: one finite-difference time-domain step updating
    the ey/ex/hz fields with shifted-view stencils."""

    name = "FDTD_2D"
    klass = KernelClass.POLYBENCH
    default_size = 1_000_000  # -> 1000x1000
    reps = 20
    traits = KernelTraits(
        flops_per_iter=11.0,
        reads_per_iter=7.0,
        writes_per_iter=3.0,
        footprint_elems=3.0,
        features=frozenset(
            {LoopFeature.STENCIL, LoopFeature.ALIAS_UNPROVABLE}
        ),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = _square(n)
        npdt = numpy_dtype(dtype)
        rng = self.rng()
        return {
            "ex": rng.random((dim, dim)).astype(npdt),
            "ey": rng.random((dim, dim)).astype(npdt),
            "hz": rng.random((dim, dim)).astype(npdt),
            "t": 0,
        }

    def execute(self, ws: Workspace) -> None:
        ex, ey, hz = ws["ex"], ws["ey"], ws["hz"]
        half = ex.dtype.type(0.5)
        sev = ex.dtype.type(0.7)
        ey[0, :] = ex.dtype.type(ws["t"] % 7)
        ey[1:, :] -= half * (hz[1:, :] - hz[:-1, :])
        ex[:, 1:] -= half * (hz[:, 1:] - hz[:, :-1])
        hz[:-1, :-1] -= sev * (
            ex[:-1, 1:] - ex[:-1, :-1] + ey[1:, :-1] - ey[:-1, :-1]
        )
        ws["t"] += 1


class FloydWarshall(Kernel):
    """Polybench FLOYD_WARSHALL: all-pairs shortest paths,
    ``path[i,j] = min(path[i,j], path[i,k] + path[k,j])``.

    GCC cannot auto-vectorize it (the float min lowers to a branch);
    Clang can — the paper's Figure 3 shows Clang clearly ahead here.
    """

    name = "FLOYD_WARSHALL"
    klass = KernelClass.POLYBENCH
    default_size = 40_000  # -> 200x200 (k-loop makes it O(N^3))
    reps = 2
    traits = KernelTraits(
        flops_per_iter=400.0,  # 2*N per element at N=200
        reads_per_iter=3.0,
        writes_per_iter=1.0,
        footprint_elems=1.0,
        features=frozenset(
            {LoopFeature.CONDITIONAL, LoopFeature.OUTER_ONLY_PARALLEL}
        ),
        traffic_scale=0.1,
        vector_speedup_cap=0.7,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = _square(n)
        rng = self.rng()
        path = (rng.random((dim, dim)) * 10.0 + 1.0).astype(numpy_dtype(dtype))
        np.fill_diagonal(path, 0.0)
        return {"path": path}

    def execute(self, ws: Workspace) -> None:
        path = ws["path"]
        for k in range(path.shape[0]):
            # Vectorized over (i, j) for each pivot k.
            via_k = path[:, k, None] + path[None, k, :]
            np.minimum(path, via_k, out=path)


class Gemm(Kernel):
    """Polybench GEMM: ``C = alpha*A*B + beta*C``."""

    name = "GEMM"
    klass = KernelClass.POLYBENCH
    default_size = 1_000_000  # -> 1000x1000
    reps = 5
    traits = KernelTraits(
        flops_per_iter=2000.0,
        reads_per_iter=2.0,
        writes_per_iter=1.0,
        footprint_elems=3.0,
        features=frozenset(
            {LoopFeature.OUTER_ONLY_PARALLEL, LoopFeature.SMALL_INNER_TRIP}
        ),
        traffic_scale=0.05,
        vector_speedup_cap=0.8,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        return {
            "A": _matrix(self, n, dtype, 0),
            "B": _matrix(self, n, dtype, 1),
            "C": _matrix(self, n, dtype, 2),
            "alpha": npdt(1.5),
            "beta": npdt(1.2),
        }

    def execute(self, ws: Workspace) -> None:
        C = ws["C"]
        C *= ws["beta"]
        C += ws["alpha"] * (ws["A"] @ ws["B"])


class Gemver(Kernel):
    """Polybench GEMVER: rank-2 update plus two matvecs."""

    name = "GEMVER"
    klass = KernelClass.POLYBENCH
    default_size = 1_000_000
    reps = 30
    traits = KernelTraits(
        flops_per_iter=10.0,
        reads_per_iter=3.0,
        writes_per_iter=1.0,
        footprint_elems=1.0,
        features=frozenset(
            {LoopFeature.NESTED_REDUCTION, LoopFeature.OUTER_ONLY_PARALLEL}
        ),
        vector_speedup_cap=0.7,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = _square(n)
        npdt = numpy_dtype(dtype)
        return {
            "A": _matrix(self, n, dtype, 0),
            "u1": linspace_init(dim, dtype, 0.0, 1.0),
            "v1": linspace_init(dim, dtype, 1.0, 2.0),
            "u2": linspace_init(dim, dtype, -1.0, 0.0),
            "v2": linspace_init(dim, dtype, 0.5, 1.5),
            "x": np.zeros(dim, dtype=npdt),
            "y": linspace_init(dim, dtype, 0.0, 1.0),
            "z": linspace_init(dim, dtype, 0.1, 1.1),
            "w": np.zeros(dim, dtype=npdt),
            "alpha": npdt(1.5),
            "beta": npdt(1.2),
        }

    def execute(self, ws: Workspace) -> None:
        A = ws["A"]
        A += np.outer(ws["u1"], ws["v1"]) + np.outer(ws["u2"], ws["v2"])
        ws["x"][:] = ws["beta"] * (A.T @ ws["y"]) + ws["z"]
        ws["w"][:] = ws["alpha"] * (A @ ws["x"])
        # Bound A so repeated reps stay finite.
        np.clip(A, -1e6, 1e6, out=A)


class Gesummv(Kernel):
    """Polybench GESUMMV: ``y = alpha*A*x + beta*B*x``."""

    name = "GESUMMV"
    klass = KernelClass.POLYBENCH
    default_size = 640_000
    reps = 50
    traits = KernelTraits(
        flops_per_iter=4.0,
        reads_per_iter=2.0,
        writes_per_iter=0.01,
        footprint_elems=2.0,
        features=frozenset(
            {LoopFeature.NESTED_REDUCTION, LoopFeature.OUTER_ONLY_PARALLEL}
        ),
        vector_speedup_cap=0.7,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = _square(n)
        npdt = numpy_dtype(dtype)
        return {
            "A": _matrix(self, n, dtype, 0),
            "B": _matrix(self, n, dtype, 1),
            "x": linspace_init(dim, dtype, 0.0, 1.0),
            "y": np.zeros(dim, dtype=npdt),
            "alpha": npdt(1.5),
            "beta": npdt(1.2),
        }

    def execute(self, ws: Workspace) -> None:
        ws["y"][:] = ws["alpha"] * (ws["A"] @ ws["x"]) + ws["beta"] * (
            ws["B"] @ ws["x"]
        )


class Heat3d(Kernel):
    """Polybench HEAT_3D: 3D heat equation, 7-point stencil, double
    buffered. One of the two Figure 3 kernels GCC cannot vectorize (the
    k/j-plane neighbours are non-unit-stride)."""

    name = "HEAT_3D"
    klass = KernelClass.POLYBENCH
    default_size = 1_000_000  # -> 100^3
    reps = 20
    traits = KernelTraits(
        flops_per_iter=15.0,
        reads_per_iter=7.0,
        writes_per_iter=1.0,
        footprint_elems=2.0,
        features=frozenset(
            {
                LoopFeature.STENCIL,
                LoopFeature.NONUNIT_STRIDE,
                LoopFeature.OUTER_ONLY_PARALLEL,
            }
        ),
        vector_speedup_cap=0.7,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = _cube(n)
        npdt = numpy_dtype(dtype)
        a = self.rng().random((dim, dim, dim)).astype(npdt)
        return {"A": a, "B": a.copy()}

    def execute(self, ws: Workspace) -> None:
        A, B = ws["A"], ws["B"]
        c = A.dtype.type(0.125)
        two = A.dtype.type(2.0)
        i = slice(1, -1)
        B[i, i, i] = A[i, i, i] + c * (
            (A[2:, i, i] - two * A[i, i, i] + A[:-2, i, i])
            + (A[i, 2:, i] - two * A[i, i, i] + A[i, :-2, i])
            + (A[i, i, 2:] - two * A[i, i, i] + A[i, i, :-2])
        )
        # Swap buffers: next rep reads the freshly written field.
        ws["A"], ws["B"] = B, A


class Jacobi1d(Kernel):
    """Polybench JACOBI_1D: 3-point average, double buffered. Vectorized
    by GCC but executed on the scalar path at runtime (Figure 3)."""

    name = "JACOBI_1D"
    klass = KernelClass.POLYBENCH
    default_size = 1_000_000
    reps = 200
    traits = KernelTraits(
        flops_per_iter=3.0,
        reads_per_iter=3.0,
        writes_per_iter=1.0,
        footprint_elems=2.0,
        features=frozenset(
            {
                LoopFeature.STREAMING,
                LoopFeature.STENCIL,
                LoopFeature.ALIAS_UNPROVABLE,
            }
        ),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        a = linspace_init(n, dtype, 0.0, 1.0)
        return {"A": a, "B": a.copy()}

    def execute(self, ws: Workspace) -> None:
        A, B = ws["A"], ws["B"]
        third = A.dtype.type(1.0 / 3.0)
        B[1:-1] = third * (A[:-2] + A[1:-1] + A[2:])
        ws["A"], ws["B"] = B, A


class Jacobi2d(Kernel):
    """Polybench JACOBI_2D: 5-point average, double buffered. The kernel
    that surprised the paper by running *slower* with Clang than GCC on
    the C920 (Figure 3)."""

    name = "JACOBI_2D"
    klass = KernelClass.POLYBENCH
    default_size = 1_000_000  # -> 1000x1000
    reps = 50
    traits = KernelTraits(
        flops_per_iter=5.0,
        reads_per_iter=5.0,
        writes_per_iter=1.0,
        footprint_elems=2.0,
        features=frozenset(
            {LoopFeature.STENCIL, LoopFeature.ALIAS_UNPROVABLE}
        ),
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = _square(n)
        a = self.rng().random((dim, dim)).astype(numpy_dtype(dtype))
        return {"A": a, "B": a.copy()}

    def execute(self, ws: Workspace) -> None:
        A, B = ws["A"], ws["B"]
        fifth = A.dtype.type(0.2)
        i = slice(1, -1)
        B[i, i] = fifth * (
            A[i, i] + A[i, :-2] + A[i, 2:] + A[2:, i] + A[:-2, i]
        )
        ws["A"], ws["B"] = B, A


class Mvt(Kernel):
    """Polybench MVT: ``x1 += A y1; x2 += A^T y2``."""

    name = "MVT"
    klass = KernelClass.POLYBENCH
    default_size = 1_000_000
    reps = 50
    traits = KernelTraits(
        flops_per_iter=4.0,
        reads_per_iter=1.0,
        writes_per_iter=0.01,
        footprint_elems=1.0,
        features=frozenset(
            {LoopFeature.NESTED_REDUCTION, LoopFeature.OUTER_ONLY_PARALLEL}
        ),
        vector_speedup_cap=0.7,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = _square(n)
        return {
            "A": _matrix(self, n, dtype, 0),
            "x1": linspace_init(dim, dtype, 0.0, 1.0),
            "x2": linspace_init(dim, dtype, 1.0, 2.0),
            "y1": linspace_init(dim, dtype, 0.5, 1.5),
            "y2": linspace_init(dim, dtype, -0.5, 0.5),
        }

    def execute(self, ws: Workspace) -> None:
        ws["x1"] += ws["A"] @ ws["y1"]
        ws["x2"] += ws["A"].T @ ws["y2"]


POLYBENCH_KERNELS = (
    TwoMM,
    ThreeMM,
    Adi,
    Atax,
    Fdtd2d,
    FloydWarshall,
    Gemm,
    Gemver,
    Gesummv,
    Heat3d,
    Jacobi1d,
    Jacobi2d,
    Mvt,
)
