"""The RAJAPerf benchmark suite, reimplemented in NumPy.

All 64 kernels of RAJA Performance Suite v2022 are present, organised in
the paper's six classes (Section 2.2):

* **Algorithm** (6): SCAN, SORT, SORTPAIRS, REDUCE_SUM, MEMSET, MEMCPY
* **Apps** (13): CONVECTION3DPA, DEL_DOT_VEC_2D, DIFFUSION3DPA, ENERGY,
  FIR, HALOEXCHANGE, HALOEXCHANGE_FUSED, LTIMES, LTIMES_NOVIEW, MASS3DPA,
  NODAL_ACCUMULATION_3D, PRESSURE, VOL3D
* **Basic** (16): DAXPY, DAXPY_ATOMIC, IF_QUAD, INDEXLIST,
  INDEXLIST_3LOOP, INIT3, INIT_VIEW1D, INIT_VIEW1D_OFFSET, MAT_MAT_SHARED,
  MULADDSUB, NESTED_INIT, PI_ATOMIC, PI_REDUCE, REDUCE3_INT,
  REDUCE_STRUCT, TRAP_INT
* **Lcals** (11): DIFF_PREDICT, EOS, FIRST_DIFF, FIRST_MIN, FIRST_SUM,
  GEN_LIN_RECUR, HYDRO_1D, HYDRO_2D, INT_PREDICT, PLANCKIAN, TRIDIAG_ELIM
* **Polybench** (13): 2MM, 3MM, ADI, ATAX, FDTD_2D, FLOYD_WARSHALL, GEMM,
  GEMVER, GESUMMV, HEAT_3D, JACOBI_1D, JACOBI_2D, MVT
* **Stream** (5): ADD, COPY, DOT, MUL, TRIAD

Each kernel couples a runnable NumPy implementation (tested against naive
references) with a static characterization — flops and element traffic per
iteration, memory footprint, loop features — that drives the compiler and
performance models.
"""

from repro.kernels.base import (
    Kernel,
    KernelClass,
    KernelTraits,
    LoopFeature,
    Workspace,
)
from repro.kernels.registry import (
    all_kernels,
    get_kernel,
    kernel_names,
    kernels_in_class,
)

__all__ = [
    "Kernel",
    "KernelClass",
    "KernelTraits",
    "LoopFeature",
    "Workspace",
    "all_kernels",
    "get_kernel",
    "kernel_names",
    "kernels_in_class",
]
