"""Apps class: thirteen kernels representing common HPC application
components — FIR filter, halo-exchange packing, 3D diffusion/convection by
partial assembly, pressure/energy hydro fragments (Section 2.2).

These kernels carry little work per repetition (halo packs touch only
surface data) and several have indirection or low parallel fractions, so
the class scales worst with threads — the paper's Tables 1-3 even show a
2-thread slowdown.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import (
    Kernel,
    KernelClass,
    KernelTraits,
    LoopFeature,
    Workspace,
    linspace_init,
    numpy_dtype,
)
from repro.machine.vector import DType

_FEM_FEATURES = frozenset(
    {LoopFeature.OUTER_ONLY_PARALLEL, LoopFeature.NONUNIT_STRIDE}
)


class Convection3dpa(Kernel):
    """CONVECTION3DPA: convection operator by partial assembly — batched
    small tensor contractions per finite element."""

    name = "CONVECTION3DPA"
    klass = KernelClass.APPS
    default_size = 4_096  # elements; each carries ~Q^3*D work
    reps = 50
    traits = KernelTraits(
        flops_per_iter=2500.0,
        reads_per_iter=130.0,
        writes_per_iter=64.0,
        footprint_elems=256.0,
        features=_FEM_FEATURES,
        parallel_fraction=0.97,
        vector_speedup_cap=0.6,
    )

    #: quadrature/basis extents of the per-element tensors
    Q = 4

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        q = self.Q
        rng = self.rng()
        return {
            "basis": rng.random((q, q)).astype(npdt),
            "dbasis": rng.random((q, q)).astype(npdt),
            "dofs": rng.random((n, q, q, q)).astype(npdt),
            "vel": rng.random((n, 3)).astype(npdt),
            "out": np.zeros((n, q, q, q), dtype=npdt),
        }

    def execute(self, ws: Workspace) -> None:
        basis, dbasis = ws["basis"], ws["dbasis"]
        dofs, vel, out = ws["dofs"], ws["vel"], ws["out"]
        # Interpolate to quadrature points along each axis, apply the
        # velocity-weighted derivative, project back: B (D B^T u).
        gx = np.einsum("qi,eijk->eqjk", dbasis, dofs)
        gy = np.einsum("qj,eijk->eiqk", dbasis, dofs)
        gz = np.einsum("qk,eijk->eijq", dbasis, dofs)
        adv = (
            vel[:, 0, None, None, None] * gx
            + vel[:, 1, None, None, None] * gy
            + vel[:, 2, None, None, None] * gz
        )
        out[...] = np.einsum("qi,eqjk->eijk", basis, adv)


class DelDotVec2d(Kernel):
    """DEL_DOT_VEC_2D: divergence of a vector field over a 2D staggered
    mesh with node indirection lists."""

    name = "DEL_DOT_VEC_2D"
    klass = KernelClass.APPS
    default_size = 250_000  # zones
    reps = 100
    traits = KernelTraits(
        flops_per_iter=32.0,
        reads_per_iter=9.0,
        writes_per_iter=1.0,
        footprint_elems=6.0,
        features=frozenset({LoopFeature.INDIRECTION}),
        vector_speedup_cap=0.5,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = max(2, int(round(n ** 0.5)))
        npdt = numpy_dtype(dtype)
        nnodes = (dim + 1) * (dim + 1)
        rng = self.rng()
        x = rng.random(nnodes).astype(npdt)
        y = rng.random(nnodes).astype(npdt)
        xdot = rng.random(nnodes).astype(npdt)
        ydot = rng.random(nnodes).astype(npdt)
        # Node index lists for each zone corner (the RAJAPerf real_zones
        # indirection).
        ii, jj = np.meshgrid(np.arange(dim), np.arange(dim), indexing="ij")
        n00 = (ii * (dim + 1) + jj).ravel()
        n10 = n00 + (dim + 1)
        n01 = n00 + 1
        n11 = n10 + 1
        return {
            "x": x, "y": y, "xdot": xdot, "ydot": ydot,
            "n00": n00, "n01": n01, "n10": n10, "n11": n11,
            "div": np.zeros(dim * dim, dtype=npdt),
            "half": npdt(0.5),
        }

    def execute(self, ws: Workspace) -> None:
        x, y = ws["x"], ws["y"]
        xd, yd = ws["xdot"], ws["ydot"]
        n00, n01 = ws["n00"], ws["n01"]
        n10, n11 = ws["n10"], ws["n11"]
        half = ws["half"]
        # Gather corner coordinates and velocities per zone.
        dx1 = half * (x[n10] + x[n11] - x[n00] - x[n01])
        dy1 = half * (y[n10] + y[n11] - y[n00] - y[n01])
        dx2 = half * (x[n01] + x[n11] - x[n00] - x[n10])
        dy2 = half * (y[n01] + y[n11] - y[n00] - y[n10])
        du1 = half * (xd[n10] + xd[n11] - xd[n00] - xd[n01])
        dv1 = half * (yd[n10] + yd[n11] - yd[n00] - yd[n01])
        du2 = half * (xd[n01] + xd[n11] - xd[n00] - xd[n10])
        dv2 = half * (yd[n01] + yd[n11] - yd[n00] - yd[n10])
        area = dx1 * dy2 - dx2 * dy1
        area = np.where(np.abs(area) < 1e-12, 1e-12, area)
        ws["div"][:] = (du1 * dy2 - du2 * dy1 + dv2 * dx1 - dv1 * dx2) / area


class Diffusion3dpa(Kernel):
    """DIFFUSION3DPA: 3D diffusion by partial assembly."""

    name = "DIFFUSION3DPA"
    klass = KernelClass.APPS
    default_size = 4_096
    reps = 50
    traits = KernelTraits(
        flops_per_iter=3000.0,
        reads_per_iter=130.0,
        writes_per_iter=64.0,
        footprint_elems=256.0,
        features=_FEM_FEATURES,
        parallel_fraction=0.97,
        vector_speedup_cap=0.6,
    )

    Q = 4

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        q = self.Q
        rng = self.rng()
        return {
            "dbasis": rng.random((q, q)).astype(npdt),
            "coeff": rng.random((n, q, q, q)).astype(npdt),
            "dofs": rng.random((n, q, q, q)).astype(npdt),
            "out": np.zeros((n, q, q, q), dtype=npdt),
        }

    def execute(self, ws: Workspace) -> None:
        d = ws["dbasis"]
        dofs, coeff, out = ws["dofs"], ws["coeff"], ws["out"]
        gx = np.einsum("qi,eijk->eqjk", d, dofs)
        gy = np.einsum("qj,eijk->eiqk", d, dofs)
        gz = np.einsum("qk,eijk->eijq", d, dofs)
        out[...] = (
            np.einsum("qi,eqjk->eijk", d, coeff * gx)
            + np.einsum("qj,eiqk->eijk", d, coeff * gy)
            + np.einsum("qk,eijq->eijk", d, coeff * gz)
        )


class Energy(Kernel):
    """ENERGY: the LLNL hydrodynamics energy update — six coupled
    elementwise loops with data-dependent conditionals."""

    name = "ENERGY"
    klass = KernelClass.APPS
    default_size = 1_000_000
    reps = 130
    traits = KernelTraits(
        flops_per_iter=18.0,
        reads_per_iter=10.0,
        writes_per_iter=2.0,
        footprint_elems=12.0,
        features=frozenset(
            # The sound-speed update calls sqrt (libm on GCC 8 RISC-V).
            {LoopFeature.STREAMING, LoopFeature.CONDITIONAL,
             LoopFeature.MATH_CALL}
        ),
        vector_speedup_cap=0.5,
        regions_per_rep=6,  # RAJAPerf's ENERGY is six parallel loops
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        rng = self.rng()

        def arr(salt: float = 1.0):
            return (rng.random(n) * salt).astype(npdt)

        return {
            "e_new": np.zeros(n, dtype=npdt),
            "e_old": arr(),
            "delvc": (rng.random(n) - 0.5).astype(npdt),
            "p_new": arr(), "p_old": arr(),
            "q_new": np.zeros(n, dtype=npdt), "q_old": arr(),
            "work": arr(0.1),
            "compHalfStep": arr(), "pHalfStep": arr(),
            "bvc": arr(), "pbvc": arr(),
            "ql_old": arr(0.5), "qq_old": arr(0.5),
            "vnewc": arr() + npdt(0.5),
            "rho0": npdt(1.0),
            "e_cut": npdt(1e-7), "emin": npdt(-1e15), "q_cut": npdt(1e-7),
        }

    def execute(self, ws: Workspace) -> None:
        half = ws["e_new"].dtype.type(0.5)
        e_new, delvc = ws["e_new"], ws["delvc"]
        e_new[:] = (
            ws["e_old"]
            - half * delvc * (ws["p_old"] + ws["q_old"])
            + half * ws["work"]
        )
        np.maximum(e_new, ws["emin"], out=e_new)
        # q at half step, guarded by the sign of delvc.
        vhalf = np.sqrt(np.abs(ws["compHalfStep"])) + 1.0
        ssc = ws["pbvc"] * e_new + vhalf * ws["bvc"] * ws["pHalfStep"]
        np.maximum(ssc, 1e-12, out=ssc)
        ssc = np.sqrt(ssc / ws["rho0"])
        q_half = np.where(
            delvc > 0,
            0.0,
            ssc * ws["ql_old"] + ws["qq_old"],
        )
        e_new += half * delvc * (
            3.0 * (ws["p_old"] + ws["q_old"])
            - 4.0 * (ws["pHalfStep"] + q_half)
        )
        e_new += half * ws["work"]
        small = np.abs(e_new) < ws["e_cut"]
        e_new[small] = 0.0
        np.maximum(e_new, ws["emin"], out=e_new)
        ws["q_new"][:] = np.where(delvc > 0, 0.0, q_half)


class Fir(Kernel):
    """FIR: 16-tap finite impulse response filter,
    ``out[i] = sum_j coeff[j] * in[i+j]``."""

    name = "FIR"
    klass = KernelClass.APPS
    default_size = 1_000_000
    reps = 160
    traits = KernelTraits(
        flops_per_iter=32.0,
        reads_per_iter=2.0,  # sliding window is cache-resident
        writes_per_iter=1.0,
        footprint_elems=2.0,
        features=frozenset({LoopFeature.STREAMING, LoopFeature.STENCIL}),
        vector_speedup_cap=0.8,
    )

    TAPS = 16

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        coeff = np.asarray(
            [3.0, -1.0, -1.0, -1.0, -1.0, 3.0, -1.0, -1.0,
             -1.0, -1.0, 3.0, -1.0, -1.0, -1.0, -1.0, 3.0],
            dtype=npdt,
        )
        sig = linspace_init(n + self.TAPS, dtype, 0.0, 1.0)
        return {
            "in": sig,
            "out": np.zeros(n, dtype=npdt),
            "coeff": coeff,
        }

    def execute(self, ws: Workspace) -> None:
        x, out, coeff = ws["in"], ws["out"], ws["coeff"]
        n = out.size
        out[:] = 0
        for j, c in enumerate(coeff):
            out += c * x[j : j + n]


def _halo_index_lists(dim: int, width: int) -> list[np.ndarray]:
    """Index lists of the six faces of a dim^3 grid, ``width`` deep —
    what a 3D halo exchange packs and unpacks."""
    grid = np.arange(dim**3).reshape(dim, dim, dim)
    lists = []
    for axis in range(3):
        view = np.moveaxis(grid, axis, 0)
        lists.append(view[:width].ravel().copy())
        lists.append(view[-width:].ravel().copy())
    return lists


class HaloExchange(Kernel):
    """HALOEXCHANGE: pack and unpack six face buffers through index
    lists — one loop per variable per face."""

    name = "HALOEXCHANGE"
    klass = KernelClass.APPS
    default_size = 125_000  # 50^3 grid
    reps = 200
    traits = KernelTraits(
        flops_per_iter=0.0,
        reads_per_iter=1.0,
        writes_per_iter=1.0,
        footprint_elems=3.2,
        features=frozenset({LoopFeature.INDIRECTION}),
        parallel_fraction=0.80,
        traffic_scale=0.25,  # only faces move, not the volume
        regions_per_rep=36,  # one loop per (face, variable, direction)
    )

    NVARS = 3

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = max(4, int(round(n ** (1.0 / 3.0))))
        npdt = numpy_dtype(dtype)
        rng = self.rng()
        variables = [
            rng.random(dim**3).astype(npdt) for _ in range(self.NVARS)
        ]
        lists = _halo_index_lists(dim, width=1)
        buffers = [
            np.zeros(lst.size * self.NVARS, dtype=npdt) for lst in lists
        ]
        return {"vars": variables, "lists": lists, "buffers": buffers}

    def execute(self, ws: Workspace) -> None:
        for lst, buf in zip(ws["lists"], ws["buffers"]):
            m = lst.size
            for v, var in enumerate(ws["vars"]):
                np.take(var, lst, out=buf[v * m : (v + 1) * m])
            for v, var in enumerate(ws["vars"]):
                var[lst] = buf[v * m : (v + 1) * m]

    def checksum(self, ws: Workspace) -> float:
        return float(
            sum(np.sum(v, dtype=np.float64) for v in ws["vars"])
        )


class HaloExchangeFused(Kernel):
    """HALOEXCHANGE_FUSED: the same packing with all per-variable loops
    fused into one workgroup launch — less launch overhead, same data."""

    name = "HALOEXCHANGE_FUSED"
    klass = KernelClass.APPS
    default_size = 125_000
    reps = 200
    traits = KernelTraits(
        flops_per_iter=0.0,
        reads_per_iter=1.0,
        writes_per_iter=1.0,
        footprint_elems=3.2,
        features=frozenset({LoopFeature.INDIRECTION}),
        parallel_fraction=0.88,
        traffic_scale=0.25,
        regions_per_rep=2,  # fused pack and fused unpack
    )

    NVARS = 3

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = max(4, int(round(n ** (1.0 / 3.0))))
        npdt = numpy_dtype(dtype)
        rng = self.rng()
        variables = [
            rng.random(dim**3).astype(npdt) for _ in range(self.NVARS)
        ]
        lists = _halo_index_lists(dim, width=1)
        fused_list = np.concatenate(lists)
        buffer = np.zeros(fused_list.size * self.NVARS, dtype=npdt)
        return {"vars": variables, "list": fused_list, "buffer": buffer}

    def execute(self, ws: Workspace) -> None:
        lst, buf = ws["list"], ws["buffer"]
        m = lst.size
        for v, var in enumerate(ws["vars"]):
            np.take(var, lst, out=buf[v * m : (v + 1) * m])
        for v, var in enumerate(ws["vars"]):
            var[lst] = buf[v * m : (v + 1) * m]

    def checksum(self, ws: Workspace) -> float:
        return float(
            sum(np.sum(v, dtype=np.float64) for v in ws["vars"])
        )


class Ltimes(Kernel):
    """LTIMES: discrete-ordinates scattering source,
    ``phi[z,g,m] += ell[m,d] * psi[z,g,d]`` (through RAJA views)."""

    name = "LTIMES"
    klass = KernelClass.APPS
    default_size = 64_000  # zones
    reps = 50
    traits = KernelTraits(
        flops_per_iter=1568.0,  # 2 * G(32) * M(49) * ... per zone scaled
        reads_per_iter=50.0,
        writes_per_iter=25.0,
        footprint_elems=80.0,
        features=_FEM_FEATURES,
        parallel_fraction=0.97,
        vector_speedup_cap=0.7,
    )

    NG = 32
    NM = 7
    ND = 7

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        rng = self.rng()
        return {
            "ell": rng.random((self.NM, self.ND)).astype(npdt),
            "psi": rng.random((n, self.NG, self.ND)).astype(npdt),
            "phi": np.zeros((n, self.NG, self.NM), dtype=npdt),
        }

    def execute(self, ws: Workspace) -> None:
        ws["phi"] += np.einsum("md,zgd->zgm", ws["ell"], ws["psi"])


class LtimesNoview(Kernel):
    """LTIMES_NOVIEW: identical arithmetic to LTIMES on raw arrays —
    RAJAPerf's control for view abstraction overhead."""

    name = "LTIMES_NOVIEW"
    klass = KernelClass.APPS
    default_size = 64_000
    reps = 50
    traits = KernelTraits(
        flops_per_iter=1568.0,
        reads_per_iter=50.0,
        writes_per_iter=25.0,
        footprint_elems=80.0,
        features=_FEM_FEATURES,
        parallel_fraction=0.97,
        vector_speedup_cap=0.7,
    )

    NG = 32
    NM = 7
    ND = 7

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        rng = self.rng(7)
        return {
            "ell": rng.random((self.NM, self.ND)).astype(npdt),
            "psi": rng.random((n, self.NG, self.ND)).astype(npdt),
            "phi": np.zeros((n, self.NG, self.NM), dtype=npdt),
        }

    def execute(self, ws: Workspace) -> None:
        phi, ell, psi = ws["phi"], ws["ell"], ws["psi"]
        # Same contraction expressed as a matmul over the trailing axes.
        phi += psi @ ell.T


class Mass3dpa(Kernel):
    """MASS3DPA: mass-matrix action by partial assembly — interpolate to
    quadrature points, scale by quadrature data, project back."""

    name = "MASS3DPA"
    klass = KernelClass.APPS
    default_size = 4_096
    reps = 50
    traits = KernelTraits(
        flops_per_iter=2000.0,
        reads_per_iter=130.0,
        writes_per_iter=64.0,
        footprint_elems=256.0,
        features=_FEM_FEATURES,
        parallel_fraction=0.97,
        vector_speedup_cap=0.6,
    )

    Q = 4

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        q = self.Q
        rng = self.rng()
        return {
            "basis": rng.random((q, q)).astype(npdt),
            "quad": rng.random((n, q, q, q)).astype(npdt),
            "dofs": rng.random((n, q, q, q)).astype(npdt),
            "out": np.zeros((n, q, q, q), dtype=npdt),
        }

    def execute(self, ws: Workspace) -> None:
        b = ws["basis"]
        # Tensor-product interpolation to quadrature points...
        u = np.einsum("qi,eijk->eqjk", b, ws["dofs"])
        u = np.einsum("rj,eqjk->eqrk", b, u)
        u = np.einsum("sk,eqrk->eqrs", b, u)
        u *= ws["quad"]
        # ...then the transpose projection back to dofs.
        u = np.einsum("sk,eqrs->eqrk", b, u)
        u = np.einsum("rj,eqrk->eqjk", b, u)
        ws["out"][...] = np.einsum("qi,eqjk->eijk", b, u)


class NodalAccumulation3d(Kernel):
    """NODAL_ACCUMULATION_3D: scatter-add a zonal quantity to the eight
    surrounding nodes — an atomic/indirection kernel."""

    name = "NODAL_ACCUMULATION_3D"
    klass = KernelClass.APPS
    default_size = 125_000
    reps = 100
    traits = KernelTraits(
        flops_per_iter=8.0,
        reads_per_iter=1.0,
        writes_per_iter=8.0,
        footprint_elems=2.1,
        features=frozenset(
            {LoopFeature.INDIRECTION, LoopFeature.ATOMIC}
        ),
        parallel_fraction=0.85,
        vector_speedup_cap=0.4,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = max(2, int(round(n ** (1.0 / 3.0))))
        npdt = numpy_dtype(dtype)
        nzones = dim**3
        nnodes = (dim + 1) ** 3
        vol = self.rng().random(nzones).astype(npdt)
        side = dim + 1
        ii, jj, kk = np.meshgrid(
            np.arange(dim), np.arange(dim), np.arange(dim), indexing="ij"
        )
        base = (ii * side + jj) * side + kk
        offsets = [
            0, 1, side, side + 1,
            side * side, side * side + 1,
            side * side + side, side * side + side + 1,
        ]
        corners = np.stack([base.ravel() + off for off in offsets], axis=1)
        return {
            "vol": vol,
            "corners": corners,
            "x": np.zeros(nnodes, dtype=npdt),
            "eighth": npdt(0.125),
        }

    def execute(self, ws: Workspace) -> None:
        x, corners = ws["x"], ws["corners"]
        contrib = (ws["eighth"] * ws["vol"])[:, None]
        np.add.at(x, corners.ravel(),
                  np.broadcast_to(contrib, corners.shape).ravel())


class Pressure(Kernel):
    """PRESSURE: the LLNL hydro pressure EOS update — two loops, the
    second guarded by compression/volume conditionals."""

    name = "PRESSURE"
    klass = KernelClass.APPS
    default_size = 1_000_000
    reps = 700
    traits = KernelTraits(
        flops_per_iter=5.0,
        reads_per_iter=3.0,
        writes_per_iter=2.0,
        footprint_elems=5.0,
        features=frozenset(
            {LoopFeature.STREAMING, LoopFeature.CONDITIONAL}
        ),
        vector_speedup_cap=0.6,
        regions_per_rep=2,  # RAJAPerf's PRESSURE is two parallel loops
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        npdt = numpy_dtype(dtype)
        rng = self.rng()
        return {
            "compression": (rng.random(n) - 0.1).astype(npdt),
            "bvc": np.zeros(n, dtype=npdt),
            "p_new": np.zeros(n, dtype=npdt),
            "e_old": rng.random(n).astype(npdt),
            "vnewc": (rng.random(n) + 0.5).astype(npdt),
            "cls": npdt(2.0 / 3.0),
            "p_cut": npdt(1e-7),
            "pmin": npdt(1e-9),
            "eosvmax": npdt(1.2),
        }

    def execute(self, ws: Workspace) -> None:
        one = ws["bvc"].dtype.type(1.0)
        np.multiply(ws["compression"] + one, ws["cls"], out=ws["bvc"])
        p = ws["bvc"] * ws["e_old"]
        p[np.abs(p) < ws["p_cut"]] = 0.0
        p = np.where(ws["vnewc"] >= ws["eosvmax"], 0.0, p)
        np.maximum(p, ws["pmin"], out=p)
        ws["p_new"][:] = p


class Vol3d(Kernel):
    """VOL3D: hexahedral cell volumes from node coordinates — a
    flop-dense 3D stencil over the node mesh."""

    name = "VOL3D"
    klass = KernelClass.APPS
    default_size = 125_000
    reps = 100
    traits = KernelTraits(
        flops_per_iter=72.0,
        reads_per_iter=24.0,
        writes_per_iter=1.0,
        footprint_elems=4.0,
        features=frozenset(
            {
                LoopFeature.STENCIL,
                LoopFeature.STREAMING,
                LoopFeature.ALIAS_UNPROVABLE,
            }
        ),
        vector_speedup_cap=0.7,
    )

    def prepare(self, n: int, dtype: DType) -> Workspace:
        dim = max(2, int(round(n ** (1.0 / 3.0))))
        npdt = numpy_dtype(dtype)
        side = dim + 1
        # Jittered unit grid keeps volumes positive but nontrivial.
        axes = np.arange(side, dtype=np.float64)
        zz, yy, xx = np.meshgrid(axes, axes, axes, indexing="ij")
        rng = self.rng()

        def jitter():
            return (rng.random((side, side, side)) - 0.5) * 0.2

        return {
            "x": (xx + jitter()).astype(npdt),
            "y": (yy + jitter()).astype(npdt),
            "z": (zz + jitter()).astype(npdt),
            "vol": np.zeros((dim, dim, dim), dtype=npdt),
        }

    def execute(self, ws: Workspace) -> None:
        x, y, z, vol = ws["x"], ws["y"], ws["z"], ws["vol"]
        i = slice(0, -1)
        j = slice(1, None)

        def corners(a):
            return (
                a[i, i, i], a[i, i, j], a[i, j, i], a[i, j, j],
                a[j, i, i], a[j, i, j], a[j, j, i], a[j, j, j],
            )

        cx = corners(x)
        cy = corners(y)
        cz = corners(z)

        def tet(a, b, c, d):
            """Unsigned volume of tetrahedron (a, b, c, d) by corner
            index, vectorized over all cells."""
            ux, uy, uz = cx[b] - cx[a], cy[b] - cy[a], cz[b] - cz[a]
            vx, vy, vz = cx[c] - cx[a], cy[c] - cy[a], cz[c] - cz[a]
            wx, wy, wz = cx[d] - cx[a], cy[d] - cy[a], cz[d] - cz[a]
            det = (
                ux * (vy * wz - vz * wy)
                - uy * (vx * wz - vz * wx)
                + uz * (vx * wy - vy * wx)
            )
            return np.abs(det)

        # Kuhn decomposition of the hexahedron into six tetrahedra along
        # the 0-7 long diagonal; exact for affine cells.
        vol[...] = (
            tet(0, 1, 3, 7)
            + tet(0, 1, 5, 7)
            + tet(0, 2, 3, 7)
            + tet(0, 2, 6, 7)
            + tet(0, 4, 5, 7)
            + tet(0, 4, 6, 7)
        ) / vol.dtype.type(6.0)


APPS_KERNELS = (
    Convection3dpa,
    DelDotVec2d,
    Diffusion3dpa,
    Energy,
    Fir,
    HaloExchange,
    HaloExchangeFused,
    Ltimes,
    LtimesNoview,
    Mass3dpa,
    NodalAccumulation3d,
    Pressure,
    Vol3d,
)
