"""Loop-nest IR sketches for all 64 RAJAPerf kernels.

Each entry mirrors the corresponding C++ kernel's loop structure closely
enough for the static analyses in :mod:`repro.compiler.analysis` to
derive its vectorizer-relevant features. The derived features are pinned
to the declared kernel traits in ``tests/compiler/test_analysis.py`` —
any drift between the two representations fails loudly.

Conventions: ``TRIP_N`` is the symbolic problem size; stride values are
element strides of the innermost loop; ``stride=None`` marks indirect
(gather/scatter) accesses. ``ROW`` is the dedicated
:class:`~repro.compiler.ir.SymbolicStride` sentinel standing for "one
matrix row" in 2D/3D nests: the feature analysis only needs
``|stride| > 1`` (any such value behaves identically there), but the
dependence analysis must distinguish a *symbolic* row-length from a real
compile-time constant — a kernel with a genuine stride of 1024 would
otherwise be indistinguishable from a row-major plane walk.
"""

from __future__ import annotations

from repro.compiler.ir import (
    Call,
    Compute,
    Loop,
    LoopNest,
    Recurrence,
    Reduce,
    ReduceOp,
    Scan,
    SymbolicStride,
    TRIP_N,
    read,
    write,
)
from repro.util.errors import ConfigError

#: Symbolic "one matrix row" stride for 2D/3D plane neighbours. Not a
#: concrete number: ``is_symbolic(ROW)`` (and of ``-ROW``, ``ROW + 1``,
#: ``ROW * ROW``...) holds, so a problem size of 1024 can never alias it.
ROW = SymbolicStride(name="ROW")


def _elementwise(*arrays_out, reads=(), conditional=False,
                 math_calls=(), atomic=False) -> LoopNest:
    """A single unit-stride elementwise loop."""
    accesses = tuple(read(a) for a in reads) + tuple(
        write(a) for a in arrays_out
    )
    return LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Compute(accesses, conditional=conditional,
                        math_calls=math_calls, atomic=atomic),
            )),
        )
    )


def _stencil(out: str, in_: str, offsets, restrict_pointers: bool,
             extra_reads=()) -> LoopNest:
    accesses = tuple(
        read(in_, offset=off) for off in offsets
    ) + tuple(read(a) for a in extra_reads) + (write(out),)
    return LoopNest(
        loops=(Loop(TRIP_N, body=(Compute(accesses),)),),
        restrict_pointers=restrict_pointers,
    )


def _matmul_nest() -> LoopNest:
    """GEMM nest after the vectorizer's loop interchange (ikj order):
    unit-stride accesses, symbolic-trip innermost reduction."""
    return LoopNest(
        loops=(
            Loop(TRIP_N, parallel=True, body=(
                Loop(TRIP_N, parallel=False, body=(
                    Loop(TRIP_N, parallel=False, body=(
                        Reduce(ReduceOp.SUM, (read("A"), read("B"))),
                    )),
                )),
            )),
        )
    )


def _matvec_nest(arrays=("A",)) -> LoopNest:
    """i/j matvec nest: nested reduction per output element."""
    reads = tuple(read(a) for a in arrays) + (read("x"),)
    return LoopNest(
        loops=(
            Loop(TRIP_N, parallel=True, body=(
                Loop(TRIP_N, parallel=False, body=(
                    Reduce(ReduceOp.SUM, reads),
                )),
            )),
        )
    )


def _fem_nest() -> LoopNest:
    """Partial-assembly FEM: per-element tensor contractions with
    non-unit tensor strides, constant-trip inner loops."""
    return LoopNest(
        loops=(
            Loop(TRIP_N, parallel=True, body=(
                Loop(4, parallel=False, body=(
                    Loop(4, parallel=False, body=(
                        Compute((read("dofs", stride=4),
                                 read("basis", stride=4),
                                 write("out", stride=4))),
                    )),
                )),
            )),
        )
    )


KERNEL_IR: dict[str, LoopNest] = {
    # --- Algorithm -------------------------------------------------------
    "SCAN": LoopNest(
        loops=(Loop(TRIP_N, body=(Scan((read("x"), write("y"))),)),)
    ),
    "SORT": LoopNest(loops=(Loop(TRIP_N, body=(Call("std::sort"),)),)),
    "SORTPAIRS": LoopNest(
        loops=(
            Loop(TRIP_N, body=(Call("std::sort"),)),
            Loop(TRIP_N, body=(
                Compute((read("vals", stride=None), write("out_vals"))),
            )),
        )
    ),
    "REDUCE_SUM": LoopNest(
        loops=(Loop(TRIP_N, body=(Reduce(ReduceOp.SUM, (read("x"),)),)),)
    ),
    "MEMSET": _elementwise("x"),
    "MEMCPY": _elementwise("y", reads=("x",)),
    # --- Apps --------------------------------------------------------------
    "CONVECTION3DPA": _fem_nest(),
    "DIFFUSION3DPA": _fem_nest(),
    "MASS3DPA": _fem_nest(),
    "LTIMES": _fem_nest(),
    "LTIMES_NOVIEW": _fem_nest(),
    "DEL_DOT_VEC_2D": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Compute((
                    read("x", stride=None), read("y", stride=None),
                    read("xdot", stride=None), read("ydot", stride=None),
                    write("div"),
                )),
            )),
        )
    ),
    "ENERGY": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Compute((read("e_old"), read("delvc"), write("e_new")),
                        conditional=True),
            )),
            Loop(TRIP_N, body=(
                Compute((read("pbvc"), read("bvc"), write("q_new")),
                        conditional=True, math_calls=("sqrt",)),
            )),
        )
    ),
    "FIR": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Compute(tuple(
                    read("in", offset=j) for j in range(16)
                ) + (write("out"),)),
            )),
        )
    ),
    "HALOEXCHANGE": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Compute((read("var", stride=None), write("buffer"))),
            )),
            Loop(TRIP_N, body=(
                Compute((read("buffer"), write("var", stride=None))),
            )),
        )
    ),
    "HALOEXCHANGE_FUSED": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Compute((read("vars", stride=None), write("buffer"))),
            )),
            Loop(TRIP_N, body=(
                Compute((read("buffer"), write("vars", stride=None))),
            )),
        )
    ),
    "NODAL_ACCUMULATION_3D": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Compute((read("vol"), write("x", stride=None)),
                        atomic=True),
            )),
        )
    ),
    "PRESSURE": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Compute((read("compression"), write("bvc"))),
            )),
            Loop(TRIP_N, body=(
                Compute((read("bvc"), read("e_old"), write("p_new")),
                        conditional=True),
            )),
        )
    ),
    "VOL3D": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Compute(tuple(
                    read(a, offset=off)
                    for a in ("x", "y", "z")
                    for off in (0, 1, ROW, ROW + 1)
                ) + (write("vol"),)),
            )),
        ),
        # x/y/z/vol are plain pointers into one mesh allocation.
        restrict_pointers=False,
    ),
    # --- Basic -------------------------------------------------------------
    "DAXPY": _elementwise("y", reads=("x", "y")),
    "DAXPY_ATOMIC": _elementwise("y", reads=("x", "y"), atomic=True),
    "IF_QUAD": _elementwise(
        "x1", "x2", reads=("a", "b", "c"), conditional=True,
        math_calls=("sqrt",),
    ),
    "INDEXLIST": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Compute((read("x"), write("list", stride=None)),
                        conditional=True),
            )),
        )
    ),
    "INDEXLIST_3LOOP": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Compute((read("x"), write("counts")), conditional=True),
            )),
            # The scan pass is a library/parallel-primitive scan in the
            # three-loop formulation; the fill pass scatters through the
            # counts.
            Loop(TRIP_N, body=(
                Compute((read("counts"),
                         write("list", stride=None)),
                        conditional=True),
            )),
        )
    ),
    "INIT3": _elementwise("out1", "out2", "out3", reads=("in1", "in2")),
    "INIT_VIEW1D": _elementwise("a"),
    "INIT_VIEW1D_OFFSET": _elementwise("a"),
    "MAT_MAT_SHARED": LoopNest(
        loops=(
            Loop(TRIP_N, parallel=True, body=(
                Loop(16, parallel=False, body=(
                    Loop(16, parallel=False, body=(
                        Reduce(ReduceOp.SUM,
                               (read("tile_a"), read("tile_b"))),
                    )),
                )),
            )),
        )
    ),
    "MULADDSUB": _elementwise(
        "out1", "out2", "out3", reads=("in1", "in2")
    ),
    "NESTED_INIT": LoopNest(
        loops=(
            Loop(TRIP_N, parallel=True, body=(
                Loop(TRIP_N, parallel=False, body=(
                    Loop(TRIP_N, parallel=False, body=(
                        Compute((write("array"),)),
                    )),
                )),
            )),
        )
    ),
    "PI_ATOMIC": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Reduce(ReduceOp.SUM, (read("x"),), atomic=True),
            )),
        )
    ),
    "PI_REDUCE": LoopNest(
        loops=(Loop(TRIP_N, body=(Reduce(ReduceOp.SUM, (read("x"),)),)),)
    ),
    "REDUCE3_INT": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Reduce(ReduceOp.SUM, (read("x"),), is_float=False),
                Reduce(ReduceOp.MIN, (read("x"),), is_float=False),
                Reduce(ReduceOp.MAX, (read("x"),), is_float=False),
            )),
        )
    ),
    "REDUCE_STRUCT": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Reduce(ReduceOp.SUM, (read("x"),)),
                Reduce(ReduceOp.MIN, (read("x"),)),
                Reduce(ReduceOp.MAX, (read("x"),)),
                Reduce(ReduceOp.SUM, (read("y"),)),
                Reduce(ReduceOp.MIN, (read("y"),)),
                Reduce(ReduceOp.MAX, (read("y"),)),
            )),
        )
    ),
    "TRAP_INT": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Reduce(ReduceOp.SUM, (read("x"),),
                       math_calls=("sqrt",)),
            )),
        )
    ),
    # --- Lcals -------------------------------------------------------------
    "DIFF_PREDICT": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Compute((read("px", stride=14), read("cx"),
                         write("px", stride=14))),
            )),
        )
    ),
    "EOS": _stencil("x", "u", offsets=(0, 1, 2, 3, 4, 5, 6),
                    restrict_pointers=False, extra_reads=("y", "z")),
    "FIRST_DIFF": _stencil("x", "y", offsets=(0, 1),
                           restrict_pointers=True),
    "FIRST_MIN": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Reduce(ReduceOp.MINLOC, (read("x"),), is_float=True),
            )),
        )
    ),
    "FIRST_SUM": _stencil("x", "y", offsets=(-1, 0),
                          restrict_pointers=False),
    "GEN_LIN_RECUR": LoopNest(
        loops=(
            Loop(TRIP_N, parallel=False, body=(
                Recurrence((read("sa"), read("sb"), write("b5")),
                           distance=1),
            )),
        )
    ),
    "HYDRO_1D": _stencil("x", "z", offsets=(10, 11),
                         restrict_pointers=True, extra_reads=("y",)),
    "HYDRO_2D": LoopNest(
        loops=(
            Loop(TRIP_N, parallel=True, body=(
                Loop(TRIP_N, parallel=False, body=(
                    Compute((
                        read("zp", offset=-ROW), read("zq", offset=-ROW),
                        read("zr"), read("zm"), write("za"),
                    )),
                    Compute((
                        read("za"), read("zb", offset=ROW),
                        read("zz", offset=1), write("zu"),
                    )),
                )),
            )),
        ),
        restrict_pointers=False,
    ),
    "INT_PREDICT": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Compute((read("px", stride=13), write("px", stride=13))),
            )),
        )
    ),
    "PLANCKIAN": _elementwise(
        "w", "y", reads=("x", "u", "v"), math_calls=("exp",)
    ),
    "TRIDIAG_ELIM": LoopNest(
        loops=(
            Loop(TRIP_N, parallel=False, body=(
                Recurrence((read("y"), read("z"), write("x")),
                           distance=1),
            )),
        )
    ),
    # --- Polybench ---------------------------------------------------------
    "2MM": _matmul_nest(),
    "3MM": _matmul_nest(),
    "GEMM": _matmul_nest(),
    "ADI": LoopNest(
        loops=(
            Loop(TRIP_N, parallel=True, body=(
                Loop(TRIP_N, parallel=False, body=(
                    # Sweeps vectorize only across the orthogonal axis:
                    # column-stride accesses.
                    Compute((read("u", stride=ROW),
                             write("v", stride=ROW))),
                )),
            )),
        )
    ),
    "ATAX": _matvec_nest(),
    "FDTD_2D": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Compute((read("hz", offset=0), read("hz", offset=-1),
                         write("ey"))),
            )),
            Loop(TRIP_N, body=(
                Compute((read("ex", offset=1), read("ey", offset=ROW),
                         write("hz"))),
            )),
        ),
        restrict_pointers=False,
    ),
    "FLOYD_WARSHALL": LoopNest(
        loops=(
            Loop(TRIP_N, parallel=False, body=(  # pivot k
                Loop(TRIP_N, parallel=True, body=(
                    Loop(TRIP_N, parallel=False, body=(
                        # path[i,j] = min(path[i,j], ...) on floats:
                        # a compare-branch for GCC 8.
                        Compute((read("path"), read("path_k"),
                                 write("path")), conditional=True),
                    )),
                )),
            )),
        )
    ),
    "GEMVER": _matvec_nest(arrays=("A", "u1")),
    "GESUMMV": _matvec_nest(arrays=("A", "B")),
    "HEAT_3D": LoopNest(
        loops=(
            Loop(TRIP_N, parallel=True, body=(
                Loop(TRIP_N, parallel=False, body=(
                    Loop(TRIP_N, parallel=False, body=(
                        Compute((
                            read("A", offset=0), read("A", offset=1),
                            read("A", offset=-1),
                            read("A", stride=ROW),
                            read("A", stride=ROW * ROW),
                            write("B"),
                        )),
                    )),
                )),
            )),
        )
    ),
    "JACOBI_1D": _stencil("B", "A", offsets=(-1, 0, 1),
                          restrict_pointers=False),
    "JACOBI_2D": LoopNest(
        loops=(
            Loop(TRIP_N, parallel=True, body=(
                Loop(TRIP_N, parallel=False, body=(
                    Compute((
                        read("A", offset=0), read("A", offset=-1),
                        read("A", offset=1), read("A", offset=-ROW),
                        read("A", offset=ROW), write("B"),
                    )),
                )),
            )),
        ),
        restrict_pointers=False,
    ),
    "MVT": _matvec_nest(),
    # --- Stream ------------------------------------------------------------
    "ADD": _elementwise("c", reads=("a", "b")),
    "COPY": _elementwise("c", reads=("a",)),
    "DOT": LoopNest(
        loops=(
            Loop(TRIP_N, body=(
                Reduce(ReduceOp.SUM, (read("a"), read("b"))),
            )),
        )
    ),
    "MUL": _elementwise("b", reads=("c",)),
    "TRIAD": _elementwise("a", reads=("b", "c")),
}


#: Loop-nest IR for the BLAS library family (:mod:`repro.kernels.blas`).
#: Kept out of :data:`KERNEL_IR` so the RAJAPerf catalog stays pinned at
#: 64 entries; :func:`ir_for` consults both.
BLAS_IR: dict[str, LoopNest] = {
    "DGEMM": _matmul_nest(),
    "DGEMV": _matvec_nest(),
    "DSYRK": _matmul_nest(),
    # Forward substitution: the solve order is a distance-1 recurrence
    # (each unknown feeds the next elimination step).
    "DTRSM": LoopNest(
        loops=(
            Loop(TRIP_N, parallel=False, body=(
                Recurrence((read("L"), read("b"), write("x")),
                           distance=1),
            )),
        )
    ),
}


def ir_for(kernel_name: str) -> LoopNest:
    """The IR sketch for one kernel (by RAJAPerf or BLAS name)."""
    key = kernel_name.upper()
    if key in KERNEL_IR:
        return KERNEL_IR[key]
    if key in BLAS_IR:
        return BLAS_IR[key]
    raise ConfigError(f"no IR defined for kernel {kernel_name!r}")
