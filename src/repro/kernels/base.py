"""Kernel base classes: the contract every RAJAPerf kernel implements.

A kernel has two faces:

1. **Executable**: ``prepare`` builds a deterministic workspace of NumPy
   arrays for a problem size and dtype, ``execute`` runs one repetition in
   place, ``checksum`` collapses the outputs to a float for correctness
   tests. The NumPy implementations follow the hpc-parallel guide idioms:
   vectorized expressions, views over copies, in-place updates.

2. **Characterized**: :class:`KernelTraits` captures what the performance
   and compiler models need — flops and element traffic per iteration,
   loop features that gate auto-vectorization, the Amdahl parallel
   fraction, and the footprint function.
"""

from __future__ import annotations

import abc
import enum
import warnings
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.machine.vector import DType
from repro.util.errors import ConfigError

#: Workspace: named arrays plus optional scalars produced by ``prepare``.
Workspace = dict


class KernelClass(enum.Enum):
    """The six RAJAPerf kernel classes (Section 2.2 of the paper)."""

    ALGORITHM = "algorithm"
    APPS = "apps"
    BASIC = "basic"
    LCALS = "lcals"
    POLYBENCH = "polybench"
    STREAM = "stream"

    @classmethod
    def from_label(cls, label: str) -> "KernelClass":
        for member in cls:
            if member.value == label.lower():
                return member
        raise ConfigError(f"unknown kernel class {label!r}")


class LoopFeature(enum.Enum):
    """Static loop-nest properties that auto-vectorizers reason about.

    The compiler model (:mod:`repro.compiler.vectorizer`) applies
    per-compiler rules over these features to decide whether a kernel is
    vectorized and whether the vector path actually executes at runtime.
    """

    STREAMING = "streaming"  # unit-stride elementwise body
    REDUCTION_SUM = "reduction_sum"  # associative +/* reduction
    REDUCTION_MINMAX = "reduction_minmax"  # min/max (+ location) reduction
    CONDITIONAL = "conditional"  # data-dependent branch in body
    INDIRECTION = "indirection"  # gather/scatter via index array
    LOOP_CARRIED_DEP = "loop_carried_dep"  # true recurrence
    STENCIL = "stencil"  # neighbour reads (shifted views)
    NONUNIT_STRIDE = "nonunit_stride"  # strided or transposed access
    ATOMIC = "atomic"  # atomic update in body
    SCAN_DEP = "scan_dep"  # prefix-sum dependency
    LIBRARY_CALL = "library_call"  # body defers to library (sort)
    MATH_CALL = "math_call"  # transcendental libm call in body
    NESTED_REDUCTION = "nested_reduction"  # reduction inside a loop nest
    TRIANGULAR = "triangular"  # triangular iteration space
    ALIAS_UNPROVABLE = "alias_unprovable"  # needs runtime alias check
    SMALL_INNER_TRIP = "small_inner_trip"  # tiny/unknown inner trip count
    OUTER_ONLY_PARALLEL = "outer_only_parallel"  # only outer loop parallel


@dataclass(frozen=True)
class KernelTraits:
    """Static characterization of one kernel.

    Attributes:
        flops_per_iter: Floating-point operations per main-loop iteration
            (an FMA counts as two).
        reads_per_iter: Elements read per iteration.
        writes_per_iter: Elements written per iteration.
        footprint_elems: Multiplier: total resident elements as a multiple
            of the problem size (e.g. TRIAD touches 3 arrays -> 3.0).
        features: Loop features for the compiler model.
        integer_kernel: True for kernels whose main datapath is integer
            (REDUCE3_INT, FLOYD_WARSHALL-style) — these vectorize on the
            C920 even at "FP64" configs, which is what drives the one
            positive FP64 whisker in Figure 2.
        parallel_fraction: Amdahl-law parallel fraction of one repetition.
        vector_speedup_cap: Fraction (0-1] of the ideal lane speedup this
            kernel's body can realize when vectorized (stride, shuffles
            and tail handling eat into it).
        traffic_scale: Fraction of the nominal per-iteration traffic that
            must come from DRAM when the footprint misses cache entirely
            (captures reuse inside the body, e.g. blocked matmul ~0.1).
        regions_per_rep: OpenMP parallel regions launched per repetition.
            Most kernels fork once, but e.g. HALOEXCHANGE launches one
            region per (face, variable, direction) — the fork-join cost
            multiplies accordingly, which is why the apps class loses to
            threading overhead (Tables 1-3) and why the FUSED variant
            exists.
    """

    flops_per_iter: float
    reads_per_iter: float
    writes_per_iter: float
    footprint_elems: float
    features: frozenset[LoopFeature] = field(default_factory=frozenset)
    integer_kernel: bool = False
    parallel_fraction: float = 1.0
    vector_speedup_cap: float = 1.0
    traffic_scale: float = 1.0
    regions_per_rep: int = 1

    def __post_init__(self) -> None:
        if self.flops_per_iter < 0:
            raise ConfigError("flops_per_iter must be >= 0")
        if self.reads_per_iter < 0 or self.writes_per_iter < 0:
            raise ConfigError("traffic per iteration must be >= 0")
        if self.reads_per_iter + self.writes_per_iter == 0:
            raise ConfigError("kernel must touch memory")
        if self.footprint_elems <= 0:
            raise ConfigError("footprint must be positive")
        if not 0 < self.parallel_fraction <= 1:
            raise ConfigError("parallel_fraction must be in (0, 1]")
        if not 0 < self.vector_speedup_cap <= 1:
            raise ConfigError("vector_speedup_cap must be in (0, 1]")
        if not 0 < self.traffic_scale <= 1:
            raise ConfigError("traffic_scale must be in (0, 1]")
        if self.regions_per_rep < 1:
            raise ConfigError("regions_per_rep must be >= 1")
        serial_deps = self.features & {
            LoopFeature.SCAN_DEP,
            LoopFeature.LOOP_CARRIED_DEP,
        }
        if serial_deps and self.parallel_fraction >= 1.0:
            # A true serial dependency bounds the Amdahl fraction below
            # 1. Warn rather than raise: the full dependence analysis
            # (``repro lint``) owns the authoritative error.
            warnings.warn(
                "parallel_fraction is 1.0 but features declare "
                f"{', '.join(sorted(f.value for f in serial_deps))}: "
                "a serial dependency should lower the Amdahl fraction",
                stacklevel=2,
            )

    def bytes_per_iter(self, dtype: DType) -> float:
        """Nominal bytes moved per iteration for element type ``dtype``."""
        return (self.reads_per_iter + self.writes_per_iter) * dtype.bytes

    def arithmetic_intensity(self, dtype: DType) -> float:
        """Flops per byte — the roofline x-axis."""
        return self.flops_per_iter / self.bytes_per_iter(dtype)


_NUMPY_DTYPES: Mapping[DType, type] = {
    DType.FP32: np.float32,
    DType.FP64: np.float64,
    DType.INT32: np.int32,
    DType.INT64: np.int64,
}


def numpy_dtype(dtype: DType):
    """NumPy dtype object for a model :class:`DType`."""
    try:
        return _NUMPY_DTYPES[dtype]
    except KeyError:
        raise ConfigError(
            f"kernels cannot execute with dtype {dtype.label}"
        ) from None


class Kernel(abc.ABC):
    """Abstract RAJAPerf kernel.

    Subclasses define ``name``, ``klass``, ``default_size``, ``reps``,
    ``traits`` and the three executable methods. ``default_size`` is the
    size of the *main* loop (RAJAPerf's "problem size"); ``reps`` is the
    RAJAPerf repetition count used by the timing model — short kernels run
    many reps, so per-rep fork/join overhead matters for them, which is
    the mechanism behind the 64-thread collapse of the stream class in
    Tables 1-3.
    """

    #: Unique kernel name, upper-case RAJAPerf spelling.
    name: str = ""
    #: Kernel class.
    klass: KernelClass
    #: Default problem size (main loop trip count).
    default_size: int = 100_000
    #: RAJAPerf repetition count at default size.
    reps: int = 100
    #: Static characterization.
    traits: KernelTraits

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if getattr(cls, "name", ""):
            if cls.default_size < 1:
                raise ConfigError(f"{cls.name}: default_size must be >= 1")
            if cls.reps < 1:
                raise ConfigError(f"{cls.name}: reps must be >= 1")

    # -- executable face ---------------------------------------------------

    @abc.abstractmethod
    def prepare(self, n: int, dtype: DType) -> Workspace:
        """Allocate and deterministically initialize the workspace for
        problem size ``n``. Must be reproducible: no global RNG."""

    @abc.abstractmethod
    def execute(self, ws: Workspace) -> None:
        """Run one repetition in place on the workspace."""

    def checksum(self, ws: Workspace) -> float:
        """Collapse the kernel outputs to one float.

        Default: sum of all floating arrays in the workspace. Kernels with
        scalar outputs override this.
        """
        total = 0.0
        for value in ws.values():
            if isinstance(value, np.ndarray):
                total += float(np.sum(value, dtype=np.float64))
        return total

    # -- characterized face --------------------------------------------------

    def footprint_bytes(self, n: int, dtype: DType) -> float:
        """Total resident bytes at problem size ``n``."""
        return self.traits.footprint_elems * n * dtype.bytes

    def total_flops(self, n: int, dtype: DType) -> float:
        """Flops in one repetition at problem size ``n``."""
        return self.traits.flops_per_iter * n

    def total_bytes(self, n: int, dtype: DType) -> float:
        """Nominal bytes moved in one repetition at size ``n``."""
        return self.traits.bytes_per_iter(dtype) * n

    def rng(self, salt: int = 0) -> np.random.Generator:
        """Kernel-specific deterministic RNG for workspace init.

        Seeded via BLAKE2 (not ``hash``, which is salted per process) so
        workspaces — and therefore checksums — are reproducible across
        runs and machines.
        """
        from repro.util.rng import derive_seed

        seed = derive_seed("kernel-init", self.name, salt) % (2**32)
        return np.random.default_rng(seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel {self.name} ({self.klass.value})>"


def linspace_init(n: int, dtype: DType, lo: float = 0.0,
                  hi: float = 1.0) -> np.ndarray:
    """Deterministic, dtype-correct array initialization used by most
    kernels (matches RAJAPerf's predictable init data)."""
    if n < 1:
        raise ConfigError("array size must be >= 1")
    return np.linspace(lo, hi, n, dtype=numpy_dtype(dtype))
