"""Compiler models: per-kernel auto-vectorization decisions.

Models the three toolchains in the paper: T-Head's XuanTie GCC fork
(the only compiler emitting RVV v0.7.1 for the C920), mainline GCC for
the x86 platforms, and Clang (RVV v1.0 only, requiring the RVV-rollback
tool from :mod:`repro.isa.rollback` to run on the C920).

The decision engine in :mod:`repro.compiler.vectorizer` reproduces the
published auto-vectorization statistics: GCC vectorizes 30 of the 64
RAJAPerf kernels (7 of which take the scalar path at runtime), Clang 59
(3 scalar at runtime) — Section 3.2, citing [11].
"""

from repro.compiler.model import (
    CLANG_16,
    Compiler,
    GCC_8_3,
    GCC_11_2,
    VectorFlavor,
    XUANTIE_GCC_8_4,
    compiler_by_name,
)
from repro.compiler.analysis import (
    DECISIVE_FEATURES,
    derive_features,
    features_agree,
)
from repro.compiler.ir import Loop, LoopNest
from repro.compiler.vectorizer import (
    VectorizationReport,
    analyze,
    suite_statistics,
)

__all__ = [
    "Compiler",
    "VectorFlavor",
    "XUANTIE_GCC_8_4",
    "GCC_8_3",
    "GCC_11_2",
    "CLANG_16",
    "compiler_by_name",
    "VectorizationReport",
    "analyze",
    "suite_statistics",
    "derive_features",
    "features_agree",
    "DECISIVE_FEATURES",
    "Loop",
    "LoopNest",
]
