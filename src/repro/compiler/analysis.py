"""Static loop analysis: derive vectorizer features from kernel IR.

Implements the analyses a real auto-vectorizer front-end performs over
the :mod:`repro.compiler.ir` loop nests:

* **stride inspection** — unit vs non-unit vs indirect accesses;
* **dependence classification** — recurrences, prefix scans;
* **reduction recognition** — including the GCC 8 rule that *float*
  min/max reductions lower to compare-branches (NaN semantics without
  ``-ffast-math``) while the integer idiom vectorizes;
* **nesting/cost classification** — reductions nested in 2-deep nests
  (matvecs) vs symbolic-trip innermost reductions in 3-deep nests
  (matmuls, whose trip defeats Clang's runtime cost check);
* **alias reasoning** — loop nests without provably distinct pointers
  get runtime alias versioning.

The derived set is pinned against each kernel's declared traits for all
64 kernels in ``tests/compiler/test_analysis.py`` — the declared traits
are therefore *consequences* of code structure, not free parameters.
"""

from __future__ import annotations

from repro.compiler.ir import (
    Access,
    Call,
    Compute,
    Loop,
    LoopNest,
    Recurrence,
    Reduce,
    ReduceOp,
    Scan,
    TRIP_N,
)
from repro.kernels.base import LoopFeature
from repro.util.errors import CompilationError

#: Features the vectorizer rules actually consult; the remaining members
#: of LoopFeature (STREAMING, STENCIL, OUTER_ONLY_PARALLEL, TRIANGULAR,
#: SMALL_INNER_TRIP's informational cousins) describe memory behaviour
#: and are consumed by the performance model instead.
DECISIVE_FEATURES = frozenset(
    {
        LoopFeature.CONDITIONAL,
        LoopFeature.INDIRECTION,
        LoopFeature.LOOP_CARRIED_DEP,
        LoopFeature.ATOMIC,
        LoopFeature.SCAN_DEP,
        LoopFeature.LIBRARY_CALL,
        LoopFeature.NONUNIT_STRIDE,
        LoopFeature.MATH_CALL,
        LoopFeature.NESTED_REDUCTION,
        LoopFeature.SMALL_INNER_TRIP,
        LoopFeature.ALIAS_UNPROVABLE,
        LoopFeature.REDUCTION_SUM,
        LoopFeature.REDUCTION_MINMAX,
    }
)


def _access_features(accesses: tuple[Access, ...]) -> set[LoopFeature]:
    out: set[LoopFeature] = set()
    for acc in accesses:
        if acc.stride is None:
            out.add(LoopFeature.INDIRECTION)
        elif abs(acc.stride) != 1:
            out.add(LoopFeature.NONUNIT_STRIDE)
    return out


def _statement_features(
    stmt, depth: int, path: tuple[Loop, ...]
) -> set[LoopFeature]:
    out: set[LoopFeature] = set()
    if isinstance(stmt, Call):
        out.add(LoopFeature.LIBRARY_CALL)
        return out
    if isinstance(stmt, Scan):
        out.add(LoopFeature.SCAN_DEP)
        out |= _access_features(stmt.accesses)
        if stmt.conditional:
            out.add(LoopFeature.CONDITIONAL)
        return out
    if isinstance(stmt, Recurrence):
        out.add(LoopFeature.LOOP_CARRIED_DEP)
        out |= _access_features(stmt.accesses)
        return out
    if isinstance(stmt, Reduce):
        out |= _access_features(stmt.accesses)
        if stmt.conditional:
            out.add(LoopFeature.CONDITIONAL)
        if stmt.math_calls:
            out.add(LoopFeature.MATH_CALL)
        if stmt.atomic:
            out.add(LoopFeature.ATOMIC)
        innermost = path[-1]
        if depth == 1:
            # A global reduction over the main loop.
            if stmt.op in (ReduceOp.SUM, ReduceOp.PROD):
                out.add(LoopFeature.REDUCTION_SUM)
            else:
                out.add(LoopFeature.REDUCTION_MINMAX)
                if stmt.is_float:
                    # GCC 8: float min/max lowers to a branch without
                    # -ffast-math; the integer idiom is branch-free.
                    out.add(LoopFeature.CONDITIONAL)
        elif innermost.trip == TRIP_N:
            # Per-output-element inner-product reductions: a 2-deep nest
            # is a matvec (GCC's vectorizer gives up on the nested
            # reduction); 3-deep is a matmul (vectorizable, but the
            # symbolic trip count makes Clang's runtime cost check pick
            # the scalar path).
            if depth >= 3:
                out.add(LoopFeature.SMALL_INNER_TRIP)
            else:
                out.add(LoopFeature.NESTED_REDUCTION)
        # Constant-trip inner reductions (tiles, filter taps) unroll
        # fully and constrain nothing.
        return out
    if isinstance(stmt, Compute):
        out |= _access_features(stmt.accesses)
        if stmt.conditional:
            out.add(LoopFeature.CONDITIONAL)
        if stmt.math_calls:
            out.add(LoopFeature.MATH_CALL)
        if stmt.atomic:
            out.add(LoopFeature.ATOMIC)
        return out
    raise CompilationError(f"unknown statement type {type(stmt)!r}")


def derive_features(nest: LoopNest) -> frozenset[LoopFeature]:
    """Derive the decisive vectorizer features from a loop nest."""
    out: set[LoopFeature] = set()
    has_write = False
    for stmt, depth, path in nest.walk():
        out |= _statement_features(stmt, depth, path)
        if isinstance(stmt, (Compute, Recurrence, Scan)):
            from repro.compiler.ir import AccessKind

            has_write = has_write or any(
                a.kind is AccessKind.WRITE for a in stmt.accesses
            )
    if not nest.restrict_pointers and has_write:
        # Reads and writes through plain pointers: the compiler emits a
        # runtime alias check, and the scalar version executes when the
        # check cannot exclude overlap.
        out.add(LoopFeature.ALIAS_UNPROVABLE)
    return frozenset(out)


def features_agree(
    declared: frozenset[LoopFeature], derived: frozenset[LoopFeature]
) -> bool:
    """Whether the declared traits and the IR-derived features agree on
    every decisive feature."""
    return (declared & DECISIVE_FEATURES) == (
        derived & DECISIVE_FEATURES
    )
