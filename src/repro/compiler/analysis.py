"""Static loop analysis: derive vectorizer features from kernel IR.

Implements the analyses a real auto-vectorizer front-end performs over
the :mod:`repro.compiler.ir` loop nests:

* **stride inspection** — unit vs non-unit vs indirect accesses;
* **dependence classification** — recurrences, prefix scans;
* **reduction recognition** — including the GCC 8 rule that *float*
  min/max reductions lower to compare-branches (NaN semantics without
  ``-ffast-math``) while the integer idiom vectorizes;
* **nesting/cost classification** — reductions nested in 2-deep nests
  (matvecs) vs symbolic-trip innermost reductions in 3-deep nests
  (matmuls, whose trip defeats Clang's runtime cost check);
* **alias reasoning** — loop nests without provably distinct pointers
  get runtime alias versioning.

The derived set is pinned against each kernel's declared traits for all
64 kernels in ``tests/compiler/test_analysis.py`` — the declared traits
are therefore *consequences* of code structure, not free parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import (
    Access,
    Call,
    Compute,
    Loop,
    LoopNest,
    Recurrence,
    Reduce,
    ReduceOp,
    Scan,
    TRIP_N,
    is_symbolic,
)
from repro.kernels.base import LoopFeature
from repro.util.errors import CompilationError

#: Features the vectorizer rules actually consult; the remaining members
#: of LoopFeature (STREAMING, STENCIL, OUTER_ONLY_PARALLEL, TRIANGULAR,
#: SMALL_INNER_TRIP's informational cousins) describe memory behaviour
#: and are consumed by the performance model instead.
DECISIVE_FEATURES = frozenset(
    {
        LoopFeature.CONDITIONAL,
        LoopFeature.INDIRECTION,
        LoopFeature.LOOP_CARRIED_DEP,
        LoopFeature.ATOMIC,
        LoopFeature.SCAN_DEP,
        LoopFeature.LIBRARY_CALL,
        LoopFeature.NONUNIT_STRIDE,
        LoopFeature.MATH_CALL,
        LoopFeature.NESTED_REDUCTION,
        LoopFeature.SMALL_INNER_TRIP,
        LoopFeature.ALIAS_UNPROVABLE,
        LoopFeature.REDUCTION_SUM,
        LoopFeature.REDUCTION_MINMAX,
    }
)


def _access_features(accesses: tuple[Access, ...]) -> set[LoopFeature]:
    out: set[LoopFeature] = set()
    for acc in accesses:
        if acc.stride is None:
            out.add(LoopFeature.INDIRECTION)
        elif is_symbolic(acc.stride) or abs(acc.stride) != 1:
            # A symbolic row stride and any concrete |stride| > 1 look
            # the same to the vectorizer: not unit stride.
            out.add(LoopFeature.NONUNIT_STRIDE)
    return out


def _statement_features(
    stmt, depth: int, path: tuple[Loop, ...]
) -> set[LoopFeature]:
    out: set[LoopFeature] = set()
    if isinstance(stmt, Call):
        out.add(LoopFeature.LIBRARY_CALL)
        return out
    if isinstance(stmt, Scan):
        out.add(LoopFeature.SCAN_DEP)
        out |= _access_features(stmt.accesses)
        if stmt.conditional:
            out.add(LoopFeature.CONDITIONAL)
        return out
    if isinstance(stmt, Recurrence):
        out.add(LoopFeature.LOOP_CARRIED_DEP)
        out |= _access_features(stmt.accesses)
        return out
    if isinstance(stmt, Reduce):
        out |= _access_features(stmt.accesses)
        if stmt.conditional:
            out.add(LoopFeature.CONDITIONAL)
        if stmt.math_calls:
            out.add(LoopFeature.MATH_CALL)
        if stmt.atomic:
            out.add(LoopFeature.ATOMIC)
        innermost = path[-1]
        if depth == 1:
            # A global reduction over the main loop.
            if stmt.op in (ReduceOp.SUM, ReduceOp.PROD):
                out.add(LoopFeature.REDUCTION_SUM)
            else:
                out.add(LoopFeature.REDUCTION_MINMAX)
                if stmt.is_float:
                    # GCC 8: float min/max lowers to a branch without
                    # -ffast-math; the integer idiom is branch-free.
                    out.add(LoopFeature.CONDITIONAL)
        elif innermost.trip == TRIP_N:
            # Per-output-element inner-product reductions: a 2-deep nest
            # is a matvec (GCC's vectorizer gives up on the nested
            # reduction); 3-deep is a matmul (vectorizable, but the
            # symbolic trip count makes Clang's runtime cost check pick
            # the scalar path).
            if depth >= 3:
                out.add(LoopFeature.SMALL_INNER_TRIP)
            else:
                out.add(LoopFeature.NESTED_REDUCTION)
        # Constant-trip inner reductions (tiles, filter taps) unroll
        # fully and constrain nothing.
        return out
    if isinstance(stmt, Compute):
        out |= _access_features(stmt.accesses)
        if stmt.conditional:
            out.add(LoopFeature.CONDITIONAL)
        if stmt.math_calls:
            out.add(LoopFeature.MATH_CALL)
        if stmt.atomic:
            out.add(LoopFeature.ATOMIC)
        return out
    raise CompilationError(f"unknown statement type {type(stmt)!r}")


def derive_features(nest: LoopNest) -> frozenset[LoopFeature]:
    """Derive the decisive vectorizer features from a loop nest."""
    out: set[LoopFeature] = set()
    has_write = False
    for stmt, depth, path in nest.walk():
        out |= _statement_features(stmt, depth, path)
        if isinstance(stmt, (Compute, Recurrence, Scan)):
            from repro.compiler.ir import AccessKind

            has_write = has_write or any(
                a.kind is AccessKind.WRITE for a in stmt.accesses
            )
    if not nest.restrict_pointers and has_write:
        # Reads and writes through plain pointers: the compiler emits a
        # runtime alias check, and the scalar version executes when the
        # check cannot exclude overlap.
        out.add(LoopFeature.ALIAS_UNPROVABLE)
    return frozenset(out)


def features_agree(
    declared: frozenset[LoopFeature], derived: frozenset[LoopFeature]
) -> bool:
    """Whether the declared traits and the IR-derived features agree on
    every decisive feature.

    Non-decisive drift (a missing ``STENCIL`` tag, say) is deliberately
    ignored here — it cannot change a vectorization decision — but it is
    *not* dropped by the toolchain: :func:`features_diff` surfaces it as
    a warning list, which the lint driver reports.
    """
    return (declared & DECISIVE_FEATURES) == (
        derived & DECISIVE_FEATURES
    )


#: Non-decisive features the IR is structured enough to derive. The
#: remaining informational members (STREAMING, TRIANGULAR, ...) describe
#: memory behaviour the sketches do not encode, so drift on them is not
#: checkable and not reported.
INFORMATIONAL_DERIVABLE = frozenset(
    {LoopFeature.STENCIL, LoopFeature.OUTER_ONLY_PARALLEL}
)


def derive_informational_features(
    nest: LoopNest,
) -> frozenset[LoopFeature]:
    """Derive the checkable *non-decisive* features from a loop nest:
    ``STENCIL`` (neighbour reads at constant or row offsets) and
    ``OUTER_ONLY_PARALLEL`` (a parallel loop with serial subloops)."""
    out: set[LoopFeature] = set()
    for stmt, _depth, path in nest.walk():
        accesses = getattr(stmt, "accesses", ())
        if any(acc.offset != 0 for acc in accesses):
            out.add(LoopFeature.STENCIL)
        for level in path:
            if level.parallel and any(
                isinstance(item, Loop) and not item.parallel
                for item in level.body
            ):
                out.add(LoopFeature.OUTER_ONLY_PARALLEL)
    return frozenset(out)


@dataclass(frozen=True)
class FeatureDrift:
    """Structured disagreement between declared traits and IR-derived
    features.

    Decisive drift changes vectorization decisions and is an error;
    informational drift (within :data:`INFORMATIONAL_DERIVABLE`) cannot,
    but silently diverging metadata is still worth a warning.
    """

    decisive_undeclared: frozenset[LoopFeature]  # derived, not declared
    decisive_stale: frozenset[LoopFeature]  # declared, not derived
    informational_undeclared: frozenset[LoopFeature]
    informational_stale: frozenset[LoopFeature]

    @property
    def decisive_clean(self) -> bool:
        return not (self.decisive_undeclared or self.decisive_stale)

    @property
    def clean(self) -> bool:
        return self.decisive_clean and not (
            self.informational_undeclared or self.informational_stale
        )

    def warnings(self) -> list[str]:
        """Human-readable lines for every non-decisive disagreement."""
        out = []
        for feature in sorted(self.informational_undeclared,
                              key=lambda f: f.value):
            out.append(
                f"IR implies {feature.value} but the kernel traits do "
                "not declare it"
            )
        for feature in sorted(self.informational_stale,
                              key=lambda f: f.value):
            out.append(
                f"traits declare {feature.value} but the IR shows no "
                "such structure"
            )
        return out


def features_diff(
    declared: frozenset[LoopFeature],
    derived: frozenset[LoopFeature],
    derived_informational: frozenset[LoopFeature] = frozenset(),
) -> FeatureDrift:
    """Full declared-vs-derived drift, decisive and informational.

    ``derived`` is :func:`derive_features` output; pass
    :func:`derive_informational_features` output as
    ``derived_informational`` to also check the non-decisive tags that
    :func:`features_agree` ignores.
    """
    decisive_declared = declared & DECISIVE_FEATURES
    decisive_derived = derived & DECISIVE_FEATURES
    info_declared = declared & INFORMATIONAL_DERIVABLE
    info_derived = derived_informational & INFORMATIONAL_DERIVABLE
    return FeatureDrift(
        decisive_undeclared=frozenset(decisive_derived - decisive_declared),
        decisive_stale=frozenset(decisive_declared - decisive_derived),
        informational_undeclared=frozenset(info_derived - info_declared),
        informational_stale=frozenset(info_declared - info_derived),
    )
