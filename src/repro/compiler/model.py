"""Compiler descriptions and their vectorization rule sets.

Each compiler is a frozen description: which loop features block its
auto-vectorizer, which features make it emit a runtime-versioned loop
whose scalar path wins at runtime, which RVV flavour(s) it can emit, and
per-kernel efficiency quirks the paper measured.

The blocker sets are a *reconstruction*: the paper reports only the
aggregate counts (GCC 30/64 vectorized with 7 runtime-scalar; Clang 59/64
with 3) plus the named kernels of Figure 3. Any rule set consistent with
those observations is admissible; ours is chosen to be microarchitecturally
plausible (e.g. GCC 8 really cannot vectorize float min/max without
-ffast-math, really does runtime alias versioning on stencils) and is
pinned by tests against all the published facts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.kernels.base import LoopFeature
from repro.util.errors import ConfigError


class VectorFlavor(enum.Enum):
    """How vector code is generated for a scalable-vector ISA.

    VLS (Vector Length Specific) hard-codes the 128-bit width of the
    C920; VLA (Vector Length Agnostic) strip-mines with ``vsetvli``.
    The paper finds VLS tends to outperform VLA on the C920 (Figure 3).
    """

    VLS = "vls"
    VLA = "vla"


@dataclass(frozen=True)
class Compiler:
    """A compiler as the performance model sees it.

    Attributes:
        name: Display name (``"GCC 8.4 (XuanTie)"``).
        family: ``"gcc"`` or ``"clang"``; rules are family-wide.
        rvv_version: RVV spec version of emitted RISC-V vector assembly
            (``"0.7.1"`` for the XuanTie fork, ``"1.0"`` for Clang,
            ``None`` for x86-only compilers).
        flavors: Vector flavours the compiler can emit (GCC: VLS only;
            Clang: both).
        blockers: Loop features that defeat auto-vectorization.
        runtime_scalar_features: Features that cause the emitted
            runtime-versioned loop to take the scalar path in practice.
        vla_efficiency: Multiplier on vector throughput when emitting VLA
            (strip-mining/vsetvli overhead); 1.0 for VLS.
        kernel_quirks: Per-kernel vector-efficiency multipliers encoding
            measured anomalies (e.g. Clang's JACOBI_2D regression on the
            C920, Figure 3).
    """

    name: str
    family: str
    rvv_version: str | None
    flavors: tuple[VectorFlavor, ...]
    blockers: frozenset[LoopFeature]
    runtime_scalar_features: frozenset[LoopFeature]
    vla_efficiency: float = 0.85
    kernel_quirks: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType({})
    )

    def __post_init__(self) -> None:
        if self.family not in ("gcc", "clang"):
            raise ConfigError(f"unknown compiler family {self.family!r}")
        if not self.flavors:
            raise ConfigError(f"{self.name}: needs at least one flavor")
        if not 0 < self.vla_efficiency <= 1:
            raise ConfigError(
                f"{self.name}: vla_efficiency must be in (0, 1]"
            )
        for kernel, factor in self.kernel_quirks.items():
            if factor <= 0:
                raise ConfigError(
                    f"{self.name}: quirk for {kernel} must be positive"
                )

    def supports_flavor(self, flavor: VectorFlavor) -> bool:
        return flavor in self.flavors


#: GCC's auto-vectorizer (version 8 era, as shipped in the XuanTie fork
#: and on the x86 hosts): defeated by control flow, indirection, true
#: dependences, atomics, non-unit strides, libm calls, float min/max
#: (NaN semantics without -ffast-math) and reductions nested in loops.
_GCC_BLOCKERS = frozenset(
    {
        LoopFeature.CONDITIONAL,
        LoopFeature.INDIRECTION,
        LoopFeature.LOOP_CARRIED_DEP,
        LoopFeature.ATOMIC,
        LoopFeature.SCAN_DEP,
        LoopFeature.LIBRARY_CALL,
        LoopFeature.TRIANGULAR,
        LoopFeature.NONUNIT_STRIDE,
        LoopFeature.MATH_CALL,
        LoopFeature.NESTED_REDUCTION,
    }
)

#: GCC emits runtime alias checks for stencils it cannot disambiguate;
#: those loops execute the scalar version in practice ([11] found 7 such
#: kernels).
_GCC_RUNTIME_SCALAR = frozenset({LoopFeature.ALIAS_UNPROVABLE})

#: Clang vectorizes nearly everything — predication for conditionals,
#: gathers for indirection, privatized reductions for atomics — but not
#: library sorts, prefix scans or true recurrences.
_CLANG_BLOCKERS = frozenset(
    {
        LoopFeature.LIBRARY_CALL,
        LoopFeature.SCAN_DEP,
        LoopFeature.LOOP_CARRIED_DEP,
    }
)

#: Clang's cost model rejects the vector path at runtime for the
#: inner-product matmuls (2MM/3MM/GEMM — Figure 3).
_CLANG_RUNTIME_SCALAR = frozenset({LoopFeature.SMALL_INNER_TRIP})


XUANTIE_GCC_8_4 = Compiler(
    name="GCC 8.4 (XuanTie)",
    family="gcc",
    rvv_version="0.7.1",
    flavors=(VectorFlavor.VLS,),
    blockers=_GCC_BLOCKERS,
    runtime_scalar_features=_GCC_RUNTIME_SCALAR,
)

GCC_8_3 = Compiler(
    name="GCC 8.3",
    family="gcc",
    rvv_version=None,
    flavors=(VectorFlavor.VLS,),
    blockers=_GCC_BLOCKERS,
    runtime_scalar_features=_GCC_RUNTIME_SCALAR,
)

GCC_11_2 = Compiler(
    name="GCC 11.2",
    family="gcc",
    rvv_version=None,
    flavors=(VectorFlavor.VLS,),
    blockers=_GCC_BLOCKERS,
    runtime_scalar_features=_GCC_RUNTIME_SCALAR,
)

CLANG_16 = Compiler(
    name="Clang 16",
    family="clang",
    rvv_version="1.0",
    flavors=(VectorFlavor.VLS, VectorFlavor.VLA),
    blockers=_CLANG_BLOCKERS,
    runtime_scalar_features=_CLANG_RUNTIME_SCALAR,
    vla_efficiency=0.85,
    kernel_quirks=MappingProxyType(
        {
            # Figure 3: JACOBI_2D runs *slower* with Clang than GCC on
            # the C920 even though GCC executes its scalar path —
            # contrary to [11]'s C906 result. Encoded as a strong
            # vector-efficiency derating of Clang's codegen for this
            # kernel (its vector code loses to scalar on the C920).
            "JACOBI_2D": 0.18,
        }
    ),
)

_BY_NAME = {
    "xuantie-gcc-8.4": XUANTIE_GCC_8_4,
    "gcc-8.3": GCC_8_3,
    "gcc-11.2": GCC_11_2,
    "clang-16": CLANG_16,
}


def compiler_by_name(name: str) -> Compiler:
    """Look up a compiler by its short id (``"clang-16"``)."""
    key = name.lower()
    if key not in _BY_NAME:
        raise ConfigError(
            f"unknown compiler {name!r}; known: {sorted(_BY_NAME)}"
        )
    return _BY_NAME[key]
