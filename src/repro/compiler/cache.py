"""Keyed memoization of the vectorizer's compilation analysis.

``analyze`` is a pure function of (compiler, kernel, target ISA, vector
flavour, rollback) — it never depends on threads, placement, precision
or run count. A sweep grid therefore recompiles every kernel once per
grid point for no reason: a 6-thread-counts x 2-placements x
2-precisions grid performs 24x redundant compilations per kernel. A
:class:`CompileCache` collapses those to exactly one compilation per
distinct key and counts its hits/misses so sweeps can prove it
(``SweepResult.cache_stats``).

The cache computes under its lock, so a key is compiled **exactly
once** even when sweep workers race on it — that exactly-once property
is what the acceptance counters pin. Compilation *errors* (e.g. an RVV
version mismatch without rollback) are intentionally not cached; they
re-raise identically on every call and sit on cold paths.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.compiler.model import Compiler, VectorFlavor
from repro.compiler.vectorizer import VectorizationReport, analyze
from repro.kernels.base import Kernel
from repro.machine.vector import VectorISA

#: One compilation's identity: everything ``analyze`` reads.
CompileKey = tuple[str, str | None, str, str, str | None, VectorFlavor, bool]


def compile_key(
    compiler: Compiler,
    kernel: Kernel,
    target: VectorISA,
    flavor: VectorFlavor,
    rollback: bool,
) -> CompileKey:
    """Key identifying one compilation.

    Compilers and kernels are registry singletons keyed by unique names;
    the target ISA contributes its name and version so custom machines
    with re-tuned ISAs of the same name still collide only when equal in
    the fields ``analyze`` consults.
    """
    return (
        compiler.name,
        compiler.rvv_version,
        kernel.name,
        target.name,
        target.version,
        flavor,
        rollback,
    )


@dataclass(frozen=True)
class CompileCacheStats:
    """Counters of one :class:`CompileCache` at a point in time."""

    hits: int
    misses: int
    entries: int

    @property
    def calls(self) -> int:
        return self.hits + self.misses


class CompileCache:
    """Thread-safe memo of :func:`repro.compiler.vectorizer.analyze`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[CompileKey, VectorizationReport] = {}
        self._hits = 0
        self._misses = 0

    def analyze(
        self,
        compiler: Compiler,
        kernel: Kernel,
        target: VectorISA,
        flavor: VectorFlavor = VectorFlavor.VLS,
        rollback: bool = False,
    ) -> VectorizationReport:
        """``analyze`` with memoization; same reports, same errors."""
        key = compile_key(compiler, kernel, target, flavor, rollback)
        with self._lock:
            report = self._entries.get(key)
            if report is not None:
                self._hits += 1
                return report
            report = analyze(
                compiler, kernel, target, flavor=flavor, rollback=rollback
            )
            self._misses += 1
            self._entries[key] = report
            return report

    @property
    def stats(self) -> CompileCacheStats:
        with self._lock:
            return CompileCacheStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._entries),
            )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
