"""Keyed memoization of the vectorizer's compilation analysis.

``analyze`` is a pure function of (compiler, kernel, target ISA, vector
flavour, rollback) — it never depends on threads, placement, precision
or run count. A sweep grid therefore recompiles every kernel once per
grid point for no reason: a 6-thread-counts x 2-placements x
2-precisions grid performs 24x redundant compilations per kernel. A
:class:`CompileCache` collapses those to exactly one compilation per
distinct key and counts its hits/misses so sweeps can prove it
(``SweepResult.cache_stats``).

The cache computes under its lock, so a key is compiled **exactly
once** even when sweep workers race on it — that exactly-once property
is what the acceptance counters pin. Compilation *errors* (e.g. an RVV
version mismatch without rollback) are intentionally not cached; they
re-raise identically on every call and sit on cold paths.

With an :class:`~repro.store.ArtifactStore` attached the cache gains a
*disk tier*: a memory miss probes the store before compiling, and every
fresh compilation is written through, so ``analyze()`` results survive
process restarts (the cold-start cost ``repro serve`` and CI pay).
Disk hits are counted separately from memory hits — ``stats.hits``
keeps meaning "served from this process's memory" — and any unusable
artifact degrades to recompute with a :class:`~repro.store.StoreWarning`.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import telemetry
from repro.compiler.model import Compiler, VectorFlavor
from repro.compiler.vectorizer import VectorizationReport, analyze
from repro.kernels.base import Kernel
from repro.machine.vector import VectorISA
from repro.util.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import ArtifactStore

#: One compilation's identity: everything ``analyze`` reads.
CompileKey = tuple[str, str | None, str, str, str | None, VectorFlavor, bool]


def compile_key(
    compiler: Compiler,
    kernel: Kernel,
    target: VectorISA,
    flavor: VectorFlavor,
    rollback: bool,
) -> CompileKey:
    """Key identifying one compilation.

    Compilers and kernels are registry singletons keyed by unique names;
    the target ISA contributes its name and version so custom machines
    with re-tuned ISAs of the same name still collide only when equal in
    the fields ``analyze`` consults.
    """
    return (
        compiler.name,
        compiler.rvv_version,
        kernel.name,
        target.name,
        target.version,
        flavor,
        rollback,
    )


@dataclass(frozen=True)
class CompileCacheStats:
    """Counters of one :class:`CompileCache` at a point in time.

    ``hits`` are memory hits only; ``disk_hits`` count entries served
    from the attached artifact store (zero when no store is attached).
    """

    hits: int
    misses: int
    entries: int
    disk_hits: int = 0

    @property
    def calls(self) -> int:
        return self.hits + self.disk_hits + self.misses


class CompileCache:
    """Thread-safe memo of :func:`repro.compiler.vectorizer.analyze`.

    ``store`` attaches an optional disk tier (see the module docstring);
    without one the cache behaves exactly as before.
    """

    def __init__(self, store: "ArtifactStore | None" = None) -> None:
        self._lock = threading.Lock()
        self._entries: dict[CompileKey, VectorizationReport] = {}
        # Suite-level composite index: one entry per fully-resolved
        # (compiler, kernel tuple, target, flavor, rollback) list, so a
        # sweep's 2nd..Nth grid point resolves its whole kernel list in
        # one lookup instead of len(kernels) per-key probes. Pure index
        # over ``_entries`` — never counted in ``stats.entries``.
        self._suites: dict[tuple, tuple[VectorizationReport, ...]] = {}
        self._store = store
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0

    # -- disk tier ---------------------------------------------------------

    def _disk_get(self, key: CompileKey) -> VectorizationReport | None:
        """Probe the store for ``key``; unusable payloads are misses."""
        from repro.store.artifact import StoreWarning
        from repro.store.codecs import (
            CodecError,
            decode_report,
            jsonable_parts,
        )

        payload = self._store.get("compile", jsonable_parts(key))
        if payload is None:
            return None
        try:
            return decode_report(payload)
        except CodecError as exc:
            warnings.warn(
                f"stored compile report for {key[2]} is unusable "
                f"({exc}); recompiling",
                StoreWarning, stacklevel=4,
            )
            return None

    def _disk_put(self, key: CompileKey,
                  report: VectorizationReport) -> None:
        from repro.store.codecs import encode_report, jsonable_parts

        self._store.put("compile", jsonable_parts(key),
                        encode_report(report))

    @staticmethod
    def _suite_store_key(suite_key: tuple) -> list:
        """On-disk key for a whole suite's report list.

        The in-memory ``suite_key`` holds kernel objects; the store key
        lowers them to their (unique, registry-pinned) names.
        """
        from repro.store.codecs import jsonable_parts

        (name, rvv, kernels, target_name, target_version, flavor,
         rollback) = suite_key
        return jsonable_parts((
            "suite", name, rvv, tuple(k.name for k in kernels),
            target_name, target_version, flavor, rollback,
        ))

    def _suite_disk_get(
        self, suite_key: tuple
    ) -> tuple[VectorizationReport, ...] | None:
        """Probe the store for a whole suite's reports in one read."""
        from repro.store.artifact import StoreWarning
        from repro.store.codecs import CodecError, decode_report

        payload = self._store.get(
            "compile", self._suite_store_key(suite_key)
        )
        if payload is None:
            return None
        try:
            encoded = payload["reports"]
            if not isinstance(encoded, list) or len(encoded) != len(
                suite_key[2]
            ):
                raise CodecError(
                    "suite report list does not match the kernel list"
                )
            return tuple(decode_report(entry) for entry in encoded)
        except (CodecError, KeyError, TypeError) as exc:
            warnings.warn(
                f"stored suite compile artifact is unusable ({exc}); "
                f"recompiling",
                StoreWarning, stacklevel=4,
            )
            return None

    def _suite_disk_put(
        self, suite_key: tuple,
        reports: tuple[VectorizationReport, ...],
    ) -> None:
        from repro.store.codecs import encode_report

        self._store.put(
            "compile", self._suite_store_key(suite_key),
            {"reports": [encode_report(report) for report in reports]},
        )

    def analyze(
        self,
        compiler: Compiler,
        kernel: Kernel,
        target: VectorISA,
        flavor: VectorFlavor = VectorFlavor.VLS,
        rollback: bool = False,
    ) -> VectorizationReport:
        """``analyze`` with memoization; same reports, same errors."""
        key = compile_key(compiler, kernel, target, flavor, rollback)
        with self._lock:
            report = self._entries.get(key)
            if report is not None:
                self._hits += 1
                return report
            if self._store is not None:
                report = self._disk_get(key)
                if report is not None:
                    self._disk_hits += 1
                    self._entries[key] = report
                    return report
            rec = telemetry.recorder()
            if rec.active:
                with rec.span(
                    "compile.analyze", kernel=kernel.name,
                    flavor=flavor.value, rollback=rollback,
                ):
                    report = analyze(
                        compiler, kernel, target, flavor=flavor,
                        rollback=rollback,
                    )
            else:
                report = analyze(
                    compiler, kernel, target, flavor=flavor,
                    rollback=rollback,
                )
            self._misses += 1
            self._entries[key] = report
            if self._store is not None:
                self._disk_put(key, report)
            return report

    def analyze_many(
        self,
        compiler: Compiler,
        kernels: list[Kernel],
        target: VectorISA,
        flavor: VectorFlavor = VectorFlavor.VLS,
        rollback: bool = False,
    ) -> list[VectorizationReport | None]:
        """Batched :meth:`analyze` for one configuration's kernel list.

        One lock hold serves the whole list — the
        per-kernel hit/miss accounting is identical to calling
        :meth:`analyze` in a loop. A kernel whose compilation *fails*
        yields ``None`` (instead of raising mid-batch) and leaves the
        counters untouched, exactly like the scalar path's uncached
        error; the caller re-runs it individually to surface the
        authoritative error.
        """
        out: list[VectorizationReport | None] = []
        rec = telemetry.recorder()
        traced = rec.active
        with self._lock:
            entries = self._entries
            for kernel in kernels:
                key = compile_key(compiler, kernel, target, flavor,
                                  rollback)
                report = entries.get(key)
                if report is not None:
                    self._hits += 1
                elif (
                    self._store is not None
                    and (report := self._disk_get(key)) is not None
                ):
                    self._disk_hits += 1
                    entries[key] = report
                else:
                    try:
                        if traced:
                            with rec.span(
                                "compile.analyze", kernel=kernel.name,
                                flavor=flavor.value, rollback=rollback,
                            ):
                                report = analyze(
                                    compiler, kernel, target,
                                    flavor=flavor, rollback=rollback,
                                )
                        else:
                            report = analyze(
                                compiler, kernel, target, flavor=flavor,
                                rollback=rollback,
                            )
                    except ReproError:
                        out.append(None)
                        continue
                    self._misses += 1
                    entries[key] = report
                    if self._store is not None:
                        self._disk_put(key, report)
                out.append(report)
        return out

    def analyze_suite(
        self,
        compiler: Compiler,
        kernels: tuple[Kernel, ...],
        target: VectorISA,
        flavor: VectorFlavor = VectorFlavor.VLS,
        rollback: bool = False,
    ) -> list[VectorizationReport | None]:
        """:meth:`analyze_many` with a suite-level composite fast path.

        A sweep resolves the *same* kernel tuple once per grid point;
        after the first full resolution the whole list is served from
        one composite lookup. A composite hit scores ``len(kernels)``
        hits — exactly what the per-key probes it replaces would have
        counted — so cache statistics are indistinguishable from
        looping :meth:`analyze`. Lists containing a failed compilation
        are never stored as composites (errors are not cached), so they
        re-resolve per kernel every time, like the scalar path.
        """
        suite_key = (
            compiler.name, compiler.rvv_version, kernels,
            target.name, target.version, flavor, rollback,
        )
        # Per-configuration site: the unconditional (possibly-null) span
        # here costs one context manager per grid point, not per kernel.
        sp = telemetry.recorder().span(
            "compile.resolve", kernels=len(kernels),
        )
        with sp:
            with self._lock:
                reports = self._suites.get(suite_key)
                if reports is not None:
                    self._hits += len(kernels)
                    sp.set(composite_hit=True)
                    return list(reports)
                if self._store is not None:
                    # Whole-suite disk probe: one artifact read restores
                    # the full report list (a fresh process's first grid
                    # point), counted as one disk hit per kernel — the
                    # same totals the per-kernel probes would score.
                    reports = self._suite_disk_get(suite_key)
                    if reports is not None:
                        self._disk_hits += len(kernels)
                        for kernel, report in zip(kernels, reports):
                            self._entries[
                                compile_key(compiler, kernel, target,
                                            flavor, rollback)
                            ] = report
                        self._suites[suite_key] = reports
                        sp.set(composite_hit=True)
                        return list(reports)
            out = self.analyze_many(
                compiler, list(kernels), target, flavor=flavor,
                rollback=rollback,
            )
            if all(report is not None for report in out):
                with self._lock:
                    self._suites[suite_key] = tuple(out)
                if self._store is not None:
                    self._suite_disk_put(suite_key, tuple(out))
            sp.set(composite_hit=False)
            return out

    @property
    def stats(self) -> CompileCacheStats:
        with self._lock:
            return CompileCacheStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._entries),
                disk_hits=self._disk_hits,
            )

    @property
    def store(self) -> "ArtifactStore | None":
        return self._store

    def clear(self) -> None:
        """Drop the in-memory tiers (disk artifacts are untouched)."""
        with self._lock:
            self._entries.clear()
            self._suites.clear()
            self._hits = 0
            self._misses = 0
            self._disk_hits = 0
