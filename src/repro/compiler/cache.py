"""Keyed memoization of the vectorizer's compilation analysis.

``analyze`` is a pure function of (compiler, kernel, target ISA, vector
flavour, rollback) — it never depends on threads, placement, precision
or run count. A sweep grid therefore recompiles every kernel once per
grid point for no reason: a 6-thread-counts x 2-placements x
2-precisions grid performs 24x redundant compilations per kernel. A
:class:`CompileCache` collapses those to exactly one compilation per
distinct key and counts its hits/misses so sweeps can prove it
(``SweepResult.cache_stats``).

The cache computes under its lock, so a key is compiled **exactly
once** even when sweep workers race on it — that exactly-once property
is what the acceptance counters pin. Compilation *errors* (e.g. an RVV
version mismatch without rollback) are intentionally not cached; they
re-raise identically on every call and sit on cold paths.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro import telemetry
from repro.compiler.model import Compiler, VectorFlavor
from repro.compiler.vectorizer import VectorizationReport, analyze
from repro.kernels.base import Kernel
from repro.machine.vector import VectorISA
from repro.util.errors import ReproError

#: One compilation's identity: everything ``analyze`` reads.
CompileKey = tuple[str, str | None, str, str, str | None, VectorFlavor, bool]


def compile_key(
    compiler: Compiler,
    kernel: Kernel,
    target: VectorISA,
    flavor: VectorFlavor,
    rollback: bool,
) -> CompileKey:
    """Key identifying one compilation.

    Compilers and kernels are registry singletons keyed by unique names;
    the target ISA contributes its name and version so custom machines
    with re-tuned ISAs of the same name still collide only when equal in
    the fields ``analyze`` consults.
    """
    return (
        compiler.name,
        compiler.rvv_version,
        kernel.name,
        target.name,
        target.version,
        flavor,
        rollback,
    )


@dataclass(frozen=True)
class CompileCacheStats:
    """Counters of one :class:`CompileCache` at a point in time."""

    hits: int
    misses: int
    entries: int

    @property
    def calls(self) -> int:
        return self.hits + self.misses


class CompileCache:
    """Thread-safe memo of :func:`repro.compiler.vectorizer.analyze`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[CompileKey, VectorizationReport] = {}
        # Suite-level composite index: one entry per fully-resolved
        # (compiler, kernel tuple, target, flavor, rollback) list, so a
        # sweep's 2nd..Nth grid point resolves its whole kernel list in
        # one lookup instead of len(kernels) per-key probes. Pure index
        # over ``_entries`` — never counted in ``stats.entries``.
        self._suites: dict[tuple, tuple[VectorizationReport, ...]] = {}
        self._hits = 0
        self._misses = 0

    def analyze(
        self,
        compiler: Compiler,
        kernel: Kernel,
        target: VectorISA,
        flavor: VectorFlavor = VectorFlavor.VLS,
        rollback: bool = False,
    ) -> VectorizationReport:
        """``analyze`` with memoization; same reports, same errors."""
        key = compile_key(compiler, kernel, target, flavor, rollback)
        with self._lock:
            report = self._entries.get(key)
            if report is not None:
                self._hits += 1
                return report
            rec = telemetry.recorder()
            if rec.active:
                with rec.span(
                    "compile.analyze", kernel=kernel.name,
                    flavor=flavor.value, rollback=rollback,
                ):
                    report = analyze(
                        compiler, kernel, target, flavor=flavor,
                        rollback=rollback,
                    )
            else:
                report = analyze(
                    compiler, kernel, target, flavor=flavor,
                    rollback=rollback,
                )
            self._misses += 1
            self._entries[key] = report
            return report

    def analyze_many(
        self,
        compiler: Compiler,
        kernels: list[Kernel],
        target: VectorISA,
        flavor: VectorFlavor = VectorFlavor.VLS,
        rollback: bool = False,
    ) -> list[VectorizationReport | None]:
        """Batched :meth:`analyze` for one configuration's kernel list.

        One lock hold serves the whole list — the
        per-kernel hit/miss accounting is identical to calling
        :meth:`analyze` in a loop. A kernel whose compilation *fails*
        yields ``None`` (instead of raising mid-batch) and leaves the
        counters untouched, exactly like the scalar path's uncached
        error; the caller re-runs it individually to surface the
        authoritative error.
        """
        out: list[VectorizationReport | None] = []
        rec = telemetry.recorder()
        traced = rec.active
        with self._lock:
            entries = self._entries
            for kernel in kernels:
                key = compile_key(compiler, kernel, target, flavor,
                                  rollback)
                report = entries.get(key)
                if report is not None:
                    self._hits += 1
                else:
                    try:
                        if traced:
                            with rec.span(
                                "compile.analyze", kernel=kernel.name,
                                flavor=flavor.value, rollback=rollback,
                            ):
                                report = analyze(
                                    compiler, kernel, target,
                                    flavor=flavor, rollback=rollback,
                                )
                        else:
                            report = analyze(
                                compiler, kernel, target, flavor=flavor,
                                rollback=rollback,
                            )
                    except ReproError:
                        out.append(None)
                        continue
                    self._misses += 1
                    entries[key] = report
                out.append(report)
        return out

    def analyze_suite(
        self,
        compiler: Compiler,
        kernels: tuple[Kernel, ...],
        target: VectorISA,
        flavor: VectorFlavor = VectorFlavor.VLS,
        rollback: bool = False,
    ) -> list[VectorizationReport | None]:
        """:meth:`analyze_many` with a suite-level composite fast path.

        A sweep resolves the *same* kernel tuple once per grid point;
        after the first full resolution the whole list is served from
        one composite lookup. A composite hit scores ``len(kernels)``
        hits — exactly what the per-key probes it replaces would have
        counted — so cache statistics are indistinguishable from
        looping :meth:`analyze`. Lists containing a failed compilation
        are never stored as composites (errors are not cached), so they
        re-resolve per kernel every time, like the scalar path.
        """
        suite_key = (
            compiler.name, compiler.rvv_version, kernels,
            target.name, target.version, flavor, rollback,
        )
        # Per-configuration site: the unconditional (possibly-null) span
        # here costs one context manager per grid point, not per kernel.
        sp = telemetry.recorder().span(
            "compile.resolve", kernels=len(kernels),
        )
        with sp:
            with self._lock:
                reports = self._suites.get(suite_key)
                if reports is not None:
                    self._hits += len(kernels)
                    sp.set(composite_hit=True)
                    return list(reports)
            out = self.analyze_many(
                compiler, list(kernels), target, flavor=flavor,
                rollback=rollback,
            )
            if all(report is not None for report in out):
                with self._lock:
                    self._suites[suite_key] = tuple(out)
            sp.set(composite_hit=False)
            return out

    @property
    def stats(self) -> CompileCacheStats:
        with self._lock:
            return CompileCacheStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._entries),
            )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._suites.clear()
            self._hits = 0
            self._misses = 0
