"""The auto-vectorization decision engine.

``analyze`` answers, for (compiler, kernel, target ISA): did the compiler
emit vector code, does the vector path actually execute at runtime, with
which flavour, and at what efficiency. The performance model multiplies
the resulting efficiency into the kernel's vector throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.model import Compiler, VectorFlavor
from repro.kernels.base import Kernel
from repro.machine.vector import VectorISA
from repro.util.errors import CompilationError


@dataclass(frozen=True)
class VectorizationReport:
    """Outcome of compiling one kernel with one compiler for one target.

    Attributes:
        vectorized: The compiler emitted a vector code path.
        vector_path_executed: The vector path actually runs (False when
            the runtime version check or cost model picks scalar).
        flavor: VLS or VLA when vectorized, else None.
        efficiency: Multiplier in (0, 1] on the kernel's ideal vector
            throughput (flavour penalty x compiler quirks x the kernel's
            own vector_speedup_cap). 1.0-meaningless when not executed.
        reason: Human-readable explanation for reports and tests.
    """

    vectorized: bool
    vector_path_executed: bool
    flavor: VectorFlavor | None
    efficiency: float
    reason: str

    def __hash__(self) -> int:
        # Reports key several hot caches (compile cache, batch-engine
        # prelude); the generated dataclass hash re-walks the fields —
        # including a Python-level enum hash — on every lookup. Compute
        # once, cache on the (frozen) instance. Matches field equality.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((
                self.vectorized, self.vector_path_executed, self.flavor,
                self.efficiency, self.reason,
            ))
            object.__setattr__(self, "_hash", cached)
        return cached

    @property
    def effective(self) -> bool:
        """True when vector code actually executes at runtime."""
        return self.vectorized and self.vector_path_executed


def analyze(
    compiler: Compiler,
    kernel: Kernel,
    target: VectorISA,
    flavor: VectorFlavor = VectorFlavor.VLS,
    rollback: bool = False,
) -> VectorizationReport:
    """Decide how ``kernel`` compiles for ``target`` with ``compiler``.

    ``rollback=True`` means the RVV-rollback tool rewrites the emitted
    assembly to the target's RVV version (the paper's mechanism for
    running Clang output on the C920). Incompatible RVV versions without
    rollback raise :class:`CompilationError` — exactly the situation the
    paper describes: "it is not possible to use Clang directly to compile
    code targeting the C920's RVV".
    """
    if not compiler.supports_flavor(flavor):
        raise CompilationError(
            f"{compiler.name} cannot emit {flavor.value.upper()} code"
        )

    # Scalar-only targets (SiFive U74) never get vector code.
    if target.is_scalar_only:
        return VectorizationReport(
            vectorized=False,
            vector_path_executed=False,
            flavor=None,
            efficiency=1.0,
            reason=f"target {target.name} has no vector unit",
        )

    # RVV version compatibility (RVV targets only).
    if compiler.rvv_version is not None and target.version is not None:
        if compiler.rvv_version != target.version and not rollback:
            raise CompilationError(
                f"{compiler.name} emits RVV v{compiler.rvv_version} but "
                f"target implements RVV v{target.version}; "
                "use the RVV-rollback tool"
            )

    blocking = compiler.blockers & kernel.traits.features
    if blocking:
        names = ", ".join(sorted(f.value for f in blocking))
        return VectorizationReport(
            vectorized=False,
            vector_path_executed=False,
            flavor=None,
            efficiency=1.0,
            reason=f"not vectorized: {names}",
        )

    runtime_scalar = bool(
        compiler.runtime_scalar_features & kernel.traits.features
    )
    efficiency = kernel.traits.vector_speedup_cap
    if flavor is VectorFlavor.VLA:
        efficiency *= compiler.vla_efficiency
    quirk = compiler.kernel_quirks.get(kernel.name)
    if quirk is not None:
        efficiency *= quirk
    efficiency = max(1e-6, min(1.0, efficiency))

    if runtime_scalar:
        feats = compiler.runtime_scalar_features & kernel.traits.features
        names = ", ".join(sorted(f.value for f in feats))
        reason = f"vectorized but scalar path executes at runtime ({names})"
    else:
        reason = f"vectorized, {flavor.value.upper()} path executes"

    return VectorizationReport(
        vectorized=True,
        vector_path_executed=not runtime_scalar,
        flavor=flavor,
        efficiency=efficiency,
        reason=reason,
    )


def suite_statistics(
    compiler: Compiler,
    kernels: list[Kernel],
    target: VectorISA,
    flavor: VectorFlavor = VectorFlavor.VLS,
    rollback: bool = False,
) -> dict[str, int]:
    """Aggregate vectorization statistics over a kernel list — the
    numbers the paper quotes from [11]: vectorized count and how many of
    those execute the scalar path at runtime."""
    vectorized = 0
    runtime_scalar = 0
    for kernel in kernels:
        report = analyze(compiler, kernel, target, flavor, rollback)
        if report.vectorized:
            vectorized += 1
            if not report.vector_path_executed:
                runtime_scalar += 1
    return {
        "total": len(kernels),
        "vectorized": vectorized,
        "runtime_scalar": runtime_scalar,
    }
