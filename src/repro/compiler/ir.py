"""A small loop-nest IR for the RAJAPerf kernels.

The vectorization decision model reasons over
:class:`~repro.kernels.base.LoopFeature` sets. Rather than hand-waving
those features, each kernel carries an IR sketch of its loop nest —
statements with typed array accesses, reductions, recurrences, calls —
and :mod:`repro.compiler.analysis` *derives* the features from it with
the same static analyses a real auto-vectorizer performs (stride
inspection, dependence classification, reduction recognition, alias
reasoning). A test pins the derived features to the traits the
performance model consumes, for all 64 kernels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.errors import CompilationError

#: Marker trip count for "the problem size" (symbolic n).
TRIP_N = -1

#: Numeric carrier value for symbolic strides/offsets. Deliberately not a
#: plausible problem size or row length (odd, > 2**20) so concrete stride
#: arithmetic can never collide with it by accident.
_SYMBOLIC_MAGNITUDE = (1 << 20) + 7


class SymbolicStride(int):
    """A symbolic element stride or offset ("one matrix row").

    The feature analysis only cares that ``|stride| > 1``; the dependence
    analysis additionally needs to know the value is *symbolic* — i.e.
    "about one row of the problem, whatever the problem size is" — so a
    real compile-time constant stride of the same magnitude cannot be
    confused with it. Behaves as an ``int`` (with a deliberately
    implausible magnitude) so existing arithmetic keeps working, and
    arithmetic between symbolic values stays symbolic.
    """

    _name: str

    def __new__(cls, value: int | None = None,
                name: str = "SYM") -> "SymbolicStride":
        if value is None:
            value = _SYMBOLIC_MAGNITUDE
        self = super().__new__(cls, value)
        self._name = name
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self._name

    def _derived(self, value: int, name: str) -> "SymbolicStride":
        return SymbolicStride(value, name)

    def __neg__(self) -> "SymbolicStride":
        return self._derived(-int(self), f"-{self._name}")

    def __add__(self, other) -> "SymbolicStride":
        return self._derived(int(self) + int(other),
                             f"{self._name}+{other!r}")

    __radd__ = __add__

    def __sub__(self, other) -> "SymbolicStride":
        return self._derived(int(self) - int(other),
                             f"{self._name}-{other!r}")

    def __mul__(self, other) -> "SymbolicStride":
        return self._derived(int(self) * int(other),
                             f"{self._name}*{other!r}")

    __rmul__ = __mul__


def is_symbolic(value) -> bool:
    """Whether a stride/offset is the symbolic row sentinel (or derived
    from it), as opposed to a concrete compile-time constant."""
    return isinstance(value, SymbolicStride) or (
        value is not None and abs(int(value)) >= _SYMBOLIC_MAGNITUDE
    )


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Access:
    """One array access inside a loop body.

    Attributes:
        array: Array name.
        stride: Elements advanced per innermost-loop iteration; ``None``
            means the index comes through another array (gather/scatter).
        offset: Constant offset relative to the loop counter (stencils
            read several offsets of the same array).
        kind: Read or write.
    """

    array: str
    stride: int | None
    kind: AccessKind
    offset: int = 0

    def __post_init__(self) -> None:
        if self.stride is not None and self.stride == 0:
            raise CompilationError(
                f"{self.array}: zero stride is a loop-invariant access; "
                "model it as a scalar instead"
            )


def read(array: str, stride: int | None = 1, offset: int = 0) -> Access:
    return Access(array, stride, AccessKind.READ, offset)


def write(array: str, stride: int | None = 1, offset: int = 0) -> Access:
    return Access(array, stride, AccessKind.WRITE, offset)


class ReduceOp(enum.Enum):
    SUM = "sum"
    PROD = "prod"
    MIN = "min"
    MAX = "max"
    MINLOC = "minloc"  # min with index (FIRST_MIN)


@dataclass(frozen=True)
class Statement:
    """Base statement; concrete kinds below."""


@dataclass(frozen=True)
class Compute(Statement):
    """Elementwise computation.

    Attributes:
        accesses: All array accesses of the statement.
        conditional: Body contains a data-dependent branch.
        math_calls: libm routines invoked (``("exp",)``); empty for
            plain arithmetic (sqrt is an instruction, not a call).
        atomic: The update is atomic.
    """

    accesses: tuple[Access, ...]
    conditional: bool = False
    math_calls: tuple[str, ...] = ()
    atomic: bool = False


@dataclass(frozen=True)
class Reduce(Statement):
    """A reduction into a scalar."""

    op: ReduceOp
    accesses: tuple[Access, ...]
    is_float: bool = True
    conditional: bool = False
    math_calls: tuple[str, ...] = ()
    atomic: bool = False


@dataclass(frozen=True)
class Scan(Statement):
    """A prefix dependence (cumulative sum / stream compaction)."""

    accesses: tuple[Access, ...]
    conditional: bool = False


@dataclass(frozen=True)
class Recurrence(Statement):
    """A true loop-carried dependence of the given distance."""

    accesses: tuple[Access, ...]
    distance: int = 1

    def __post_init__(self) -> None:
        if self.distance < 1:
            raise CompilationError("recurrence distance must be >= 1")


@dataclass(frozen=True)
class Call(Statement):
    """The body defers to a library routine (std::sort)."""

    callee: str


@dataclass(frozen=True)
class Loop:
    """One loop level.

    Attributes:
        trip: Iteration count — ``TRIP_N`` for the problem size, or a
            positive compile-time constant (tile sizes, tap counts).
        body: Statements and nested loops, in order.
        parallel: This level is (OpenMP-)parallelizable.
    """

    trip: int
    body: tuple = ()
    parallel: bool = True

    def __post_init__(self) -> None:
        if self.trip != TRIP_N and self.trip < 1:
            raise CompilationError(f"invalid trip count {self.trip}")
        if not self.body:
            raise CompilationError("empty loop body")


@dataclass(frozen=True)
class LoopNest:
    """A kernel's loop structure.

    Attributes:
        loops: Top-level loops, executed in sequence (multi-statement
            kernels like MULADDSUB have several).
        restrict_pointers: The source declares its arrays ``restrict``
            (or the compiler can otherwise prove no aliasing). Stencil
            kernels reading and writing overlapping index ranges of
            plain pointers cannot be proven alias-free and get runtime
            versioning.
    """

    loops: tuple[Loop, ...]
    restrict_pointers: bool = True

    def __post_init__(self) -> None:
        if not self.loops:
            raise CompilationError("loop nest needs at least one loop")

    def walk(self):
        """Yield ``(statement, depth, path)`` for every statement, where
        ``path`` is the tuple of enclosing loops outermost-first."""

        def _walk(loop: Loop, path: tuple[Loop, ...]):
            new_path = path + (loop,)
            for item in loop.body:
                if isinstance(item, Loop):
                    yield from _walk(item, new_path)
                else:
                    yield item, len(new_path), new_path

        for loop in self.loops:
            yield from _walk(loop, ())
