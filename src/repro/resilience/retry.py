"""Retry policies for flaky runs: backoff, deadlines, failure records.

Models how a real benchmarking campaign on early silicon treats a failed
run: retry with exponential backoff up to an attempt and time budget,
skip the kernel and continue, or abort the sweep. The clock and sleeper
are injectable so tests exercise deadlines without real waiting — and so
the default simulator path (backoff base 0) never sleeps at all.
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro import telemetry
from repro.util.errors import ConfigError, ReproError

T = TypeVar("T")


class FailurePolicy(enum.Enum):
    """What the suite runner does when a kernel fails.

    ABORT reproduces the historical all-or-nothing behaviour (the first
    error kills the run); SKIP records the failure and continues; RETRY
    retries with backoff and records a failure only when attempts are
    exhausted (then continues like SKIP — graceful degradation, not a
    late abort).
    """

    ABORT = "abort"
    SKIP = "skip"
    RETRY = "retry"

    @classmethod
    def from_label(cls, label: str) -> "FailurePolicy":
        for member in cls:
            if member.value == label.lower():
                return member
        raise ConfigError(
            f"unknown failure policy {label!r}; "
            f"known: {[m.value for m in cls]}"
        )


@dataclass(frozen=True)
class RetrySpec:
    """Attempt and time budget for one kernel.

    Attributes:
        max_retries: Retries after the first attempt (total attempts =
            ``max_retries + 1``).
        backoff_base_s: Sleep before the first retry. Defaults to 0 —
            the simulator has no transient hardware to wait out, so the
            default path never sleeps; campaigns on real hardware set it.
        backoff_factor: Multiplier per subsequent retry (exponential).
        deadline_s: Wall-clock budget across all attempts; ``None`` is
            unbounded. Checked before each retry, never mid-attempt.
        jitter: Fraction of each backoff randomized in ``[0, 1]``.
            ``0`` (default) keeps the historical deterministic schedule;
            ``1`` is classic *full jitter* — uniform in
            ``(0, exponential backoff]`` — which decorrelates retries
            from requests that failed together, so a coalesced batch of
            failures does not thundering-herd the engine in lockstep.
            The RNG is injectable (:func:`backoff_seconds` /
            :func:`call_with_retry` take ``rng=``), so tests pin a seed
            and stay deterministic.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    deadline_s: float | None = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ConfigError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1:
            raise ConfigError("backoff_factor must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError("deadline_s must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be in [0, 1]")

    def backoff_seconds(
        self, retry_index: int, rng: random.Random | None = None
    ) -> float:
        """Sleep before the ``retry_index``-th retry (1-based).

        With ``jitter > 0`` the exponential envelope is randomized:
        ``envelope * ((1 - jitter) + jitter * U(0, 1))``, i.e. uniform
        over the last ``jitter`` fraction of the envelope (full jitter
        at ``jitter=1``). Pass a seeded ``rng`` for reproducible
        schedules; ``None`` uses the module RNG.
        """
        if retry_index < 1:
            raise ConfigError("retry_index must be >= 1")
        envelope = (
            self.backoff_base_s * self.backoff_factor ** (retry_index - 1)
        )
        if self.jitter == 0 or envelope == 0:
            return envelope
        if rng is None:
            rng = _MODULE_RNG
        return envelope * ((1.0 - self.jitter) + self.jitter * rng.random())


#: Fallback RNG when no injectable one is supplied. Module-level so the
#: draw sequence (and therefore the jitter) differs across retries even
#: without a caller-managed RNG.
_MODULE_RNG = random.Random()


@dataclass(frozen=True)
class FailureRecord:
    """One kernel's terminal failure inside a suite run.

    Attributes:
        kernel: Kernel name (``"*"`` for configuration-level failures
            such as a corrupted machine description).
        error_type: Exception class name (``"TransientError"``).
        message: The exception message.
        attempts: Attempts made before giving up.
        site: Chaos injection site if the error was injected, else None.
    """

    kernel: str
    error_type: str
    message: str
    attempts: int
    site: str | None = None

    @classmethod
    def from_exception(
        cls, kernel: str, exc: BaseException, attempts: int
    ) -> "FailureRecord":
        return cls(
            kernel=kernel,
            error_type=type(exc).__name__,
            message=str(exc),
            attempts=attempts,
            site=getattr(exc, "fault_site", None),
        )


class RetryExhaustedError(ReproError):
    """All attempts failed. Carries the attempt count and last error."""

    def __init__(self, attempts: int, last: ReproError):
        super().__init__(
            f"failed after {attempts} attempt(s): {last}"
        )
        self.attempts = attempts
        self.last = last
        self.fault_site = getattr(last, "fault_site", None)


def call_with_retry(
    fn: Callable[[], T],
    spec: RetrySpec,
    *,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    rng: random.Random | None = None,
) -> tuple[T, int]:
    """Call ``fn`` with retries per ``spec``; return (result, attempts).

    Retries only on :class:`ReproError` — programming errors propagate
    immediately. Raises :class:`RetryExhaustedError` once the attempt or
    deadline budget is spent. ``rng`` seeds the backoff jitter when
    ``spec.jitter > 0`` (tests pass ``random.Random(seed)`` for exact
    schedules).
    """
    rec = telemetry.recorder()
    traced = rec.active
    start = clock()
    attempts = 0
    while True:
        attempts += 1
        if traced:
            telemetry.metrics().counter("retry.attempts").inc()
        try:
            if traced:
                with rec.span("retry.attempt", attempt=attempts):
                    result = fn()
            else:
                result = fn()
            return result, attempts
        except ReproError as exc:
            retries_used = attempts - 1
            exhausted = retries_used >= spec.max_retries or (
                spec.deadline_s is not None
                and clock() - start >= spec.deadline_s
            )
            if exhausted:
                if traced:
                    telemetry.metrics().counter("retry.exhausted").inc()
                raise RetryExhaustedError(attempts, exc) from exc
            pause = spec.backoff_seconds(retries_used + 1, rng=rng)
            if pause > 0:
                if traced:
                    telemetry.metrics().histogram(
                        "retry.backoff_seconds"
                    ).observe(pause)
                sleep(pause)
