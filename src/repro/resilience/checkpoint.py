"""JSONL sweep checkpoints: persist completed points, resume mid-grid.

A killed 64-core sweep should not recompute the 500 points it already
finished. The checkpoint is a line-oriented JSON file: one header line
carrying an integrity stamp (format version + a hash of the sweep grid),
then one line per completed point. Appends are flushed per point, so a
kill mid-grid loses at most the point in flight; a torn trailing line
(killed mid-write) is detected and ignored on load.

The grid hash ties a checkpoint to one exact sweep (machine, kernels,
axes, runs, noise). Resuming with a different grid is an error, not a
silent mix of incompatible numbers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.util.errors import CheckpointError

#: Bump when the line format changes incompatibly.
CHECKPOINT_VERSION = 1

#: Fields that identify one sweep point inside a checkpoint.
POINT_FIELDS = ("threads", "placement", "precision", "kernel")

PointKey = tuple[int, str, str, str]


def point_key(
    threads: int, placement: str, precision: str, kernel: str
) -> PointKey:
    return (int(threads), placement, precision, kernel.upper())


class SweepCheckpoint:
    """One sweep's checkpoint file, opened for resume + append."""

    def __init__(self, path: str | Path, grid_hash: int):
        self.path = Path(path)
        self.grid_hash = int(grid_hash)
        self.completed: dict[PointKey, dict[str, Any]] = {}
        if self.path.exists():
            self._load()
        else:
            self._write_header()

    # -- reading ----------------------------------------------------------

    def _load(self) -> None:
        raw = self.path.read_bytes()
        lines = raw.splitlines()
        if not lines:
            self._write_header()
            return
        header = self._parse_header(
            lines[0].decode("utf-8", errors="replace")
        )
        if header.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has format version "
                f"{header.get('version')!r}; this build writes "
                f"{CHECKPOINT_VERSION}"
            )
        if header.get("grid_hash") != self.grid_hash:
            raise CheckpointError(
                f"checkpoint {self.path} belongs to a different sweep "
                f"(grid hash {header.get('grid_hash')} != "
                f"{self.grid_hash}); delete it or rerun the original grid"
            )
        torn = False
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    # Torn final line from a mid-write kill: recompute
                    # that one point instead of failing the resume.
                    torn = True
                    break
                raise CheckpointError(
                    f"checkpoint {self.path} is corrupt at line {lineno}"
                )
            if not all(f in record for f in POINT_FIELDS):
                if lineno == len(lines):
                    # A final line can also be torn *within* valid JSON
                    # (e.g. flushed through a page boundary): parseable
                    # but missing fields. Same remedy — recompute it.
                    torn = True
                    break
                raise CheckpointError(
                    f"checkpoint {self.path} line {lineno} is missing "
                    f"point fields {POINT_FIELDS}"
                )
            self.completed[point_key(
                record["threads"], record["placement"],
                record["precision"], record["kernel"],
            )] = record
        if torn:
            self._truncate_torn_tail(raw, lines[-1])

    def _truncate_torn_tail(self, raw: bytes, last_line: bytes) -> None:
        """Cut the torn final line off the file, durably.

        Tolerating the torn line in memory is not enough: left on disk
        it would be *appended onto* by the next :meth:`record` (merging
        two records into one corrupt interior line) or, if it ended in a
        newline, become an interior bad line that hard-fails the next
        resume. Truncation heals the file so appends stay line-atomic.
        """
        tail = len(last_line)
        if raw.endswith(b"\r\n"):
            tail += 2
        elif raw.endswith(b"\n"):
            tail += 1
        with self.path.open("r+b") as fh:
            fh.truncate(len(raw) - tail)
            fh.flush()
            os.fsync(fh.fileno())

    def _parse_header(self, line: str) -> dict[str, Any]:
        try:
            header = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {self.path} has an unreadable header: {exc}"
            ) from exc
        if not isinstance(header, dict) or "grid_hash" not in header:
            raise CheckpointError(
                f"checkpoint {self.path} header is not a sweep "
                "checkpoint stamp"
            )
        return header

    # -- writing ----------------------------------------------------------

    def _write_header(self) -> None:
        """Create the checkpoint with its header stamp, atomically.

        The header is written to a temp file, fsynced, then moved into
        place with :func:`os.replace` — so a kill during creation leaves
        either no checkpoint or a complete header, never a torn one that
        would poison every later resume.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w") as fh:
            fh.write(json.dumps({
                "version": CHECKPOINT_VERSION,
                "grid_hash": self.grid_hash,
            }) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def record(self, point: dict[str, Any]) -> None:
        """Append one completed point, flushed *and fsynced* to disk —
        a power loss after ``record`` returns cannot lose the point,
        and a kill mid-``record`` tears at most this one line (which
        resume detects and recomputes)."""
        missing = [f for f in POINT_FIELDS if f not in point]
        if missing:
            raise CheckpointError(
                f"checkpoint point is missing fields {missing}"
            )
        key = point_key(
            point["threads"], point["placement"],
            point["precision"], point["kernel"],
        )
        if key in self.completed:
            return
        self.completed[key] = dict(point)
        with self.path.open("a") as fh:
            fh.write(json.dumps(point) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def has(self, key: PointKey) -> bool:
        return key in self.completed

    def __len__(self) -> int:
        return len(self.completed)
