"""JSONL sweep checkpoints: persist completed points, resume mid-grid.

A killed 64-core sweep should not recompute the 500 points it already
finished. The checkpoint is a line-oriented JSON file: one header line
carrying an integrity stamp (format version + a hash of the sweep grid),
then one line per completed point. Appends are flushed per point, so a
kill mid-grid loses at most the point in flight; a torn trailing line
(killed mid-write) is detected and ignored on load.

The grid hash ties a checkpoint to one exact sweep (machine, kernels,
axes, runs, noise). Resuming with a different grid is an error, not a
silent mix of incompatible numbers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.util.errors import CheckpointError

#: Bump when the line format changes incompatibly.
CHECKPOINT_VERSION = 1

#: Fields that identify one sweep point inside a checkpoint.
POINT_FIELDS = ("threads", "placement", "precision", "kernel")

PointKey = tuple[int, str, str, str]


def point_key(
    threads: int, placement: str, precision: str, kernel: str
) -> PointKey:
    return (int(threads), placement, precision, kernel.upper())


class SweepCheckpoint:
    """One sweep's checkpoint file, opened for resume + append."""

    def __init__(self, path: str | Path, grid_hash: int):
        self.path = Path(path)
        self.grid_hash = int(grid_hash)
        self.completed: dict[PointKey, dict[str, Any]] = {}
        if self.path.exists():
            self._load()
        else:
            self._write_header()

    # -- reading ----------------------------------------------------------

    def _load(self) -> None:
        lines = self.path.read_text().splitlines()
        if not lines:
            self._write_header()
            return
        header = self._parse_header(lines[0])
        if header.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has format version "
                f"{header.get('version')!r}; this build writes "
                f"{CHECKPOINT_VERSION}"
            )
        if header.get("grid_hash") != self.grid_hash:
            raise CheckpointError(
                f"checkpoint {self.path} belongs to a different sweep "
                f"(grid hash {header.get('grid_hash')} != "
                f"{self.grid_hash}); delete it or rerun the original grid"
            )
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    # Torn final line from a mid-write kill: recompute
                    # that one point instead of failing the resume.
                    break
                raise CheckpointError(
                    f"checkpoint {self.path} is corrupt at line {lineno}"
                )
            if not all(f in record for f in POINT_FIELDS):
                raise CheckpointError(
                    f"checkpoint {self.path} line {lineno} is missing "
                    f"point fields {POINT_FIELDS}"
                )
            self.completed[point_key(
                record["threads"], record["placement"],
                record["precision"], record["kernel"],
            )] = record

    def _parse_header(self, line: str) -> dict[str, Any]:
        try:
            header = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {self.path} has an unreadable header: {exc}"
            ) from exc
        if not isinstance(header, dict) or "grid_hash" not in header:
            raise CheckpointError(
                f"checkpoint {self.path} header is not a sweep "
                "checkpoint stamp"
            )
        return header

    # -- writing ----------------------------------------------------------

    def _write_header(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w") as fh:
            fh.write(json.dumps({
                "version": CHECKPOINT_VERSION,
                "grid_hash": self.grid_hash,
            }) + "\n")

    def record(self, point: dict[str, Any]) -> None:
        """Append one completed point and flush it to disk."""
        missing = [f for f in POINT_FIELDS if f not in point]
        if missing:
            raise CheckpointError(
                f"checkpoint point is missing fields {missing}"
            )
        key = point_key(
            point["threads"], point["placement"],
            point["precision"], point["kernel"],
        )
        if key in self.completed:
            return
        self.completed[key] = dict(point)
        with self.path.open("a") as fh:
            fh.write(json.dumps(point) + "\n")
            fh.flush()

    def has(self, key: PointKey) -> bool:
        return key in self.completed

    def __len__(self) -> int:
        return len(self.completed)
