"""Machine-description invariant checker.

The dataclasses in :mod:`repro.machine` validate their own fields; this
module checks the *cross-cutting* invariants the analytic model silently
depends on — the ones a hand-edited machine JSON is most likely to break
without tripping any single field check. Violations become actionable
:class:`ConfigError`s at :class:`CPUModel` construction and again before
every suite run (a loaded description can be mutated only by
reconstruction, but the pre-run check also hosts the chaos MACHINE
injection site).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.util.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.machine.cpu import CPUModel


def cpu_violations(cpu: "CPUModel") -> list[str]:
    """All model-invariant violations in ``cpu`` (empty = valid)."""
    violations: list[str] = []
    core = cpu.core
    mem = cpu.memory

    # Issue widths: a core that cannot issue one op per cycle breaks the
    # throughput model's per-iter composition.
    if core.fp_ops_per_cycle < 1:
        violations.append(
            f"core issue width: fp_ops_per_cycle must be >= 1, "
            f"got {core.fp_ops_per_cycle}"
        )
    if core.ls_ops_per_cycle < 1:
        violations.append(
            f"core issue width: ls_ops_per_cycle must be >= 1, "
            f"got {core.ls_ops_per_cycle}"
        )
    if core.clock_hz <= 0:
        violations.append(f"clock must be positive, got {core.clock_hz}")

    # Cache hierarchy: capacities must grow outward (per instance) and
    # bandwidths/latencies must be positive, or the serving-level search
    # in the memory model picks nonsense levels.
    levels = cpu.caches.levels
    for inner, outer in zip(levels, levels[1:]):
        if outer.capacity_bytes < inner.capacity_bytes:
            violations.append(
                f"cache capacities must be monotone outward: "
                f"{outer.name} ({outer.capacity_bytes}B) smaller than "
                f"{inner.name} ({inner.capacity_bytes}B)"
            )
    for level in levels:
        if level.bandwidth_bytes_per_cycle <= 0:
            violations.append(
                f"{level.name}: bandwidth must be positive"
            )
        if level.latency_cycles < 1:
            violations.append(
                f"{level.name}: latency must be >= 1 cycle"
            )

    # Memory subsystem.
    if mem.controllers < 1:
        violations.append(
            f"memory controllers must be >= 1, got {mem.controllers}"
        )
    if mem.channel_bandwidth_bytes <= 0:
        violations.append("memory channel bandwidth must be positive")
    if mem.latency_ns <= 0:
        violations.append("memory latency must be positive")
    if mem.per_core_bandwidth_bytes <= 0:
        violations.append("per-core memory bandwidth must be positive")

    # Topology consistency with the core model.
    if cpu.topology.num_cores < 1:
        violations.append("topology must contain at least one core")

    return violations


def validate_cpu(cpu: "CPUModel") -> None:
    """Raise :class:`ConfigError` listing every violated invariant."""
    violations = cpu_violations(cpu)
    if violations:
        raise ConfigError(
            f"machine description {cpu.name!r} violates model "
            "invariants:\n  - " + "\n  - ".join(violations)
        )
