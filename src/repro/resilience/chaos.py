"""Chaos injection hooks: where fault plans meet the pipeline.

The production code calls two cheap hooks — :func:`raise_if_fault` at
failure sites and :func:`corrupt_value` where a prediction could be
silently garbled. With no plan installed both are near-free (one module
attribute check), so the fault-free path stays seed-identical and fast.

A plan is installed for the duration of a ``with inject_faults(plan):``
block. Attempt counters are tracked per (site, kernel) inside the block,
which is what makes "fail twice, then succeed" transient faults
expressible; the :attr:`injection_log` records every injected fault for
tests and failure reports.

Not thread-safe by design: chaos runs belong in tests and controlled
campaigns, not concurrent production paths.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.kernels.base import KernelClass
from repro.resilience.faults import FaultPlan, FaultRule, FaultSite
from repro.util.errors import (
    ConfigError,
    SimulationError,
    TransientError,
)

_active_plan: FaultPlan | None = None
_attempts: dict[tuple[str, str], int] = {}
_failures: dict[tuple[str, str], int] = {}
_log: list["Injection"] = []


@dataclass(frozen=True)
class Injection:
    """One injected fault, as recorded in the log."""

    site: FaultSite
    kernel: str
    attempt: int
    mode: str


@contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the block.

    Counters and the injection log reset on entry, so a plan replays
    identically every time it is installed. Nesting is rejected — two
    overlapping plans have no sensible semantics.
    """
    global _active_plan
    if _active_plan is not None:
        raise ConfigError("a fault plan is already active; do not nest")
    _active_plan = plan
    _attempts.clear()
    _failures.clear()
    _log.clear()
    try:
        yield plan
    finally:
        _active_plan = None


def active_plan() -> FaultPlan | None:
    return _active_plan


def injection_log() -> tuple[Injection, ...]:
    """Faults injected since the current (or last) plan was installed."""
    return tuple(_log)


def _next_attempt(site: FaultSite, kernel: str) -> int:
    key = (site.value, kernel)
    _attempts[key] = _attempts.get(key, 0) + 1
    return _attempts[key]


def _evaluate(
    site: FaultSite, kernel: str, klass: KernelClass | None
) -> tuple[FaultRule | None, int]:
    """Advance the attempt counter and ask the plan whether to fire."""
    attempt = _next_attempt(site, kernel)
    key = (site.value, kernel)
    rule = _active_plan.fires(
        site, kernel, klass, attempt, _failures.get(key, 0)
    )
    if rule is not None:
        _failures[key] = _failures.get(key, 0) + 1
        _log.append(
            Injection(site=site, kernel=kernel, attempt=attempt,
                      mode=rule.mode)
        )
    return rule, attempt


def raise_if_fault(
    site: FaultSite,
    kernel: str = "*",
    klass: KernelClass | None = None,
) -> None:
    """Raise the site's exception type if the active plan fires here.

    No-op (one attribute check) when no plan is installed. The raised
    exception carries a ``fault_site`` attribute so failure records can
    distinguish injected faults from organic ones.
    """
    if _active_plan is None:
        return
    rule, attempt = _evaluate(site, kernel, klass)
    if rule is None:
        return
    message = (
        f"injected fault at site {site.value!r} "
        f"(kernel {kernel}, attempt {attempt})"
    )
    if site is FaultSite.SIMULATE:
        exc: Exception = SimulationError(message)
    elif site is FaultSite.MACHINE:
        exc = ConfigError(
            f"injected fault: corrupted machine description "
            f"(attempt {attempt})"
        )
    else:
        exc = TransientError(message)
    exc.fault_site = site.value  # type: ignore[attr-defined]
    raise exc


def corrupt_value(
    site: FaultSite,
    kernel: str,
    value: float,
    klass: KernelClass | None = None,
) -> float:
    """Return ``value``, corrupted if the active plan fires at ``site``.

    Used at the PREDICTION site: ``"nan"`` mode returns NaN, and
    ``"negative"`` negates the value — both tripping the downstream
    :class:`ExecutionResult` invariants instead of silently polluting
    tables, which is exactly the behaviour under test.
    """
    if _active_plan is None:
        return value
    rule, _ = _evaluate(site, kernel, klass)
    if rule is None:
        return value
    if rule.mode == "negative":
        return -abs(value)
    return float("nan")
