"""Fault injection, retries, checkpoints and machine validation.

The robustness face of the reproduction: the paper's campaigns ran on
flaky early silicon where runs fail, throttle and return garbage, and
the follow-up studies repeat them at scales where one failed kernel must
not abort a whole sweep. This package makes the pipeline survive — and,
just as important, makes that survival *testable*:

``repro.resilience.faults`` / ``repro.resilience.chaos``
    Seeded, deterministic fault plans and the injection hooks through
    which they reach the simulator and runner.
``repro.resilience.retry``
    Failure policies (abort / skip / retry), exponential backoff with
    deadlines, and the failure records surfaced in results.
``repro.resilience.checkpoint``
    JSONL sweep checkpoints with an integrity header for mid-grid
    resume.
``repro.resilience.validate``
    Cross-cutting machine-description invariants, checked at model
    construction and before every suite run.
"""

from repro.resilience.chaos import (
    active_plan,
    corrupt_value,
    inject_faults,
    injection_log,
    raise_if_fault,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    SweepCheckpoint,
    point_key,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultRule,
    FaultSite,
    load_fault_plan,
    transient_plan,
)
from repro.resilience.retry import (
    FailurePolicy,
    FailureRecord,
    RetryExhaustedError,
    RetrySpec,
    call_with_retry,
)
from repro.resilience.validate import cpu_violations, validate_cpu

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FaultSite",
    "load_fault_plan",
    "transient_plan",
    "inject_faults",
    "active_plan",
    "injection_log",
    "raise_if_fault",
    "corrupt_value",
    "FailurePolicy",
    "FailureRecord",
    "RetrySpec",
    "RetryExhaustedError",
    "call_with_retry",
    "SweepCheckpoint",
    "CHECKPOINT_VERSION",
    "point_key",
    "cpu_violations",
    "validate_cpu",
]
