"""Deterministic fault plans for chaos testing the pipeline.

The paper's numbers come from campaigns on flaky early silicon where
individual runs fail, throttle or return garbage. A :class:`FaultPlan`
reproduces that environment *deterministically*: it decides, from a seed
and nothing else, whether a given injection site fires for a given
kernel on a given attempt. The same plan always injects the same faults,
so every robustness feature (retry, skip, checkpoint/resume, graceful
reporting) is testable with exact expectations.

Plans are data: they serialize to/from JSON so the CLI can load one with
``--fault-plan plan.json``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.kernels.base import KernelClass
from repro.util.errors import ConfigError
from repro.util.rng import derive_seed


class FaultSite(enum.Enum):
    """Where in the pipeline a fault is injected.

    Attributes:
        SIMULATE: ``simulate_kernel`` raises :class:`SimulationError`
            before producing a prediction (the model "crashes").
        PREDICTION: The predicted time is corrupted to NaN or a negative
            value before the result is constructed — caught by the
            :class:`ExecutionResult` invariants, modelling a run that
            returns garbage instead of failing loudly.
        MACHINE: The machine description is reported corrupted at the
            pre-run validation step (:class:`ConfigError`); a
            whole-configuration failure, not a per-kernel one.
        RUN: A transient per-kernel run failure
            (:class:`TransientError`) in the suite runner — the flaky
            node case retries are made for.
    """

    SIMULATE = "simulate"
    PREDICTION = "prediction"
    MACHINE = "machine"
    RUN = "run"

    @classmethod
    def from_label(cls, label: str) -> "FaultSite":
        for member in cls:
            if member.value == label.lower():
                return member
        raise ConfigError(
            f"unknown fault site {label!r}; "
            f"known: {[m.value for m in cls]}"
        )


#: Corruption modes for the PREDICTION site.
PREDICTION_MODES = ("nan", "negative")


def _coerce_int(field_name: str, value: Any) -> int:
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise ConfigError(
            f"fault rule {field_name} must be an integer, got {value!r}"
        ) from exc


@dataclass(frozen=True)
class FaultRule:
    """One injection rule inside a plan.

    Attributes:
        site: Which injection site this rule arms.
        probability: Per-attempt chance of firing in [0, 1]. The draw is
            derived deterministically from the plan seed, the rule index,
            the kernel and the attempt number.
        kernels: Restrict to these kernel names (case-insensitive);
            ``None`` matches every kernel.
        klass: Restrict to one kernel class; ``None`` matches all.
        max_failures: Stop firing for a kernel after this many injected
            failures — a hard transience bound that guarantees retry
            convergence. ``None`` means the rule can fire on any attempt.
        mode: Corruption mode for the PREDICTION site (``"nan"`` or
            ``"negative"``); ignored elsewhere.
    """

    site: FaultSite
    probability: float = 1.0
    kernels: tuple[str, ...] | None = None
    klass: KernelClass | None = None
    max_failures: int | None = None
    mode: str = "nan"

    def __post_init__(self) -> None:
        if isinstance(self.site, str):
            object.__setattr__(self, "site", FaultSite.from_label(self.site))
        if isinstance(self.klass, str):
            object.__setattr__(
                self, "klass", KernelClass.from_label(self.klass)
            )
        if self.kernels is not None:
            object.__setattr__(
                self,
                "kernels",
                tuple(k.upper() for k in self.kernels),
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"fault probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.max_failures is not None and self.max_failures < 1:
            raise ConfigError("max_failures must be >= 1")
        if self.site is FaultSite.PREDICTION and (
            self.mode not in PREDICTION_MODES
        ):
            raise ConfigError(
                f"prediction corruption mode must be one of "
                f"{PREDICTION_MODES}, got {self.mode!r}"
            )

    def matches(self, kernel_name: str, klass: KernelClass | None) -> bool:
        if self.kernels is not None and kernel_name.upper() not in self.kernels:
            return False
        if self.klass is not None and klass is not self.klass:
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site.value,
            "probability": self.probability,
            "kernels": list(self.kernels) if self.kernels else None,
            "klass": self.klass.value if self.klass else None,
            "max_failures": self.max_failures,
            "mode": self.mode,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultRule":
        if "site" not in data:
            raise ConfigError("fault rule needs a 'site' field")
        kernels = data.get("kernels")
        try:
            probability = float(data.get("probability", 1.0))
        except (TypeError, ValueError) as exc:
            raise ConfigError(
                f"fault rule probability must be a number, "
                f"got {data.get('probability')!r}"
            ) from exc
        return cls(
            site=FaultSite.from_label(data["site"]),
            probability=probability,
            kernels=tuple(kernels) if kernels else None,
            klass=(
                KernelClass.from_label(data["klass"])
                if data.get("klass")
                else None
            ),
            max_failures=(
                _coerce_int("max_failures", data["max_failures"])
                if data.get("max_failures") is not None
                else None
            ),
            mode=data.get("mode", "nan"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic set of fault rules.

    The decision for (rule, kernel, attempt) is a pure function of the
    plan seed: :func:`repro.util.rng.derive_seed` feeds a dedicated RNG
    per decision, so plans replay identically across processes and
    Python versions.
    """

    seed: int
    rules: tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def fires(
        self,
        site: FaultSite,
        kernel_name: str,
        klass: KernelClass | None,
        attempt: int,
        failures_so_far: int,
    ) -> FaultRule | None:
        """The first armed rule that fires at this site, or ``None``.

        Args:
            site: Injection site being evaluated.
            kernel_name: Kernel at the site (``"*"`` for config-level
                sites like MACHINE).
            klass: Kernel class, if per-kernel.
            attempt: 1-based attempt counter for this (site, kernel).
            failures_so_far: Faults already injected for this
                (site, kernel) — compared against ``max_failures``.
        """
        if attempt < 1:
            raise ConfigError("attempt must be >= 1")
        for index, rule in enumerate(self.rules):
            if rule.site is not site:
                continue
            if not rule.matches(kernel_name, klass):
                continue
            if (rule.max_failures is not None
                    and failures_so_far >= rule.max_failures):
                continue
            draw_seed = derive_seed(
                self.seed, index, site.value, kernel_name.upper(), attempt
            )
            draw = float(np.random.default_rng(draw_seed).random())
            if draw < rule.probability:
                return rule
        return None

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        if "seed" not in data:
            raise ConfigError("fault plan needs a 'seed' field")
        try:
            seed = int(data["seed"])
        except (TypeError, ValueError) as exc:
            raise ConfigError(
                f"fault plan seed must be an integer, got {data['seed']!r}"
            ) from exc
        return cls(
            seed=seed,
            rules=tuple(
                FaultRule.from_dict(r) for r in data.get("rules", ())
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid fault plan JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigError("fault plan JSON must be an object")
        return cls.from_dict(data)


def load_fault_plan(path: str | Path) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file (CLI ``--fault-plan``)."""
    p = Path(path)
    if not p.is_file():
        raise ConfigError(f"fault plan file not found: {p}")
    return FaultPlan.from_json(p.read_text())


def transient_plan(
    seed: int,
    probability: float,
    max_failures: int | None = None,
    site: FaultSite = FaultSite.RUN,
) -> FaultPlan:
    """Convenience: one rule injecting transient failures everywhere."""
    return FaultPlan(
        seed=seed,
        rules=(
            FaultRule(
                site=site,
                probability=probability,
                max_failures=max_failures,
            ),
        ),
    )
